"""Run results: trajectories plus the observability the paper lacked.

Every executed :class:`~repro.runner.spec.RunSpec` yields a
:class:`RunResult` — the infection :class:`~repro.models.base.Trajectory`
together with :class:`RunMetrics` (wall time, ticks/events executed, and
the network's packet counters).  An ensemble of runs aggregates into an
:class:`EnsembleResult`, which exposes the paper-style averaged curve and
totals across the replicates.

Results round-trip through plain JSON dicts so the content-addressed
cache can persist them without pickles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from ..models.base import Trajectory
from ..observability.stats import merge_counts, merge_seconds
from ..simulator.observers import average_trajectories
from .spec import EnsembleSpec, RunSpec

__all__ = [
    "RunMetrics",
    "RunResult",
    "EnsembleMetrics",
    "EnsembleResult",
    "trajectory_to_dict",
    "trajectory_from_dict",
]


def trajectory_to_dict(trajectory: Trajectory) -> dict[str, Any]:
    """JSON-ready dict of a trajectory (exact float round-trip)."""

    def _series(values: np.ndarray | None) -> list[float] | None:
        return None if values is None else [float(v) for v in values]

    return {
        "times": _series(trajectory.times),
        "infected": _series(trajectory.infected),
        "population": float(trajectory.population),
        "susceptible": _series(trajectory.susceptible),
        "removed": _series(trajectory.removed),
        "ever_infected": _series(trajectory.ever_infected),
    }


def trajectory_from_dict(data: dict[str, Any]) -> Trajectory:
    """Inverse of :func:`trajectory_to_dict`."""

    def _series(values: list[float] | None) -> np.ndarray | None:
        return None if values is None else np.asarray(values, dtype=float)

    return Trajectory(
        times=_series(data["times"]),
        infected=_series(data["infected"]),
        population=float(data["population"]),
        susceptible=_series(data.get("susceptible")),
        removed=_series(data.get("removed")),
        ever_infected=_series(data.get("ever_infected")),
    )


@dataclass(frozen=True)
class RunMetrics:
    """What one run cost and did.

    Attributes
    ----------
    wall_time:
        Seconds of wall clock the simulation took.  Cache hits replay
        the metrics of the run that produced the entry, wall time
        included, so ensemble totals always reflect simulation cost.
    ticks_executed:
        Simulation ticks actually run (stop conditions can end early).
    events_executed:
        Ad-hoc scheduler events run (0 for purely tick-driven scenarios).
    packets_injected / packets_delivered / packets_dropped:
        The network's packet counters: scans entering the routed graph,
        scans reaching their destination, and scans lost to full queues.
    queue_histogram / drop_histogram:
        Bucketed distributions of per-link peak queue depth and drop
        count (see :mod:`repro.observability.stats`); populated on every
        run, cached or not.
    phase_seconds / phase_calls:
        Per-phase wall time and execution counts from the tick engine;
        populated only when the run executed with profiling on.
    counters:
        Named event counters (``scans_routed``, ``scans_dark``,
        ``infections``, ...); populated only under profiling.
    """

    wall_time: float = 0.0
    ticks_executed: int = 0
    events_executed: int = 0
    packets_injected: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    queue_histogram: dict[str, int] = field(default_factory=dict)
    drop_histogram: dict[str, int] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    phase_calls: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunMetrics":
        """Inverse of :meth:`to_dict` (tolerates pre-observability
        entries that lack the histogram/profile fields)."""
        return cls(**data)


@dataclass(frozen=True)
class RunResult:
    """One executed run: curve + metrics + deployment summary.

    ``trace`` carries the run's per-tick observability records when the
    run executed with tracing on.  It is deliberately *not* part of
    :meth:`to_dict`: traces are bulky, tied to one live execution, and
    instrumented runs bypass the result cache anyway.
    """

    spec: RunSpec
    trajectory: Trajectory
    metrics: RunMetrics
    defense_name: str = "no_rl"
    limited_links: int = 0
    throttled_hosts: int = 0
    cached: bool = False
    trace: tuple[dict[str, Any], ...] | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict (used by the result cache; excludes trace)."""
        return {
            "spec": self.spec.to_dict(),
            "trajectory": trajectory_to_dict(self.trajectory),
            "metrics": self.metrics.to_dict(),
            "defense_name": self.defense_name,
            "limited_links": self.limited_links,
            "throttled_hosts": self.throttled_hosts,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any], *, cached: bool = False) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            trajectory=trajectory_from_dict(data["trajectory"]),
            metrics=RunMetrics.from_dict(data["metrics"]),
            defense_name=data["defense_name"],
            limited_links=data["limited_links"],
            throttled_hosts=data["throttled_hosts"],
            cached=cached,
        )


@dataclass(frozen=True)
class EnsembleMetrics:
    """Totals across an ensemble's runs.

    The histogram/profile aggregates are key-wise sums of the per-run
    dicts, so they are a pure function of the run list — serial and
    parallel executions of the same ensemble aggregate identically
    (asserted in the test suite).
    """

    total_wall_time: float = 0.0
    total_ticks: int = 0
    total_events: int = 0
    total_packets_injected: int = 0
    total_packets_delivered: int = 0
    total_packets_dropped: int = 0
    cache_hits: int = 0
    runs: int = 0
    queue_histogram: dict[str, int] = field(default_factory=dict)
    drop_histogram: dict[str, int] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    phase_calls: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_runs(cls, runs: list[RunResult]) -> "EnsembleMetrics":
        """Sum the per-run metrics."""
        return cls(
            total_wall_time=sum(r.metrics.wall_time for r in runs),
            total_ticks=sum(r.metrics.ticks_executed for r in runs),
            total_events=sum(r.metrics.events_executed for r in runs),
            total_packets_injected=sum(
                r.metrics.packets_injected for r in runs
            ),
            total_packets_delivered=sum(
                r.metrics.packets_delivered for r in runs
            ),
            total_packets_dropped=sum(
                r.metrics.packets_dropped for r in runs
            ),
            cache_hits=sum(1 for r in runs if r.cached),
            runs=len(runs),
            queue_histogram=merge_counts(
                r.metrics.queue_histogram for r in runs
            ),
            drop_histogram=merge_counts(
                r.metrics.drop_histogram for r in runs
            ),
            phase_seconds=merge_seconds(
                r.metrics.phase_seconds for r in runs
            ),
            phase_calls=merge_counts(r.metrics.phase_calls for r in runs),
            counters=merge_counts(r.metrics.counters for r in runs),
        )


@dataclass
class EnsembleResult:
    """Averaged curve plus everything needed to audit an ensemble."""

    spec: EnsembleSpec
    runs: list[RunResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.mean: Trajectory = average_trajectories(
            [run.trajectory for run in self.runs]
        )
        self.metrics: EnsembleMetrics = EnsembleMetrics.from_runs(self.runs)

    @property
    def label(self) -> str:
        """The ensemble's display label."""
        return self.spec.label

    @property
    def trajectories(self) -> list[Trajectory]:
        """The per-run curves, in seed order."""
        return [run.trajectory for run in self.runs]

    def time_to_fraction(self, level: float) -> float:
        """Mean-curve time to an infected fraction (paper's comparisons)."""
        return self.mean.time_to_fraction(level)

    def final_ever_infected(self) -> float:
        """Mean-curve final ever-infected fraction (Figure 8's endpoint)."""
        return self.mean.final_fraction_ever_infected()
