"""Flow-record data model for the Section 7 trace study.

The paper analyzed 23 days of anonymized IP/transport headers (plus full
DNS payloads) from a departmental edge router.  Our records carry exactly
the fields that analysis needs: timestamps, endpoints, protocol, ports,
TCP SYN / ICMP echo flags (to recognize initiated contacts and worm
scanning), and — for DNS answer packets — the resolved address, standing
in for the recorded DNS payloads.

Addresses are IPv4 integers; :func:`ip_to_str` / :func:`str_to_ip` convert
for display and serialization.  A :class:`Trace` bundles time-sorted
records with the set of internal hosts and optional ground-truth labels
(the synthetic generator fills those in so classifier accuracy can be
measured).
"""

from __future__ import annotations

import csv
import io
from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "Protocol",
    "HostClass",
    "FlowRecord",
    "FailedContact",
    "Trace",
    "TraceError",
    "ip_to_str",
    "str_to_ip",
    "DNS_PORT",
    "DEFAULT_FAILURE_TIMEOUT",
]

#: Well-known DNS port.
DNS_PORT = 53

#: Seconds an initiated TCP contact may go unanswered before it counts
#: as a connection failure (SYN-timeout scale, not the 75 s full TCP
#: give-up: failure detectors act on the first unanswered retransmit).
DEFAULT_FAILURE_TIMEOUT = 3.0


class TraceError(ValueError):
    """Raised for malformed traces or records."""


class Protocol(Enum):
    """Transport / network protocol of a record."""

    TCP = "tcp"
    UDP = "udp"
    ICMP = "icmp"


class HostClass(Enum):
    """The paper's four behavioural host categories (Section 7)."""

    NORMAL = "normal"
    SERVER = "server"
    P2P = "p2p"
    WORM_BLASTER = "worm_blaster"
    WORM_WELCHIA = "worm_welchia"

    @property
    def is_worm(self) -> bool:
        """Whether this class is one of the two worm infections."""
        return self in (HostClass.WORM_BLASTER, HostClass.WORM_WELCHIA)


def ip_to_str(ip: int) -> str:
    """Render a 32-bit address as dotted quad."""
    if not 0 <= ip <= 0xFFFFFFFF:
        raise TraceError(f"not a 32-bit address: {ip}")
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def str_to_ip(text: str) -> int:
    """Parse a dotted quad into a 32-bit address."""
    parts = text.split(".")
    if len(parts) != 4:
        raise TraceError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError:
            raise TraceError(f"bad octet {part!r} in {text!r}") from None
        if not 0 <= octet <= 255:
            raise TraceError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


@dataclass(slots=True, frozen=True)
class FlowRecord:
    """One captured packet/flow event.

    Attributes
    ----------
    time:
        Seconds since trace start.
    src, dst:
        32-bit addresses.
    protocol:
        :class:`Protocol`.
    src_port, dst_port:
        Transport ports (0 for ICMP).
    tcp_syn:
        True for a TCP connection-initiation packet.
    icmp_echo:
        True for an ICMP echo request (Welchia's scan probe).
    dns_answer:
        For a DNS response packet: the address the name resolved to
        (stands in for the recorded DNS payload).  ``None`` otherwise.
    """

    time: float
    src: int
    dst: int
    protocol: Protocol
    src_port: int = 0
    dst_port: int = 0
    tcp_syn: bool = False
    icmp_echo: bool = False
    dns_answer: int | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise TraceError(f"negative timestamp: {self.time}")
        for label, ip in (("src", self.src), ("dst", self.dst)):
            if not 0 <= ip <= 0xFFFFFFFF:
                raise TraceError(f"{label} is not a 32-bit address: {ip}")
        for label, port in (("src_port", self.src_port),
                            ("dst_port", self.dst_port)):
            if not 0 <= port <= 65535:
                raise TraceError(f"{label} out of range: {port}")
        if self.dns_answer is not None and self.protocol is not Protocol.UDP:
            raise TraceError("dns_answer only valid on UDP records")

    @property
    def is_dns_answer(self) -> bool:
        """Whether this is a DNS response carrying a resolution."""
        return self.dns_answer is not None

    @property
    def icmp_unreachable(self) -> bool:
        """Whether this is an ICMP error (destination unreachable).

        The trace model carries no echo *replies* — every non-echo ICMP
        record is an error bounce (the synthetic generator only emits
        unreachables there, and the paper's failure signal is exactly
        the unreachable class).  An unreachable from ``src`` answers a
        contact that ``dst`` previously initiated toward ``src``.
        """
        return self.protocol is Protocol.ICMP and not self.icmp_echo

    @property
    def initiates_contact(self) -> bool:
        """Whether this record *initiates* a contact with ``dst``.

        TCP SYNs, ICMP echo requests, and non-DNS UDP packets count;
        DNS queries/answers and non-SYN TCP segments do not (they are
        part of established or infrastructure exchanges).
        """
        if self.protocol is Protocol.TCP:
            return self.tcp_syn
        if self.protocol is Protocol.ICMP:
            return self.icmp_echo
        # UDP: anything that is not DNS infrastructure traffic.
        return self.dst_port != DNS_PORT and self.dns_answer is None


@dataclass(slots=True, frozen=True)
class FailedContact:
    """A contact initiation that drew a failure signal.

    Attributes
    ----------
    time:
        When the failed contact was *initiated* (the SYN/echo time).
    detected_at:
        When the failure became observable: the ICMP unreachable's
        arrival, or ``time + timeout`` for an unanswered SYN.
    src, dst:
        Initiator and target of the failed contact.
    dst_port:
        Target port of the initiation (0 for ICMP echoes).
    reason:
        ``"timeout"`` (SYN never answered) or ``"unreachable"``
        (explicit ICMP error bounce).
    """

    time: float
    detected_at: float
    src: int
    dst: int
    dst_port: int
    reason: str


_CSV_FIELDS = [
    "time",
    "src",
    "dst",
    "protocol",
    "src_port",
    "dst_port",
    "tcp_syn",
    "icmp_echo",
    "dns_answer",
]


class Trace:
    """A time-sorted sequence of flow records plus host metadata.

    Parameters
    ----------
    records:
        Flow records; sorted by time on construction.
    internal_hosts:
        Addresses on the inside of the monitored edge router.
    labels:
        Optional ground-truth ``address -> HostClass`` map (synthetic
        traces carry one; real traces would not).
    """

    def __init__(
        self,
        records: Iterable[FlowRecord],
        internal_hosts: Iterable[int],
        *,
        labels: dict[int, HostClass] | None = None,
    ) -> None:
        self._records: list[FlowRecord] = sorted(records, key=lambda r: r.time)
        self._internal: frozenset[int] = frozenset(internal_hosts)
        if not self._internal:
            raise TraceError("a trace needs at least one internal host")
        self.labels: dict[int, HostClass] = dict(labels or {})
        unknown = set(self.labels) - self._internal
        if unknown:
            raise TraceError(
                f"labels reference non-internal hosts: {sorted(unknown)[:5]}"
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def records(self) -> Sequence[FlowRecord]:
        """All records, time-sorted."""
        return self._records

    @property
    def internal_hosts(self) -> frozenset[int]:
        """Addresses inside the monitored network."""
        return self._internal

    @property
    def duration(self) -> float:
        """Time span covered by the records (0 for an empty trace)."""
        if not self._records:
            return 0.0
        return self._records[-1].time - self._records[0].time

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._records)

    def is_internal(self, ip: int) -> bool:
        """Whether ``ip`` belongs to the monitored network."""
        return ip in self._internal

    def outbound_records(self) -> Iterator[FlowRecord]:
        """Records leaving the network (internal src, external dst)."""
        for record in self._records:
            if record.src in self._internal and record.dst not in self._internal:
                yield record

    def inbound_records(self) -> Iterator[FlowRecord]:
        """Records entering the network (external src, internal dst)."""
        for record in self._records:
            if record.src not in self._internal and record.dst in self._internal:
                yield record

    def records_from(self, host: int) -> list[FlowRecord]:
        """All records originated by ``host``."""
        return [r for r in self._records if r.src == host]

    def hosts_of_class(self, host_class: HostClass) -> list[int]:
        """Internal hosts labeled with ``host_class`` (ground truth)."""
        return sorted(
            host for host, label in self.labels.items() if label is host_class
        )

    def failed_contacts(
        self, timeout: float = DEFAULT_FAILURE_TIMEOUT
    ) -> list[FailedContact]:
        """Contact initiations that drew a failure signal, time-ordered.

        Two failure classes, matching the connection-failure containment
        literature:

        * ``"timeout"`` — a TCP SYN with no answering segment (non-SYN
          TCP from the target back to the initiator) within ``timeout``
          seconds.  An answer clears *every* outstanding SYN for that
          (initiator, target) pair.  SYNs still unanswered when the
          trace ends count as timeouts (their ``detected_at`` may fall
          past the last record) — the same flush semantics the
          streaming detector's ``finish()`` applies, so batch and
          stream agree exactly.
        * ``"unreachable"`` — an ICMP unreachable from the target fails
          every outstanding contact (SYN or echo) the initiator had
          toward it.  Unanswered ICMP echoes alone are *not* failures:
          the trace carries no echo replies, so silence is
          uninformative there.

        Returns failures sorted by ``(detected_at, time, src, dst)``.
        """
        if timeout <= 0:
            raise TraceError(f"timeout must be positive, got {timeout}")
        failures: list[FailedContact] = []
        # Entry: [time, src, dst, dst_port, is_tcp, alive]
        queue: deque[list] = deque()
        by_pair: dict[tuple[int, int], deque[list]] = {}

        def expire(now: float | None) -> None:
            while queue and (now is None or queue[0][0] + timeout < now):
                t, src, dst, port, is_tcp, alive = entry = queue.popleft()
                if alive and is_tcp:
                    failures.append(
                        FailedContact(
                            time=t,
                            detected_at=t + timeout,
                            src=src,
                            dst=dst,
                            dst_port=port,
                            reason="timeout",
                        )
                    )
                entry[5] = False
                # Global FIFO == per-pair FIFO, so the expired entry is
                # at the front of its pair bucket; prune to bound memory.
                bucket = by_pair.get((src, dst))
                if bucket and bucket[0] is entry:
                    bucket.popleft()
                    if not bucket:
                        del by_pair[(src, dst)]

        for r in self._records:
            expire(r.time)
            if r.protocol is Protocol.TCP and not r.tcp_syn:
                # Response traffic: answers contacts dst made toward src.
                for entry in by_pair.pop((r.dst, r.src), ()):
                    entry[5] = False
            elif r.icmp_unreachable:
                for entry in by_pair.pop((r.dst, r.src), ()):
                    if entry[5]:
                        failures.append(
                            FailedContact(
                                time=entry[0],
                                detected_at=r.time,
                                src=entry[1],
                                dst=entry[2],
                                dst_port=entry[3],
                                reason="unreachable",
                            )
                        )
                        entry[5] = False
            elif r.initiates_contact and r.protocol is not Protocol.UDP:
                entry = [
                    r.time,
                    r.src,
                    r.dst,
                    r.dst_port,
                    r.protocol is Protocol.TCP,
                    True,
                ]
                queue.append(entry)
                by_pair.setdefault((r.src, r.dst), deque()).append(entry)
        expire(None)
        failures.sort(key=lambda f: (f.detected_at, f.time, f.src, f.dst))
        return failures

    # ------------------------------------------------------------------
    # Serialization (CSV — the traces are header-only, CSV is faithful)
    # ------------------------------------------------------------------

    def to_csv(self) -> str:
        """Serialize the records (not metadata) as CSV text."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for r in self._records:
            writer.writerow(
                {
                    "time": repr(r.time),
                    "src": ip_to_str(r.src),
                    "dst": ip_to_str(r.dst),
                    "protocol": r.protocol.value,
                    "src_port": r.src_port,
                    "dst_port": r.dst_port,
                    "tcp_syn": int(r.tcp_syn),
                    "icmp_echo": int(r.icmp_echo),
                    "dns_answer": (
                        ip_to_str(r.dns_answer)
                        if r.dns_answer is not None
                        else ""
                    ),
                }
            )
        return buffer.getvalue()

    @classmethod
    def from_csv(
        cls,
        text: str,
        internal_hosts: Iterable[int],
        *,
        labels: dict[int, HostClass] | None = None,
    ) -> "Trace":
        """Parse records from :meth:`to_csv` output.

        Any malformed input — bad framing, missing or truncated fields,
        unparseable values — raises :class:`TraceError`; no lower-level
        exception type escapes.
        """
        reader = csv.DictReader(io.StringIO(text))
        records: list[FlowRecord] = []
        try:
            for row in reader:
                try:
                    records.append(
                        FlowRecord(
                            time=float(row["time"]),
                            src=str_to_ip(row["src"]),
                            dst=str_to_ip(row["dst"]),
                            protocol=Protocol(row["protocol"]),
                            src_port=int(row["src_port"]),
                            dst_port=int(row["dst_port"]),
                            tcp_syn=bool(int(row["tcp_syn"])),
                            icmp_echo=bool(int(row["icmp_echo"])),
                            dns_answer=(
                                str_to_ip(row["dns_answer"])
                                if row["dns_answer"]
                                else None
                            ),
                        )
                    )
                except (KeyError, ValueError, TypeError) as exc:
                    raise TraceError(
                        f"malformed CSV row {row!r}: {exc}"
                    ) from exc
        except csv.Error as exc:
            raise TraceError(f"malformed CSV framing: {exc}") from exc
        return cls(records, internal_hosts, labels=labels)
