"""Synthetic campus-trace generator (substitute for the CMU ECE traces).

The paper's Section 7 statistics come from 23 days of proprietary traces
of 1,128 hosts: 999 normal desktop clients, 17 servers, 33 peer-to-peer
clients, and 79 hosts infected by Blaster and/or Welchia.  Those traces
are not available, so this module generates flow records whose
*distributions* are calibrated to every number the paper reports:

* normal clients: aggregate 5-second contact rates whose 99.9th percentile
  sits near 16 (all contacts), 14 (no prior contact), and 9 (no valid DNS
  translation, no prior contact); individual-host rates near 4 and 1;
* P2P clients: aggregate 99.9th percentiles near 89 / 61 / 26;
* Blaster-like scanning: persistent TCP/135 SYN sweeps, peak scan rate on
  the order of 671 distinct hosts per minute;
* Welchia-like scanning: bursty ICMP-echo sweeps followed by TCP/135
  probes, peak on the order of 7,068 hosts per minute — an order of
  magnitude above Blaster;
* servers: traffic dominated by responses to externally initiated
  connections, with modest DNS-translated outbound (mail relay).

The generator emits DNS query/answer record pairs before resolved
contacts, so the analysis pipeline can rebuild the translation state from
the trace alone — the same information the paper's recorded DNS payloads
provided.

Generation is *incremental*: :func:`iter_flow_records` yields records
host by host as each behaviour model runs, and :func:`generate_trace` is
a thin collector over that stream (byte-identical to the historical
batch output for a fixed seed — pinned by regression test).  The yielded
order is generation order, not time order; :class:`~repro.traces.records.
Trace` sorts on construction, and the streaming adapters in
:mod:`repro.streaming.stream` handle time-ordering for online consumers.

Failure semantics (both default-off so historical traces are unchanged):
``service_reply_probability`` makes resolved benign contacts draw a TCP
response from the service, and ``scan_unreachable_probability`` makes
worm scan targets answer with an ICMP unreachable — the signals the
connection-failure containment detector consumes.  At their 0.0 defaults
neither knob consumes a single RNG draw, which is what preserves
byte-identity.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from .records import DNS_PORT, FlowRecord, HostClass, Protocol, Trace, TraceError

__all__ = [
    "TraceConfig",
    "generate_trace",
    "iter_flow_records",
    "INTERNAL_BASE",
    "RESOLVER_IP",
]

#: Base of the internal 10.1.0.0/16 network; hosts are numbered upward.
INTERNAL_BASE = (10 << 24) | (1 << 16)
#: The (external) campus resolver whose answers install translations.
RESOLVER_IP = (128 << 24) | (2 << 16) | (4 << 8) | 53
#: Base of the popular-services range clients resolve names for.
SERVICE_BASE = (192 << 24) | (30 << 16)
#: Well-known port Blaster/Welchia exploit (Windows DCOM RPC).
DCOM_PORT = 135


@dataclass(frozen=True)
class TraceConfig:
    """Shape and calibration knobs of a synthetic trace.

    The defaults reproduce the paper's host census scaled to a
    ``duration`` of ten minutes (generating 23 full days of traffic is
    pointless — every statistic is a rate or a windowed percentile).
    """

    duration: float = 600.0
    seed: int = 0
    num_normal: int = 999
    num_servers: int = 17
    num_p2p: int = 33
    num_blaster: int = 50
    num_welchia: int = 29

    # --- normal-client behaviour -------------------------------------
    #: Session starts per second per client (~2/hour — desktops are idle
    #: most of the time; the paper's aggregate 5 s rates are single-digit).
    normal_session_rate: float = 0.0007
    #: Probability a session fans out to extra hosts (page resources).
    normal_burst_probability: float = 0.30
    #: Maximum extra contacts in a burst.
    normal_burst_max: int = 4
    #: Probability an outbound contact skips DNS (hardcoded address).
    normal_direct_probability: float = 0.48
    #: Probability a contact goes back to a host that contacted us first.
    normal_reply_probability: float = 0.20

    # --- server behaviour ---------------------------------------------
    #: Inbound client connections per second per server.
    server_inbound_rate: float = 0.20
    #: Outbound (mail-relay style, DNS-resolved) contacts per second.
    server_outbound_rate: float = 0.02

    # --- P2P behaviour --------------------------------------------------
    #: Steady peer-churn contacts per second per client.
    p2p_contact_rate: float = 0.13
    #: Rejoin bursts per second per client.
    p2p_burst_rate: float = 0.004
    #: Contacts per rejoin burst (uniform 10..this).
    p2p_burst_max: int = 45
    #: Share of contacts aimed at peers that contacted us first.
    p2p_reply_fraction: float = 0.50
    #: Share of remaining contacts that are DNS-resolved (trackers).
    p2p_dns_fraction: float = 0.70

    # --- worm behaviour ---------------------------------------------------
    #: Blaster sustained scan rate (SYNs/second).
    blaster_scan_rate: float = 2.2
    #: Blaster burst multiplier (short spurts hitting the peak rate).
    blaster_peak_rate: float = 11.0
    #: Fraction of time Blaster spends in a peak spurt.
    blaster_peak_fraction: float = 0.05
    #: Welchia sweep rate while active (ICMP echoes/second).
    welchia_sweep_rate: float = 80.0
    #: Welchia peak sweep rate (echoes/second, ~7068/min).
    welchia_peak_rate: float = 118.0
    #: Fraction of time a Welchia host is actively sweeping.
    welchia_active_fraction: float = 0.35
    #: Probability a swept host "responds", triggering a TCP/135 probe.
    welchia_probe_probability: float = 0.10

    # --- connection-failure semantics (default off: byte-identical
    # --- traces; the streaming failure detector needs them on) ---------
    #: Probability a resolved/known-service contact draws a TCP response
    #: from the service (success signal).  0.0 emits no replies and
    #: consumes no RNG draws.
    service_reply_probability: float = 0.0
    #: Probability a worm scan target answers with an ICMP unreachable
    #: (explicit failure signal).  0.0 emits none and consumes no draws.
    scan_unreachable_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise TraceError(f"duration must be positive, got {self.duration}")
        for label, p in (
            ("service_reply_probability", self.service_reply_probability),
            ("scan_unreachable_probability", self.scan_unreachable_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise TraceError(f"{label} must be in [0, 1], got {p}")
        counts = (
            self.num_normal,
            self.num_servers,
            self.num_p2p,
            self.num_blaster,
            self.num_welchia,
        )
        if any(count < 0 for count in counts) or sum(counts) == 0:
            raise TraceError(f"invalid host counts: {counts}")

    @property
    def num_hosts(self) -> int:
        """Total internal hosts."""
        return (
            self.num_normal
            + self.num_servers
            + self.num_p2p
            + self.num_blaster
            + self.num_welchia
        )


class _AddressPlan:
    """Deterministic address assignment for one generated trace."""

    def __init__(self, config: TraceConfig, rng: random.Random) -> None:
        self.internal: list[int] = [
            INTERNAL_BASE + 10 + i for i in range(config.num_hosts)
        ]
        self.labels: dict[int, HostClass] = {}
        cursor = 0
        for host_class, count in (
            (HostClass.NORMAL, config.num_normal),
            (HostClass.SERVER, config.num_servers),
            (HostClass.P2P, config.num_p2p),
            (HostClass.WORM_BLASTER, config.num_blaster),
            (HostClass.WORM_WELCHIA, config.num_welchia),
        ):
            for _ in range(count):
                self.labels[self.internal[cursor]] = host_class
                cursor += 1
        #: Popular named services, Zipf-ish popularity.
        self.services = [SERVICE_BASE + i for i in range(2000)]
        self._rng = rng
        self._internal_set = set(self.internal)

    def hosts_of(self, host_class: HostClass) -> list[int]:
        return [
            host for host in self.internal if self.labels[host] is host_class
        ]

    def pick_service(self, rng: random.Random) -> int:
        """Zipf-weighted popular service address."""
        # Inverse-CDF of a discretized Zipf via rejection-free power draw.
        n = len(self.services)
        rank = int(n ** rng.random()) - 1
        return self.services[max(0, min(rank, n - 1))]

    def random_external(self, rng: random.Random) -> int:
        """A pseudo-random internet address outside the internal net."""
        while True:
            address = rng.randrange(1 << 32)
            first_octet = address >> 24
            if first_octet in (0, 10, 127) or first_octet >= 224:
                continue
            if address not in self._internal_set:
                return address


def _poisson_times(
    rng: random.Random, rate: float, duration: float
) -> list[float]:
    """Arrival times of a Poisson process over ``[0, duration)``."""
    times: list[float] = []
    if rate <= 0:
        return times
    t = rng.expovariate(rate)
    while t < duration:
        times.append(t)
        t += rng.expovariate(rate)
    return times


class _TraceBuilder:
    """Accumulates records and the bookkeeping shared across behaviours.

    Records buffer in :attr:`records` in emission order; :meth:`drain`
    hands the buffer off (and clears it) so the per-host generators can
    run as an incremental stream instead of one monolithic batch.
    """

    def __init__(self, config: TraceConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self.plan = _AddressPlan(config, rng)
        self.records: list[FlowRecord] = []

    def drain(self) -> list[FlowRecord]:
        """Hand off everything emitted since the last drain."""
        emitted, self.records = self.records, []
        return emitted

    # -- primitives ------------------------------------------------------

    def dns_lookup(self, t: float, client: int, answer: int) -> None:
        """Emit a DNS query/answer pair resolving to ``answer``."""
        self.records.append(
            FlowRecord(
                time=t,
                src=client,
                dst=RESOLVER_IP,
                protocol=Protocol.UDP,
                src_port=33000 + self.rng.randrange(20000),
                dst_port=DNS_PORT,
            )
        )
        self.records.append(
            FlowRecord(
                time=t + 0.03,
                src=RESOLVER_IP,
                dst=client,
                protocol=Protocol.UDP,
                src_port=DNS_PORT,
                dst_port=33000,
                dns_answer=answer,
            )
        )

    def tcp_syn(
        self, t: float, src: int, dst: int, dst_port: int
    ) -> None:
        """Emit a TCP connection initiation."""
        self.records.append(
            FlowRecord(
                time=t,
                src=src,
                dst=dst,
                protocol=Protocol.TCP,
                src_port=40000 + self.rng.randrange(20000),
                dst_port=dst_port,
                tcp_syn=True,
            )
        )

    def tcp_reply(self, t: float, src: int, dst: int, src_port: int) -> None:
        """Emit a non-SYN TCP segment (response traffic)."""
        self.records.append(
            FlowRecord(
                time=t,
                src=src,
                dst=dst,
                protocol=Protocol.TCP,
                src_port=src_port,
                dst_port=40000 + self.rng.randrange(20000),
            )
        )

    def icmp_echo(self, t: float, src: int, dst: int) -> None:
        """Emit an ICMP echo request."""
        self.records.append(
            FlowRecord(
                time=t,
                src=src,
                dst=dst,
                protocol=Protocol.ICMP,
                icmp_echo=True,
            )
        )

    def icmp_unreachable(self, t: float, src: int, dst: int) -> None:
        """Emit an ICMP destination-unreachable (non-echo ICMP)."""
        self.records.append(
            FlowRecord(
                time=t,
                src=src,
                dst=dst,
                protocol=Protocol.ICMP,
                icmp_echo=False,
            )
        )

    # -- failure semantics (zero RNG draws at the 0.0 defaults) ----------

    def maybe_service_reply(
        self, t: float, client: int, service: int, src_port: int
    ) -> None:
        """With ``service_reply_probability``, the service answers."""
        p = self.config.service_reply_probability
        if p > 0 and self.rng.random() < p:
            self.tcp_reply(t + 0.01, service, client, src_port=src_port)

    def maybe_unreachable(self, t: float, scanner: int, target: int) -> None:
        """With ``scan_unreachable_probability``, the scan bounces."""
        p = self.config.scan_unreachable_probability
        if p > 0 and self.rng.random() < p:
            self.icmp_unreachable(t + 0.08, target, scanner)

    # -- behaviours --------------------------------------------------------

    def _inbound_stream(
        self, host: int, rate: float, dst_port: int
    ) -> list[tuple[float, int]]:
        """Emit inbound SYNs to ``host``; returns (time, remote) pairs.

        The returned pairs are the host's *prior contacters*: replies to
        them are what the paper's "no prior contact" refinement excludes.
        Pairs are time-sorted so contact emission can stay causal (a host
        only replies to remotes that have already contacted it).
        """
        arrivals: list[tuple[float, int]] = []
        for t in _poisson_times(self.rng, rate, self.config.duration):
            remote = self.plan.random_external(self.rng)
            arrivals.append((t, remote))
            self.tcp_syn(t, remote, host, dst_port=dst_port)
        return arrivals

    @staticmethod
    def _eligible_prior(
        arrivals: list[tuple[float, int]], t: float
    ) -> list[int]:
        """Remotes whose inbound contact happened strictly before ``t``."""
        return [remote for arrived, remote in arrivals if arrived < t]

    def generate_normal_client(self, host: int) -> None:
        config, rng, plan = self.config, self.rng, self.plan
        # External hosts that contact this client first (passive-mode
        # peers, AFS callbacks, ...); replies to them are excluded by the
        # paper's "no prior contact" refinement.
        inbound = self._inbound_stream(host, rate=0.01, dst_port=7001)
        for t in _poisson_times(rng, config.normal_session_rate, config.duration):
            contacts = 1
            if rng.random() < config.normal_burst_probability:
                contacts += rng.randint(1, config.normal_burst_max)
            for i in range(contacts):
                t_contact = t + 0.15 * i + rng.random() * 0.05
                if t_contact >= config.duration:
                    break
                priors = self._eligible_prior(inbound, t_contact)
                if priors and rng.random() < config.normal_reply_probability:
                    # Re-contacting someone who contacted us first.
                    prior = rng.choice(priors)
                    self.tcp_syn(t_contact, host, prior, dst_port=7001)
                    self.maybe_service_reply(
                        t_contact, host, prior, src_port=7001
                    )
                    continue
                target = plan.pick_service(rng)
                if rng.random() < config.normal_direct_probability:
                    self.tcp_syn(t_contact, host, target, dst_port=80)
                    self.maybe_service_reply(
                        t_contact, host, target, src_port=80
                    )
                else:
                    self.dns_lookup(t_contact, host, target)
                    self.tcp_syn(t_contact + 0.05, host, target, dst_port=80)
                    self.maybe_service_reply(
                        t_contact + 0.05, host, target, src_port=80
                    )

    def generate_server(self, host: int) -> None:
        config, rng, plan = self.config, self.rng, self.plan
        service_port = rng.choice([25, 53, 80, 143, 110, 443])
        for t in _poisson_times(rng, config.server_inbound_rate, config.duration):
            remote = plan.random_external(rng)
            self.tcp_syn(t, remote, host, dst_port=service_port)
            self.tcp_reply(t + 0.01, host, remote, src_port=service_port)
        for t in _poisson_times(rng, config.server_outbound_rate, config.duration):
            target = plan.pick_service(rng)
            self.dns_lookup(t, host, target)
            self.tcp_syn(t + 0.05, host, target, dst_port=25)
            self.maybe_service_reply(t + 0.05, host, target, src_port=25)

    def generate_p2p_client(self, host: int) -> None:
        config, rng, plan = self.config, self.rng, self.plan
        # Peers continuously discover this client; replying to them is the
        # bulk of P2P chatter and is excluded by the no-prior refinement.
        # A flurry of known peers reconnects right at the start (the client
        # was already in the overlay), so the reply pool is never empty.
        inbound: list[tuple[float, int]] = []
        for i in range(25):
            t0 = rng.uniform(0.0, 2.0)
            remote = plan.random_external(rng)
            inbound.append((t0, remote))
            self.tcp_syn(t0, remote, host, dst_port=6346)
        inbound.sort()
        inbound.extend(self._inbound_stream(host, rate=0.15, dst_port=6346))
        inbound.sort()

        def emit_contact(t: float) -> None:
            priors = self._eligible_prior(inbound, t)
            if priors and rng.random() < config.p2p_reply_fraction:
                prior = rng.choice(priors)
                self.tcp_syn(t, host, prior, dst_port=6346)
                self.maybe_service_reply(t, host, prior, src_port=6346)
                return
            if rng.random() < config.p2p_dns_fraction:
                target = plan.pick_service(rng)
                self.dns_lookup(t, host, target)
                self.tcp_syn(t + 0.05, host, target, dst_port=6969)
                self.maybe_service_reply(t + 0.05, host, target, src_port=6969)
            else:
                # Peer-churn contacts stay unanswered: dead peers are the
                # benign false-positive pressure on the failure detector.
                target = plan.random_external(rng)
                self.tcp_syn(t, host, target, dst_port=6346)

        for t in _poisson_times(rng, config.p2p_contact_rate, config.duration):
            emit_contact(t)
        for t in _poisson_times(rng, config.p2p_burst_rate, config.duration):
            for i in range(rng.randint(10, config.p2p_burst_max)):
                t_burst = t + i * 0.08
                if t_burst < config.duration:
                    emit_contact(t_burst)

    def generate_blaster(self, host: int) -> None:
        """Persistent sequential TCP/135 scanning with peak episodes.

        Scanning proceeds in 20–60 s episodes; an episode runs at the
        sustained rate, or at the peak rate with probability
        ``blaster_peak_fraction`` — which is what produces the paper's
        "671 hosts in a minute" peak windows.
        """
        config, rng = self.config, self.rng
        # Blaster sweeps addresses sequentially from a random base.
        cursor = self.plan.random_external(rng) & 0xFFFF0000
        offset = 0
        t = rng.random()
        while t < config.duration:
            episode_end = min(t + rng.uniform(20.0, 60.0), config.duration)
            in_peak = rng.random() < config.blaster_peak_fraction
            rate = (
                config.blaster_peak_rate if in_peak else config.blaster_scan_rate
            )
            while t < episode_end:
                target = (cursor + offset) & 0xFFFFFFFF
                offset += 1
                if (target >> 24) not in (0, 10, 127):
                    self.tcp_syn(t, host, target, dst_port=DCOM_PORT)
                    self.maybe_unreachable(t, host, target)
                t += rng.expovariate(rate)

    def generate_welchia(self, host: int) -> None:
        """Bursty ICMP sweeps; responders get a TCP/135 exploit probe."""
        config, rng = self.config, self.rng
        t = rng.random()
        while t < config.duration:
            if rng.random() < config.welchia_active_fraction:
                peak = rng.random() < 0.15
                # Peak episodes sustain a near-full minute of scanning —
                # that is where the "7,068 hosts in a minute" comes from.
                sweep_length = (
                    rng.uniform(45.0, 60.0) if peak else rng.uniform(5.0, 20.0)
                )
                rate = (
                    config.welchia_peak_rate if peak else config.welchia_sweep_rate
                )
                cursor = self.plan.random_external(rng) & 0xFFFFFF00
                step = 0
                t_scan = t
                while t_scan < min(t + sweep_length, config.duration):
                    target = (cursor + step) & 0xFFFFFFFF
                    step += 1
                    if (target >> 24) not in (0, 10, 127):
                        self.icmp_echo(t_scan, host, target)
                        if rng.random() < config.welchia_probe_probability:
                            self.tcp_syn(
                                t_scan + 0.02, host, target, dst_port=DCOM_PORT
                            )
                        else:
                            # Non-responders may bounce the ping.
                            self.maybe_unreachable(t_scan, host, target)
                    t_scan += rng.expovariate(rate)
                t += sweep_length
            else:
                # Idle period (rebooting, patching, or dormant).
                t += rng.uniform(5.0, 30.0)


def _iter_builder_records(builder: _TraceBuilder) -> Iterator[FlowRecord]:
    """Run every behaviour model, draining records host by host.

    This is the single generation path: the class order and per-class
    host order replicate the historical batch loop exactly, so a
    collector over this iterator reproduces the pre-refactor
    ``generate_trace`` output byte for byte.
    """
    behaviours = (
        (HostClass.NORMAL, builder.generate_normal_client),
        (HostClass.SERVER, builder.generate_server),
        (HostClass.P2P, builder.generate_p2p_client),
        (HostClass.WORM_BLASTER, builder.generate_blaster),
        (HostClass.WORM_WELCHIA, builder.generate_welchia),
    )
    for host_class, behave in behaviours:
        for host in builder.plan.hosts_of(host_class):
            behave(host)
            yield from builder.drain()


def iter_flow_records(config: TraceConfig | None = None) -> Iterator[FlowRecord]:
    """Incrementally generate the flow records of a synthetic trace.

    Yields records in *generation* order (host by host), holding only
    one host's worth of records at a time — the memory-bounded path the
    streaming subsystem consumes.  ``list(iter_flow_records(c))`` is
    exactly the record list ``generate_trace(c)`` is built from.
    """
    config = config or TraceConfig()
    builder = _TraceBuilder(config, random.Random(config.seed))
    yield from _iter_builder_records(builder)


def generate_trace(config: TraceConfig | None = None) -> Trace:
    """Generate a labeled synthetic trace per ``config`` (seeded).

    A thin collector over :func:`iter_flow_records`' generation path.
    """
    config = config or TraceConfig()
    builder = _TraceBuilder(config, random.Random(config.seed))
    records = list(_iter_builder_records(builder))
    return Trace(
        records,
        builder.plan.internal,
        labels=builder.plan.labels,
    )
