"""Behavioural host classification (how the paper found its 999/17/33/79).

The paper partitioned the ECE subnet into normal clients, servers, P2P
clients, and worm-infected systems by connectivity characteristics, and
told Blaster from Welchia by "looking for a large amount of ICMP echo
requests intermixed with TCP SYNs to port 135".  This module implements
those heuristics over flow records so the synthetic generator's ground
truth can validate them (and so the pipeline would work on real traces).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .records import DNS_PORT, HostClass, Protocol, Trace

__all__ = ["HostProfile", "profile_hosts", "classify_hosts", "census"]

#: Windows DCOM RPC port targeted by Blaster and Welchia.
DCOM_PORT = 135
#: Ports that mark a host as providing a well-known service.
SERVICE_PORTS = frozenset({22, 25, 53, 80, 110, 143, 443, 993, 995})


@dataclass
class HostProfile:
    """Connectivity features of one internal host."""

    host: int
    outbound_initiations: int = 0
    distinct_destinations: int = 0
    icmp_echoes: int = 0
    dcom_syns: int = 0
    dns_lookups: int = 0
    inbound_initiations: int = 0
    inbound_service_hits: int = 0
    peak_per_minute: int = 0
    #: Distinct destinations per active minute, destinations set internally.
    _per_minute: dict[int, set[int]] = field(default_factory=dict, repr=False)

    @property
    def scans_dcom(self) -> bool:
        """Whether the host SYN-scans the DCOM port at worm-like volume."""
        return self.dcom_syns >= 30

    @property
    def dns_ratio(self) -> float:
        """DNS lookups relative to outbound initiations."""
        if self.outbound_initiations == 0:
            return 1.0
        return self.dns_lookups / self.outbound_initiations


def profile_hosts(trace: Trace) -> dict[int, HostProfile]:
    """One streaming pass computing a :class:`HostProfile` per host."""
    profiles: dict[int, HostProfile] = {
        host: HostProfile(host=host) for host in trace.internal_hosts
    }
    for record in trace:
        internal_src = trace.is_internal(record.src)
        internal_dst = trace.is_internal(record.dst)
        if internal_src and not internal_dst:
            profile = profiles[record.src]
            if record.protocol is Protocol.UDP and record.dst_port == DNS_PORT:
                profile.dns_lookups += 1
                continue
            if not record.initiates_contact:
                continue
            profile.outbound_initiations += 1
            minute = int(record.time // 60.0)
            bucket = profile._per_minute.setdefault(minute, set())
            bucket.add(record.dst)
            if record.protocol is Protocol.ICMP and record.icmp_echo:
                profile.icmp_echoes += 1
            if (
                record.protocol is Protocol.TCP
                and record.tcp_syn
                and record.dst_port == DCOM_PORT
            ):
                profile.dcom_syns += 1
        elif internal_dst and not internal_src and record.initiates_contact:
            profile = profiles[record.dst]
            profile.inbound_initiations += 1
            if record.dst_port in SERVICE_PORTS:
                profile.inbound_service_hits += 1

    for profile in profiles.values():
        all_destinations: set[int] = set()
        for destinations in profile._per_minute.values():
            all_destinations |= destinations
        profile.distinct_destinations = len(all_destinations)
        profile.peak_per_minute = max(
            (len(d) for d in profile._per_minute.values()), default=0
        )
        profile._per_minute.clear()
    return profiles


def classify_hosts(trace: Trace) -> dict[int, HostClass]:
    """Assign a :class:`HostClass` to every internal host.

    Decision order mirrors the paper's reasoning:

    1. heavy ICMP-echo scanning intermixed with TCP/135 → Welchia;
    2. sustained TCP/135 SYN scanning of many addresses → Blaster;
    3. inbound-dominated traffic on well-known service ports → server;
    4. high-fanout, mostly DNS-less outbound → P2P;
    5. everything else → normal client.
    """
    classes: dict[int, HostClass] = {}
    for host, profile in profile_hosts(trace).items():
        if profile.icmp_echoes >= 100 and profile.dcom_syns >= 5:
            classes[host] = HostClass.WORM_WELCHIA
        elif profile.scans_dcom and profile.distinct_destinations >= 50:
            classes[host] = HostClass.WORM_BLASTER
        elif (
            profile.inbound_service_hits >= 20
            and profile.inbound_initiations
            > 2 * max(profile.outbound_initiations, 1)
        ):
            classes[host] = HostClass.SERVER
        elif (
            profile.distinct_destinations >= 25
            and profile.dns_ratio < 0.80
            and not profile.scans_dcom
        ):
            classes[host] = HostClass.P2P
        else:
            classes[host] = HostClass.NORMAL
    return classes


def census(classes: dict[int, HostClass]) -> dict[HostClass, int]:
    """Host counts per class (the paper's 999 / 17 / 33 / 79 table)."""
    counts: dict[HostClass, int] = defaultdict(int)
    for host_class in classes.values():
        counts[host_class] += 1
    return dict(counts)
