"""Trace analysis: CDFs, percentile rate limits, and window-size studies.

These functions turn :class:`~repro.traces.windows.WindowCounts` into the
published artifacts: the contact-rate CDFs of Figure 9, the practical
rate-limit table ("16 / 14 / 9 per five seconds" etc.), the per-minute
worm scanning peaks, and the window-size tradeoff (5 / 12 / 50 across
1 s / 5 s / 60 s windows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .records import Trace, TraceError
from .windows import Refinement, WindowCounts, count_contacts

__all__ = [
    "empirical_cdf",
    "RateLimitTable",
    "recommend_rate_limits",
    "window_size_study",
    "peak_scan_rate",
    "contact_rate_ratio",
]


def empirical_cdf(counts: WindowCounts) -> tuple[np.ndarray, np.ndarray]:
    """(values, fraction_of_time) arrays for a Figure 9 style CDF."""
    data = np.asarray(sorted(counts.counts), dtype=float)
    if data.size == 0:
        raise TraceError("cannot build a CDF from zero windows")
    fractions = np.arange(1, data.size + 1) / data.size
    return data, fractions


@dataclass(frozen=True)
class RateLimitTable:
    """Recommended contact-rate limits for one host group.

    Each limit is the ``coverage`` quantile (paper: 99.9%) of the windowed
    contact counts under the matching refinement — the tightest limit that
    leaves legitimate traffic unaffected that fraction of the time.
    """

    group: str
    window: float
    coverage: float
    all_contacts: int
    no_prior_contact: int
    no_dns: int

    def as_rows(self) -> list[tuple[str, int]]:
        """(refinement, limit) rows for the report printers."""
        return [
            ("distinct IPs", self.all_contacts),
            ("distinct IPs (no prior contact)", self.no_prior_contact),
            ("distinct IPs (no prior contact, no DNS)", self.no_dns),
        ]


def recommend_rate_limits(
    trace: Trace,
    hosts: list[int],
    *,
    group: str,
    window: float = 5.0,
    coverage: float = 0.999,
) -> RateLimitTable:
    """Derive the paper's rate-limit table for one host group.

    For the 999 normal clients the paper reports 16 / 14 / 9 contacts per
    five seconds at 99.9% coverage; for the 33 P2P clients, 89 / 61 / 26.
    """
    if not hosts:
        raise TraceError(f"group {group!r} has no hosts")
    host_set = set(hosts)
    limits: dict[Refinement, int] = {}
    for refinement in Refinement:
        counts = count_contacts(
            trace, host_set, window=window, refinement=refinement
        )
        limits[refinement] = counts.percentile(coverage)
    return RateLimitTable(
        group=group,
        window=window,
        coverage=coverage,
        all_contacts=limits[Refinement.ALL],
        no_prior_contact=limits[Refinement.NO_PRIOR],
        no_dns=limits[Refinement.NO_DNS],
    )


def window_size_study(
    trace: Trace,
    hosts: list[int],
    *,
    windows: tuple[float, ...] = (1.0, 5.0, 60.0),
    refinement: Refinement = Refinement.NO_DNS,
    coverage: float = 0.999,
) -> dict[float, int]:
    """Quantile limits across window sizes (the 5 / 12 / 50 observation).

    Longer windows admit lower *per-second* limits because bursts average
    out: the paper reports aggregate non-DNS 99.9% values of five for one
    second, twelve for five seconds, and fifty for sixty seconds.
    """
    host_set = set(hosts)
    study: dict[float, int] = {}
    for window in windows:
        counts = count_contacts(
            trace, host_set, window=window, refinement=refinement
        )
        study[window] = counts.percentile(coverage)
    return study


def peak_scan_rate(
    trace: Trace, host: int, *, window: float = 60.0
) -> int:
    """Peak distinct hosts contacted by ``host`` in any single window.

    The paper's footnote: a Welchia instance scanned 7,068 hosts in a
    minute; Blaster peaked at 671.
    """
    if host not in trace.internal_hosts:
        raise TraceError(f"host {host} is not internal to the trace")
    end_time = trace.records[-1].time if len(trace) else 0.0
    num_windows = max(1, math.ceil(end_time / window)) if end_time else 1
    distinct: list[set[int]] = [set() for _ in range(num_windows)]
    for record in trace:
        if record.src != host or not record.initiates_contact:
            continue
        if trace.is_internal(record.dst):
            continue
        index = min(int(record.time // window), num_windows - 1)
        distinct[index].add(record.dst)
    return max(len(s) for s in distinct)


def contact_rate_ratio(
    trace: Trace,
    hosts: list[int],
    *,
    window: float = 5.0,
    coverage: float = 0.999,
) -> dict[str, float]:
    """Throttle-budget ratios feeding the Figure 10 model.

    The paper picks gamma:beta ratios of 1:2 for the DNS-based scheme and
    1:6 for the plain IP throttle, because the DNS refinement admits an
    aggregate limit 2–4x lower than counting all distinct addresses.  This
    returns the measured equivalents: the ratio of each refined limit to
    the unrefined one.
    """
    table = recommend_rate_limits(
        trace, hosts, group="ratio", window=window, coverage=coverage
    )
    if table.all_contacts == 0:
        raise TraceError("no contacts observed; cannot form ratios")
    return {
        "no_prior_over_all": table.no_prior_contact / table.all_contacts,
        "no_dns_over_all": table.no_dns / table.all_contacts,
    }
