"""Trace study substrate (Section 7): flow records, DNS translation model,
synthetic campus-trace generation, windowed contact counting, rate-limit
derivation, and behavioural host classification."""

from .analysis import (
    RateLimitTable,
    contact_rate_ratio,
    empirical_cdf,
    peak_scan_rate,
    recommend_rate_limits,
    window_size_study,
)
from .classify import HostProfile, census, classify_hosts, profile_hosts
from .dns import DEFAULT_DNS_TTL, DnsCache
from .records import (
    DEFAULT_FAILURE_TIMEOUT,
    DNS_PORT,
    FailedContact,
    FlowRecord,
    HostClass,
    Protocol,
    Trace,
    TraceError,
    ip_to_str,
    str_to_ip,
)
from .synth import (
    INTERNAL_BASE,
    RESOLVER_IP,
    TraceConfig,
    generate_trace,
    iter_flow_records,
)
from .windows import (
    Refinement,
    WindowCounts,
    count_contacts,
    per_host_counts,
    sliding_counts,
)

__all__ = [
    "RateLimitTable",
    "contact_rate_ratio",
    "empirical_cdf",
    "peak_scan_rate",
    "recommend_rate_limits",
    "window_size_study",
    "HostProfile",
    "census",
    "classify_hosts",
    "profile_hosts",
    "DEFAULT_DNS_TTL",
    "DnsCache",
    "DEFAULT_FAILURE_TIMEOUT",
    "DNS_PORT",
    "FailedContact",
    "FlowRecord",
    "HostClass",
    "Protocol",
    "Trace",
    "TraceError",
    "ip_to_str",
    "str_to_ip",
    "INTERNAL_BASE",
    "RESOLVER_IP",
    "TraceConfig",
    "generate_trace",
    "iter_flow_records",
    "Refinement",
    "WindowCounts",
    "count_contacts",
    "per_host_counts",
    "sliding_counts",
]
