"""Sliding/tumbling-window contact counting with the paper's refinements.

Figure 9 plots, for a set of hosts and a 5-second window, the CDF of the
number of distinct foreign addresses contacted, under three progressively
tighter definitions of "contact":

* ``ALL`` — every distinct destination of an initiated outbound flow;
* ``NO_PRIOR`` — excluding destinations that had *initiated contact with
  us first* (responses to inbound connections are not suspicious);
* ``NO_DNS`` — additionally excluding destinations for which the source
  held a *valid DNS translation* (worms contact raw addresses).

Counts are produced for every window in the trace, including empty ones —
the CDF's y axis is "fraction of time", so quiet windows matter.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass
from enum import Enum

from .dns import DEFAULT_DNS_TTL, DnsCache
from .records import Trace, TraceError

__all__ = [
    "Refinement",
    "WindowCounts",
    "count_contacts",
    "per_host_counts",
    "sliding_counts",
]


class Refinement(Enum):
    """Contact-classification refinement (Figure 9's three lines)."""

    ALL = "distinct_ips"
    NO_PRIOR = "no_prior_contact"
    NO_DNS = "no_prior_no_dns"


@dataclass(frozen=True)
class WindowCounts:
    """Distinct-contact counts for consecutive windows of one size.

    Attributes
    ----------
    window:
        Window length in seconds.
    refinement:
        Which contact classification produced the counts.
    counts:
        One integer per window covering the whole trace (zeros included).
    """

    window: float
    refinement: Refinement
    counts: tuple[int, ...]

    def fraction_of_time_at_or_below(self, limit: int) -> float:
        """Fraction of windows with count <= ``limit`` (Figure 9 y-axis)."""
        if not self.counts:
            return 1.0
        return sum(1 for c in self.counts if c <= limit) / len(self.counts)

    def percentile(self, q: float) -> int:
        """Smallest count covering fraction ``q`` of windows."""
        if not 0.0 < q <= 1.0:
            raise TraceError(f"q must be in (0, 1], got {q}")
        if not self.counts:
            return 0
        ordered = sorted(self.counts)
        index = min(math.ceil(q * len(ordered)) - 1, len(ordered) - 1)
        return ordered[max(index, 0)]

    def max(self) -> int:
        """Largest windowed count."""
        return max(self.counts) if self.counts else 0


def _num_windows(end_time: float, window: float) -> int:
    """Windows needed so a record at exactly ``end_time`` has a bucket.

    ``end_time`` is the last record's timestamp: a record at t falls in
    window ``floor(t / window)``, so ``floor(end / window) + 1`` windows
    cover every record including one sitting exactly on a boundary.
    """
    if end_time <= 0:
        return 1
    return int(end_time // window) + 1


def count_contacts(
    trace: Trace,
    hosts: set[int] | frozenset[int],
    *,
    window: float = 5.0,
    refinement: Refinement = Refinement.ALL,
    dns_ttl: float = DEFAULT_DNS_TTL,
) -> WindowCounts:
    """Aggregate distinct-destination counts over ``hosts`` per window.

    One streaming pass: DNS answers update the translation cache, inbound
    initiations update the prior-contact sets, and outbound initiations
    from ``hosts`` to external destinations are counted after the
    refinement filters.  Distinctness is per (source, destination) within
    the window, matching an edge filter that tracks per-host contact sets.
    """
    if window <= 0:
        raise TraceError(f"window must be positive, got {window}")
    bad = hosts - trace.internal_hosts
    if bad:
        raise TraceError(f"hosts not internal to the trace: {sorted(bad)[:5]}")

    end_time = trace.records[-1].time if len(trace) else 0.0
    counts = [0] * _num_windows(end_time, window)

    dns = DnsCache(ttl=dns_ttl)
    prior_contacts: dict[int, set[int]] = defaultdict(set)
    seen_in_window: set[tuple[int, int]] = set()
    current_window = 0

    for record in trace:
        index = min(int(record.time // window), len(counts) - 1)
        if index != current_window:
            seen_in_window.clear()
            current_window = index

        dns.observe(record)

        internal_src = trace.is_internal(record.src)
        internal_dst = trace.is_internal(record.dst)

        if not internal_src and internal_dst and record.initiates_contact:
            prior_contacts[record.dst].add(record.src)
            continue

        if not (internal_src and not internal_dst):
            continue
        if record.src not in hosts or not record.initiates_contact:
            continue
        if refinement in (Refinement.NO_PRIOR, Refinement.NO_DNS):
            if record.dst in prior_contacts[record.src]:
                continue
        if refinement is Refinement.NO_DNS:
            if dns.has_valid_translation(record.src, record.dst, record.time):
                continue
        key = (record.src, record.dst)
        if key in seen_in_window:
            continue
        seen_in_window.add(key)
        counts[index] += 1

    return WindowCounts(
        window=window, refinement=refinement, counts=tuple(counts)
    )


def per_host_counts(
    trace: Trace,
    hosts: list[int],
    *,
    window: float = 5.0,
    refinement: Refinement = Refinement.ALL,
    dns_ttl: float = DEFAULT_DNS_TTL,
) -> dict[int, WindowCounts]:
    """Per-host windowed counts (the "individual host rates" analysis).

    Equivalent to calling :func:`count_contacts` once per host but done in
    a single streaming pass over the trace.
    """
    if window <= 0:
        raise TraceError(f"window must be positive, got {window}")
    host_set = set(hosts)
    bad = host_set - trace.internal_hosts
    if bad:
        raise TraceError(f"hosts not internal to the trace: {sorted(bad)[:5]}")

    end_time = trace.records[-1].time if len(trace) else 0.0
    num_windows = _num_windows(end_time, window)
    counts: dict[int, list[int]] = {h: [0] * num_windows for h in hosts}

    dns = DnsCache(ttl=dns_ttl)
    prior_contacts: dict[int, set[int]] = defaultdict(set)
    seen_in_window: dict[int, set[int]] = {h: set() for h in hosts}
    current_window = 0

    for record in trace:
        index = min(int(record.time // window), num_windows - 1)
        if index != current_window:
            for seen in seen_in_window.values():
                seen.clear()
            current_window = index

        dns.observe(record)

        internal_src = trace.is_internal(record.src)
        internal_dst = trace.is_internal(record.dst)
        if not internal_src and internal_dst and record.initiates_contact:
            prior_contacts[record.dst].add(record.src)
            continue
        if not (internal_src and not internal_dst):
            continue
        if record.src not in host_set or not record.initiates_contact:
            continue
        if refinement in (Refinement.NO_PRIOR, Refinement.NO_DNS):
            if record.dst in prior_contacts[record.src]:
                continue
        if refinement is Refinement.NO_DNS:
            if dns.has_valid_translation(record.src, record.dst, record.time):
                continue
        if record.dst in seen_in_window[record.src]:
            continue
        seen_in_window[record.src].add(record.dst)
        counts[record.src][index] += 1

    return {
        host: WindowCounts(
            window=window, refinement=refinement, counts=tuple(counts[host])
        )
        for host in hosts
    }


def sliding_counts(
    trace: Trace,
    hosts: set[int] | frozenset[int],
    *,
    window: float = 5.0,
    refinement: Refinement = Refinement.ALL,
    dns_ttl: float = DEFAULT_DNS_TTL,
) -> dict[int, list[int]]:
    """Trailing-window distinct-contact counts, sampled at every contact.

    Tumbling windows (the default analysis) understate worst-case bursts
    that straddle a boundary; a throttle enforcing "at most L distinct
    addresses in any 5-second period" sees the *sliding* count.  For each
    counted outbound contact this returns the number of distinct
    destinations the source contacted in the trailing ``window`` seconds
    (including this one), per host.

    A burst admissible under tumbling limit ``L`` can reach at most
    ``2 L`` in a sliding window (two adjacent tumbling windows overlap
    any sliding one) — the property the test suite verifies.
    """
    if window <= 0:
        raise TraceError(f"window must be positive, got {window}")
    host_set = set(hosts)
    bad = host_set - trace.internal_hosts
    if bad:
        raise TraceError(f"hosts not internal to the trace: {sorted(bad)[:5]}")

    dns = DnsCache(ttl=dns_ttl)
    prior_contacts: dict[int, set[int]] = defaultdict(set)
    # Per host: trailing-window event log and per-destination counts.
    event_log: dict[int, deque[tuple[float, int]]] = {
        h: deque() for h in host_set
    }
    active: dict[int, dict[int, int]] = {h: defaultdict(int) for h in host_set}
    out: dict[int, list[int]] = {h: [] for h in host_set}

    for record in trace:
        dns.observe(record)
        internal_src = trace.is_internal(record.src)
        internal_dst = trace.is_internal(record.dst)
        if not internal_src and internal_dst and record.initiates_contact:
            prior_contacts[record.dst].add(record.src)
            continue
        if not (internal_src and not internal_dst):
            continue
        src = record.src
        if src not in host_set or not record.initiates_contact:
            continue
        if refinement in (Refinement.NO_PRIOR, Refinement.NO_DNS):
            if record.dst in prior_contacts[src]:
                continue
        if refinement is Refinement.NO_DNS:
            if dns.has_valid_translation(src, record.dst, record.time):
                continue
        log = event_log[src]
        counts = active[src]
        cutoff = record.time - window
        while log and log[0][0] <= cutoff:
            _old_time, old_dst = log.popleft()
            counts[old_dst] -= 1
            if counts[old_dst] == 0:
                del counts[old_dst]
        log.append((record.time, record.dst))
        counts[record.dst] += 1
        out[src].append(len(counts))
    return out
