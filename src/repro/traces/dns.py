"""DNS-translation cache model (the Ganger et al. refinement).

The DNS-based rate-limiting refinement counts only contacts to addresses
*without* a valid DNS translation: worms pick pseudo-random 32-bit targets
and never resolve a name first, while almost all legitimate client traffic
follows a lookup.  The cache here replays DNS answer records from a trace
and answers the one question the analysis needs: *did this client hold a
valid translation for that address at that moment?*
"""

from __future__ import annotations

from collections import defaultdict

from .records import DNS_PORT, FlowRecord, Trace

__all__ = ["DnsCache", "DEFAULT_DNS_TTL"]

#: Default translation lifetime, seconds.  Generous on purpose: the scheme
#: errs toward not penalizing legitimate traffic.
DEFAULT_DNS_TTL = 1800.0


class DnsCache:
    """Per-client cache of (resolved address, expiry) pairs.

    Feed it DNS answer records in time order (:meth:`observe`); query with
    :meth:`has_valid_translation`.  ``build_from_trace`` replays a whole
    trace in one call.
    """

    def __init__(self, ttl: float = DEFAULT_DNS_TTL) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self._ttl = ttl
        # client -> {resolved address -> expiry time}
        self._entries: dict[int, dict[int, float]] = defaultdict(dict)
        self.answers_observed = 0

    @property
    def ttl(self) -> float:
        """Translation lifetime in seconds."""
        return self._ttl

    def observe(self, record: FlowRecord) -> bool:
        """Ingest one record; returns True if it carried a DNS answer.

        A DNS answer from a resolver (src port 53) to a client installs
        the resolved address in that client's cache.
        """
        if record.dns_answer is None or record.src_port != DNS_PORT:
            return False
        client = record.dst
        self._entries[client][record.dns_answer] = record.time + self._ttl
        self.answers_observed += 1
        return True

    def has_valid_translation(self, client: int, address: int, now: float) -> bool:
        """Whether ``client`` held a live translation for ``address``."""
        expiry = self._entries.get(client, {}).get(address)
        return expiry is not None and now <= expiry

    def entries_for(self, client: int, now: float) -> set[int]:
        """Addresses with live translations for ``client`` (diagnostics)."""
        table = self._entries.get(client, {})
        return {address for address, expiry in table.items() if now <= expiry}

    @classmethod
    def build_from_trace(
        cls, trace: Trace, *, ttl: float = DEFAULT_DNS_TTL
    ) -> "DnsCache":
        """Replay every DNS answer in ``trace`` into a fresh cache.

        Note: the resulting cache holds *final* state; for time-accurate
        queries during a streaming pass, interleave :meth:`observe` calls
        instead (the window counters do exactly that).
        """
        cache = cls(ttl=ttl)
        for record in trace:
            cache.observe(record)
        return cache
