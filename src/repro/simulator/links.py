"""Rate-limited links: token buckets, FIFO queues, and drop accounting.

The paper implements rate limiting "by restricting the maximal number of
packets each link can route at each time tick and queuing the remaining
packets".  Rates from the analytical models are often fractional (e.g. a
hub budget of 0.01 contacts/tick), so each limited link carries a token
bucket: ``rate`` tokens accrue per tick up to a small burst ceiling, and
forwarding one packet costs one token.  An unlimited link forwards its
whole queue every tick.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .packet import Packet

__all__ = ["TokenBucket", "DirectedLink", "LinkStats"]


class TokenBucket:
    """Fractional-rate token bucket with deterministic accrual.

    Parameters
    ----------
    rate:
        Tokens added per tick.  May be fractional; a rate of 0.01 lets one
        packet through roughly every 100 ticks.
    burst:
        Token ceiling.  Defaults to ``rate + 1``: large enough that the
        sub-packet remainder left after forwarding is never clipped (so
        long-run throughput equals ``rate`` exactly), small enough that a
        quiet link cannot save up a meaningful burst.  The bucket starts
        empty, so the first tick forwards at most ``rate`` packets.
    """

    def __init__(self, rate: float, burst: float | None = None) -> None:
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        self._rate = float(rate)
        self._burst = float(burst) if burst is not None else self._rate + 1.0
        if self._burst <= 0:
            raise ValueError(f"burst must be positive, got {self._burst}")
        self._tokens = 0.0

    @property
    def rate(self) -> float:
        """Tokens accrued per tick."""
        return self._rate

    @property
    def burst(self) -> float:
        """Token ceiling."""
        return self._burst

    @property
    def tokens(self) -> float:
        """Currently available tokens."""
        return self._tokens

    def refill(self, ticks: float = 1.0) -> None:
        """Advance ``ticks`` ticks: accrue ``rate * ticks`` up to the cap.

        The default (one tick) is the simulator's discrete clock; the
        service quota layer reuses the same bucket on a wall clock by
        passing fractional elapsed seconds.  Negative ``ticks`` (a
        clock running backwards) accrue nothing rather than debiting —
        tokens only ever move down through :meth:`try_consume`.
        """
        if ticks <= 0:
            return
        self._tokens = min(self._tokens + self._rate * ticks, self._burst)

    def try_consume(self, amount: float = 1.0) -> bool:
        """Spend ``amount`` tokens if available; returns success."""
        if self._tokens + 1e-12 >= amount:
            self._tokens -= amount
            return True
        return False


@dataclass
class LinkStats:
    """Per-link counters for the experiment reports."""

    forwarded: int = 0
    dropped: int = 0
    enqueued: int = 0
    peak_queue: int = 0
    #: Drained packets pushed back by a downstream forwarding budget.
    requeued: int = 0


class DirectedLink:
    """One direction of a network link, with optional rate limiting.

    Packets are offered to the link's FIFO queue and drained by the
    transmit phase: an unlimited link forwards everything, a limited link
    forwards while its token bucket has credit.  The queue is bounded
    (drop-tail) so pathological scenarios cannot exhaust memory; drops are
    counted, mirroring what a real router under worm load would do.
    """

    def __init__(
        self,
        src: int,
        dst: int,
        *,
        rate_limit: float | None = None,
        max_queue: int = 100_000,
    ) -> None:
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        self.src = src
        self.dst = dst
        self._bucket = TokenBucket(rate_limit) if rate_limit is not None else None
        self._queue: deque[Packet] = deque()
        self._max_queue = max_queue
        self.stats = LinkStats()

    @property
    def is_rate_limited(self) -> bool:
        """Whether this direction carries a rate limit."""
        return self._bucket is not None

    @property
    def rate_limit(self) -> float | None:
        """Configured rate in packets/tick, or ``None`` if unlimited."""
        return self._bucket.rate if self._bucket else None

    @property
    def bucket(self) -> TokenBucket | None:
        """The installed token bucket, or ``None`` if unlimited.

        Exposed so the fast engine can mirror a link's exact bucket
        configuration (and detect mid-run changes by identity) without
        reaching into private state.
        """
        return self._bucket

    @property
    def max_queue(self) -> int:
        """Drop-tail queue bound in packets."""
        return self._max_queue

    @property
    def queue_length(self) -> int:
        """Packets currently waiting on this link."""
        return len(self._queue)

    def set_rate_limit(self, rate: float | None) -> None:
        """Install (or remove, with ``None``) a rate limit on this link."""
        self._bucket = TokenBucket(rate) if rate is not None else None

    def offer(self, packet: Packet) -> bool:
        """Queue a packet for transmission; False if drop-tail discarded it."""
        if len(self._queue) >= self._max_queue:
            self.stats.dropped += 1
            return False
        self._queue.append(packet)
        self.stats.enqueued += 1
        if len(self._queue) > self.stats.peak_queue:
            self.stats.peak_queue = len(self._queue)
        return True

    def requeue_front(self, packet: Packet) -> None:
        """Return an already-drained packet to the head of the queue.

        Used when a downstream node's forwarding budget blocks a packet
        after the link itself released it: the packet keeps its FIFO slot
        and retries next tick.  The hop counted by :meth:`drain` is
        reverted.
        """
        packet.hops -= 1
        self.stats.forwarded -= 1
        self.stats.requeued += 1
        self._queue.appendleft(packet)

    def load_queue(self, packets: list[Packet]) -> None:
        """Replace the queue contents without touching stats.

        A state-restore hook for the fast engine's end-of-run writeback:
        the packets were already counted (enqueued/forwarded/...) by the
        fast transport's own accounting, so re-offering them would
        double-count.
        """
        self._queue = deque(packets)

    def drain(self) -> list[Packet]:
        """Forward this tick's worth of packets (token-bucket limited)."""
        if self._bucket is not None:
            self._bucket.refill()
        delivered: list[Packet] = []
        while self._queue:
            if self._bucket is not None and not self._bucket.try_consume():
                break
            packet = self._queue.popleft()
            packet.hops += 1
            delivered.append(packet)
            self.stats.forwarded += 1
        return delivered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limit = f", rate={self.rate_limit}" if self.is_rate_limited else ""
        return f"DirectedLink({self.src}->{self.dst}{limit}, q={self.queue_length})"
