"""Post-run network diagnostics: where did the worm traffic pile up?

After a simulated outbreak the interesting operational questions are the
ones a backbone operator would ask: which links carried the load, where
did queues build, how much was dropped, and how well do the hotspots
match the routing-occupancy weights the defense was sized with.  This
module summarizes a :class:`~repro.simulator.network.Network`'s counters
into a printable report.

The totals come straight from the observability counters —
``network.stats`` for the cumulative injected/delivered/dropped tallies,
:meth:`~repro.simulator.network.Network.total_queued` for in-flight
packets, and the bucketed queue histogram from
:mod:`repro.observability.stats` — rather than being re-derived by
walking link state, so the report and the runner's
:class:`~repro.runner.results.RunMetrics` can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..observability.stats import queue_histogram
from .network import Network

__all__ = ["LinkHotspot", "NetworkReport", "network_report"]


@dataclass(frozen=True)
class LinkHotspot:
    """One heavily used directed link."""

    src: int
    dst: int
    forwarded: int
    dropped: int
    peak_queue: int
    rate_limit: float | None

    @property
    def label(self) -> str:
        """``u->v`` display form."""
        return f"{self.src}->{self.dst}"


@dataclass(frozen=True)
class NetworkReport:
    """Aggregate traffic/congestion summary of a finished run."""

    packets_injected: int
    packets_delivered: int
    packets_dropped: int
    packets_in_flight: int
    total_forwarded: int
    limited_links: int
    queue_histogram: dict[str, int]
    hotspots: tuple[LinkHotspot, ...]

    @property
    def delivery_ratio(self) -> float:
        """Delivered over injected (1.0 = nothing lost or still queued)."""
        if self.packets_injected == 0:
            return 1.0
        return self.packets_delivered / self.packets_injected

    @property
    def is_conserved(self) -> bool:
        """Packet conservation: injected == delivered + dropped + queued."""
        return self.packets_injected == (
            self.packets_delivered
            + self.packets_dropped
            + self.packets_in_flight
        )

    def format_table(self) -> str:
        """Fixed-width operator-style report."""
        lines = [
            f"injected={self.packets_injected}  "
            f"delivered={self.packets_delivered}  "
            f"dropped={self.packets_dropped}  "
            f"in_flight={self.packets_in_flight}  "
            f"delivery_ratio={self.delivery_ratio:.3f}",
            f"rate-limited links: {self.limited_links}",
            "peak-queue histogram: "
            + (
                "  ".join(
                    f"{bucket}:{count}"
                    for bucket, count in sorted(self.queue_histogram.items())
                )
                or "(no links)"
            ),
        ]
        if not self.hotspots:
            lines.append("no link carried traffic")
            return "\n".join(lines)
        lines.append(
            f"{'link':<14} {'forwarded':>10} {'dropped':>8} "
            f"{'peak_q':>7} {'limit':>8}"
        )
        for hotspot in self.hotspots:
            limit = (
                f"{hotspot.rate_limit:8.3f}"
                if hotspot.rate_limit is not None
                else "    none"
            )
            lines.append(
                f"{hotspot.label:<14} {hotspot.forwarded:>10} "
                f"{hotspot.dropped:>8} {hotspot.peak_queue:>7} {limit}"
            )
        return "\n".join(lines)


def network_report(network: Network, *, top: int = 10) -> NetworkReport:
    """Summarize a network's traffic counters after a run.

    Parameters
    ----------
    network:
        The network a simulation just ran on.
    top:
        Maximum number of hotspot links (by packets forwarded) to
        include.  Links that never saw traffic are not hotspots, so a
        zero-traffic network reports an empty hotspot table rather than
        ``top`` all-zero rows.
    """
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    links = list(network.links.values())
    active = [
        link
        for link in links
        if link.stats.forwarded or link.stats.dropped or link.stats.enqueued
    ]
    by_load = sorted(active, key=lambda l: l.stats.forwarded, reverse=True)
    hotspots = tuple(
        LinkHotspot(
            src=link.src,
            dst=link.dst,
            forwarded=link.stats.forwarded,
            dropped=link.stats.dropped,
            peak_queue=link.stats.peak_queue,
            rate_limit=link.rate_limit,
        )
        for link in by_load[:top]
    )
    return NetworkReport(
        packets_injected=network.stats.packets_injected,
        packets_delivered=network.stats.packets_delivered,
        packets_dropped=network.stats.packets_dropped,
        packets_in_flight=network.total_queued(),
        total_forwarded=sum(l.stats.forwarded for l in links),
        limited_links=sum(1 for l in links if l.is_rate_limited),
        queue_histogram=queue_histogram(network),
        hotspots=hotspots,
    )
