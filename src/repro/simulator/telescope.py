"""Network telescope: worm detection from unused-address-space scans.

The paper's related work (Zou et al. [18]) proposes monitoring unused
address space for early worm warning; the paper itself assumes detection
has already happened ("the knowledge of the worm disseminates").  This
module closes that gap so the repository can simulate the full *dynamic*
quarantine loop — detect, then deploy:

* :class:`Telescope` — observes a fraction of the scans that miss real
  hosts (a worm probing random 32-bit addresses mostly hits dark space)
  and keeps a per-tick count;
* :class:`ScanDetector` — flags an outbreak when the observed scan rate
  exceeds an adaptive baseline for several consecutive ticks, and
  estimates the infected population from the observation rate.

Used by :class:`~repro.simulator.dynamic.DynamicQuarantine` to trigger
rate-limiting mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Telescope", "ScanDetector", "DetectionReport"]


class Telescope:
    """A passive monitor covering a fraction of dark address space.

    Parameters
    ----------
    coverage:
        Fraction of *missed* worm scans the telescope observes.  A /8
        telescope sees 1/256 of uniformly random scans; the default
        matches that classic deployment.
    """

    def __init__(self, coverage: float = 1.0 / 256.0) -> None:
        if not 0.0 < coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        self.coverage = coverage
        self._current_tick_hits = 0
        self.per_tick_hits: list[int] = []
        self.total_hits = 0

    def observe_missed_scan(self, rng) -> bool:
        """Offer one dark-space scan; returns True if the telescope saw it."""
        if rng.random() >= self.coverage:
            return False
        self._current_tick_hits += 1
        self.total_hits += 1
        return True

    def record_hits(self, hits: int) -> None:
        """Credit ``hits`` observed dark-space scans to the current tick.

        Batched alternative to :meth:`observe_missed_scan` for the fast
        engine's aggregated sampling: instead of one coverage draw per
        missed scan, the caller samples the binomial for a whole tick's
        misses and reports the total.
        """
        if hits < 0:
            raise ValueError(f"hits must be non-negative, got {hits}")
        self._current_tick_hits += hits
        self.total_hits += hits

    def end_tick(self) -> int:
        """Close the current tick; returns its hit count."""
        hits = self._current_tick_hits
        self.per_tick_hits.append(hits)
        self._current_tick_hits = 0
        return hits

    def estimated_scan_rate(self, window: int = 5) -> float:
        """Estimated total dark-space scan rate from recent observations."""
        if not self.per_tick_hits:
            return 0.0
        recent = self.per_tick_hits[-window:]
        return (sum(recent) / len(recent)) / self.coverage


@dataclass(frozen=True)
class DetectionReport:
    """What the detector concluded and when."""

    detected_at: int
    observed_rate: float
    estimated_infected: float


@dataclass
class ScanDetector:
    """Threshold detector over telescope observations.

    Fires when the telescope's per-tick hits exceed
    ``max(min_hits, spike_factor * baseline)`` for ``consecutive_ticks``
    ticks, where the baseline is an exponential moving average of the
    quiet-time hit rate (background radiation).

    Parameters
    ----------
    min_hits:
        Absolute per-tick hit floor below which nothing triggers.
    spike_factor:
        Multiplier over the moving baseline that counts as anomalous.
    consecutive_ticks:
        Anomalous ticks required before declaring an outbreak (debounce).
    scans_per_infected:
        The worm scan rate assumed when estimating the infected
        population from the observed rate.
    warmup_ticks:
        Initial ticks during which detection is disarmed and *every*
        tick trains the baseline — this is how the detector learns the
        site's background radiation level, so steady noise above
        ``min_hits`` does not read as an outbreak.
    """

    min_hits: int = 2
    spike_factor: float = 4.0
    consecutive_ticks: int = 3
    scans_per_infected: float = 1.0
    warmup_ticks: int = 5
    _baseline: float = field(default=0.5, repr=False)
    _streak: int = field(default=0, repr=False)
    report: DetectionReport | None = None

    @property
    def has_detected(self) -> bool:
        """Whether the outbreak has been declared."""
        return self.report is not None

    def update(self, tick: int, telescope: Telescope) -> DetectionReport | None:
        """Feed one closed tick; returns a report the moment it fires."""
        if self.report is not None:
            return None
        hits = telescope.per_tick_hits[-1] if telescope.per_tick_hits else 0
        if tick < self.warmup_ticks:
            self._baseline = 0.9 * self._baseline + 0.1 * hits
            return None
        threshold = max(self.min_hits, self.spike_factor * self._baseline)
        if hits >= threshold:
            self._streak += 1
        else:
            self._streak = 0
            # Post-warmup, only quiet ticks train the baseline, so the
            # worm's own ramp-up cannot raise the bar it must clear.
            self._baseline = 0.9 * self._baseline + 0.1 * hits
        if self._streak >= self.consecutive_ticks:
            rate = telescope.estimated_scan_rate()
            self.report = DetectionReport(
                detected_at=tick,
                observed_rate=rate,
                estimated_infected=rate / max(self.scans_per_infected, 1e-9),
            )
            return self.report
        return None
