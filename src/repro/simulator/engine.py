"""Discrete-event simulation engine (the ns-2 substitute's core).

The paper runs its experiments on ns-2 in *simulation ticks*.  This module
provides the two layers our simulator needs:

* :class:`EventScheduler` — a classic priority-queue discrete-event loop
  with cancellable events and deterministic FIFO ordering for ties.
* :class:`TickSimulation` — the tick-synchronous harness the worm
  experiments use, built on the scheduler: components register handlers on
  named phases, and every tick runs the phases in a fixed order (scan →
  transmit → deliver → immunize → observe), which makes runs reproducible
  for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from enum import IntEnum
from time import perf_counter

from ..observability.instrumentation import Instrumentation

__all__ = ["Event", "EventScheduler", "Phase", "TickSimulation", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid scheduler or simulation usage."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: time, then insertion sequence."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it."""
        self.cancelled = True


class EventScheduler:
    """Priority-queue event loop with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._executed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events run so far (for diagnostics)."""
        return self._executed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        event = Event(self._now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute time ``>= now``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, clock is already at {self._now}"
            )
        event = Event(time, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return event

    def peek_time(self) -> float | None:
        """Time of the next pending event, or ``None`` when idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._executed += 1
            return True
        return False

    def run_until(self, t_end: float) -> None:
        """Run events with time ``<= t_end``; leaves the clock at ``t_end``."""
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > t_end:
                break
            self.step()
        self._now = max(self._now, t_end)

    def run(self, max_events: int | None = None) -> None:
        """Run until the queue drains (or ``max_events`` is hit)."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )


class Phase(IntEnum):
    """Fixed per-tick phase order of the worm simulation.

    The order encodes the paper's semantics: scans emitted this tick enter
    the network this tick, links forward under their rate limits, arrivals
    are delivered (possibly infecting), then patching happens, and finally
    observers sample the state — so a curve point at tick ``t`` reflects
    everything that happened up to and including ``t``.
    """

    SCAN = 0
    TRANSMIT = 1
    DELIVER = 2
    IMMUNIZE = 3
    OBSERVE = 4


TickHandler = Callable[[int], None]

#: Phase -> profile-table name, resolved once (not per tick).
PHASE_NAMES: dict[Phase, str] = {phase: phase.name.lower() for phase in Phase}


class TickSimulation:
    """Tick-synchronous simulation harness over :class:`EventScheduler`.

    Components register handlers on :class:`Phase` slots; :meth:`run`
    executes ticks ``0, 1, 2, ...`` until a stop condition fires or
    ``max_ticks`` elapses.  Handlers run in registration order within a
    phase, making the whole simulation a deterministic function of the
    registered components and their RNG seeds.
    """

    def __init__(
        self, *, instrumentation: Instrumentation | None = None
    ) -> None:
        self._scheduler = EventScheduler()
        self._handlers: dict[Phase, list[TickHandler]] = {
            phase: [] for phase in Phase
        }
        self._stop_conditions: list[Callable[[int], bool]] = []
        self._tick = 0
        self._stopped = False
        #: Optional profiling/trace collector; None keeps the tick loop
        #: on its original fast path (one attribute check per tick).
        self.instrumentation = instrumentation

    @property
    def current_tick(self) -> int:
        """The tick currently executing (or about to execute)."""
        return self._tick

    @property
    def scheduler(self) -> EventScheduler:
        """The underlying event scheduler (for ad-hoc one-shot events)."""
        return self._scheduler

    def on(self, phase: Phase, handler: TickHandler) -> None:
        """Register ``handler(tick)`` to run during ``phase`` each tick."""
        self._handlers[phase].append(handler)

    def add_stop_condition(self, predicate: Callable[[int], bool]) -> None:
        """Stop after any tick for which ``predicate(tick)`` is true."""
        self._stop_conditions.append(predicate)

    def _run_tick(self, tick: int) -> None:
        instr = self.instrumentation
        if instr is None or not instr.profile:
            for phase in Phase:
                for handler in self._handlers[phase]:
                    handler(tick)
            return
        for phase in Phase:
            start = perf_counter()
            for handler in self._handlers[phase]:
                handler(tick)
            instr.record_phase(PHASE_NAMES[phase], perf_counter() - start)

    def run(self, max_ticks: int) -> int:
        """Run up to ``max_ticks`` ticks; returns the number executed."""
        if max_ticks <= 0:
            raise SimulationError(f"max_ticks must be positive, got {max_ticks}")
        if self._stopped:
            raise SimulationError("simulation already ran; build a fresh one")
        executed = 0
        for tick in range(max_ticks):
            self._tick = tick
            self._scheduler.run_until(float(tick))
            self._run_tick(tick)
            executed += 1
            if any(predicate(tick) for predicate in self._stop_conditions):
                break
        self._stopped = True
        instr = self.instrumentation
        if instr is not None and instr.profile:
            instr.count("ticks", executed)
            instr.count("scheduler_events", self._scheduler.events_executed)
        return executed
