"""Packet records carried through the simulated network."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["PacketKind", "Packet"]


class PacketKind(Enum):
    """What a packet is trying to do when it arrives."""

    #: A worm scan/exploit packet; infects a susceptible destination.
    INFECTION = "infection"
    #: Background traffic; used by the legitimate-traffic-impact ablation.
    LEGITIMATE = "legitimate"


@dataclass(slots=True)
class Packet:
    """One packet in flight.

    Attributes
    ----------
    src, dst:
        Origin and final destination node ids.
    kind:
        :class:`PacketKind` payload semantics.
    created_tick:
        Tick at which the packet entered the network.
    hops:
        Number of links traversed so far (updated by the network).
    """

    src: int
    dst: int
    kind: PacketKind
    created_tick: int
    hops: int = 0

    def age(self, now: int) -> int:
        """Ticks since the packet was created."""
        return now - self.created_tick
