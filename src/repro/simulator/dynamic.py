"""Dynamic quarantine: detect the worm, then deploy the filters.

The paper's deployment analysis assumes filters are in place before the
outbreak.  Its title promises more: *dynamic* quarantine.  This module
supplies the missing control loop —

    telescope observations → scan detector → (reaction delay) → deploy

— so experiments can measure what detection latency costs: every tick
between first infection and filter deployment is a tick of unthrottled
exponential growth, which is exactly why the paper's Section 6 found
early response so decisive.

Usage::

    quarantine = DynamicQuarantine(
        response=lambda net: deploy_backbone_rate_limit(net, 0.02),
        reaction_delay=2,
    )
    sim = WormSimulation(network, RandomScanWorm(hit_probability=0.5),
                         scan_rate=1.6, quarantine=quarantine, seed=1)
    curve = sim.run(300)
    print(quarantine.deployed_at)
"""

from __future__ import annotations

import random
from collections.abc import Callable

from .defense import DefenseDescriptor
from .network import Network
from .telescope import ScanDetector, Telescope

__all__ = ["DynamicQuarantine"]

Response = Callable[[Network], DefenseDescriptor]


class DynamicQuarantine:
    """Deploys a rate-limiting response once a worm is detected.

    Parameters
    ----------
    response:
        Deployment function run against the network when the quarantine
        triggers (any of the :mod:`repro.simulator.defense` deployers,
        partially applied).
    telescope:
        Dark-space monitor; defaults to a /8-equivalent telescope.
    detector:
        Anomaly detector over the telescope's per-tick counts.
    reaction_delay:
        Ticks between detection and the filters actually engaging
        (signature distribution, operator reaction, BGP convergence...).
    """

    def __init__(
        self,
        response: Response,
        *,
        telescope: Telescope | None = None,
        detector: ScanDetector | None = None,
        reaction_delay: int = 0,
    ) -> None:
        if reaction_delay < 0:
            raise ValueError(
                f"reaction_delay must be non-negative, got {reaction_delay}"
            )
        self.response = response
        self.telescope = telescope if telescope is not None else Telescope()
        self.detector = detector if detector is not None else ScanDetector()
        self.reaction_delay = reaction_delay
        self.deployed_at: int | None = None
        self.descriptor: DefenseDescriptor | None = None

    @property
    def detected_at(self) -> int | None:
        """Tick the detector fired, or ``None``."""
        report = self.detector.report
        return report.detected_at if report else None

    @property
    def is_deployed(self) -> bool:
        """Whether the response has engaged."""
        return self.deployed_at is not None

    def note_missed_scan(self, rng: random.Random) -> None:
        """Called by the simulation for every scan that hit dark space."""
        self.telescope.observe_missed_scan(rng)

    def step(self, tick: int, network: Network) -> bool:
        """Run one tick of the control loop; True if filters deployed now."""
        self.telescope.end_tick()
        self.detector.update(tick, self.telescope)
        if self.is_deployed or not self.detector.has_detected:
            return False
        if tick < self.detector.report.detected_at + self.reaction_delay:
            return False
        self.descriptor = self.response(network)
        self.deployed_at = tick
        return True
