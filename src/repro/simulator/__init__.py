"""Discrete-event packet-level worm simulator (the ns-2 substitute).

Build a :class:`Network` (star or power-law), optionally deploy a defense
from :mod:`repro.simulator.defense`, then run a :class:`WormSimulation` —
or describe the whole thing as an :class:`ExperimentSpec` and let
:func:`run_experiment` average the seeded runs like the paper does.
"""

from .diagnostics import LinkHotspot, NetworkReport, network_report
from .dynamic import DynamicQuarantine
from .defense import (
    DefenseDescriptor,
    deploy_backbone_rate_limit,
    deploy_edge_rate_limit,
    deploy_host_rate_limit,
    deploy_hub_rate_limit,
    no_defense,
)
from .engine import Event, EventScheduler, Phase, SimulationError, TickSimulation
from .fastpath import FastWormSimulation
from .immunization import ImmunizationPolicy, ImmunizationProcess
from .links import DirectedLink, LinkStats, TokenBucket
from .network import Network, NetworkStats
from .nodes import Host, HostError, HostState
from .observers import CurveRecorder, average_trajectories
from .packet import Packet, PacketKind
from .routing import RoutingTables
from .runner import ExperimentResult, ExperimentSpec, run_experiment
from .simulation import WormSimulation
from .telescope import DetectionReport, ScanDetector, Telescope
from .worms import (
    LocalPreferentialWorm,
    RandomScanWorm,
    SequentialScanWorm,
    TopologicalWorm,
    WormStrategy,
    scans_this_tick,
)

__all__ = [
    "DefenseDescriptor",
    "deploy_backbone_rate_limit",
    "deploy_edge_rate_limit",
    "deploy_host_rate_limit",
    "deploy_hub_rate_limit",
    "no_defense",
    "Event",
    "EventScheduler",
    "Phase",
    "SimulationError",
    "TickSimulation",
    "ImmunizationPolicy",
    "ImmunizationProcess",
    "DirectedLink",
    "LinkStats",
    "TokenBucket",
    "Network",
    "NetworkStats",
    "Host",
    "HostError",
    "HostState",
    "CurveRecorder",
    "average_trajectories",
    "Packet",
    "PacketKind",
    "RoutingTables",
    "ExperimentResult",
    "ExperimentSpec",
    "run_experiment",
    "WormSimulation",
    "FastWormSimulation",
    "DynamicQuarantine",
    "LinkHotspot",
    "NetworkReport",
    "network_report",
    "DetectionReport",
    "ScanDetector",
    "Telescope",
    "LocalPreferentialWorm",
    "RandomScanWorm",
    "SequentialScanWorm",
    "TopologicalWorm",
    "WormStrategy",
    "scans_this_tick",
]
