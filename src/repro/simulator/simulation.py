"""The worm propagation simulation: wiring worms, defenses, and patching
into the tick engine.

One :class:`WormSimulation` is a single seeded run.  The per-tick pipeline
follows the paper's ns-2 setup:

1. **scan** — every infected host emits scans at expected rate ``beta``
   per tick (subject to its host-level filter, if one is deployed), each
   addressed to a target chosen by the worm strategy;
2. **transmit** — every link forwards at most its rate limit's worth of
   queued packets one hop; leftovers stay queued;
3. **deliver** — infection packets arriving at susceptible hosts infect
   them;
4. **immunize** — the dynamic-quarantine control loop (when configured)
   and delayed patching run;
5. **observe** — the recorder samples the state.
"""

from __future__ import annotations

import random

from ..models.base import Trajectory
from ..observability.instrumentation import Instrumentation
from ..observability.trace import tick_record
from .dynamic import DynamicQuarantine
from .engine import Phase, TickSimulation
from .immunization import ImmunizationPolicy, ImmunizationProcess
from .network import Network
from .observers import CurveRecorder
from .packet import Packet, PacketKind
from .worms import WormStrategy, scans_this_tick

__all__ = ["WormSimulation"]


class WormSimulation:
    """A single seeded worm-outbreak run on a configured network.

    Parameters
    ----------
    network:
        The (already defense-configured) network to attack.
    worm:
        Target-selection strategy.
    scan_rate:
        ``beta`` — expected scans per infected host per tick.
    initial_infections:
        Number of hosts infected at tick 0, chosen uniformly by ``seed``.
    immunization:
        Optional delayed-patching policy.
    lan_delivery:
        When true, scans aimed at a target in the *same subnet* are
        delivered over the local LAN (one tick, no routed links) instead
        of through the graph.  This models a subnet as a broadcast domain
        — the reason edge-router filters never see intra-subnet worm
        traffic (Sections 5.2/5.4).  Leave false for the star topology,
        where the hub *is* the local interconnect being rate limited.
    quarantine:
        Optional :class:`~repro.simulator.dynamic.DynamicQuarantine`
        control loop: missed scans feed its telescope, and once its
        detector fires (plus reaction delay) its response deploys filters
        mid-run.
    seed:
        Seed for this run's private RNG; same seed, same run.
    instrumentation:
        Optional :class:`~repro.observability.Instrumentation`: the tick
        engine times each phase into it, the phases count scan outcomes
        on it, and the observe phase emits one structured trace record
        per tick to its sink.  ``None`` (the default) keeps the run on
        the uninstrumented fast path.
    """

    def __init__(
        self,
        network: Network,
        worm: WormStrategy,
        *,
        scan_rate: float,
        initial_infections: int = 1,
        immunization: ImmunizationPolicy | None = None,
        lan_delivery: bool = False,
        quarantine: DynamicQuarantine | None = None,
        seed: int | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if scan_rate <= 0:
            raise ValueError(f"scan_rate must be positive, got {scan_rate}")
        if not 1 <= initial_infections < network.num_infectable:
            raise ValueError(
                f"initial_infections must be in [1, {network.num_infectable}),"
                f" got {initial_infections}"
            )
        self.network = network
        self.worm = worm
        self.scan_rate = float(scan_rate)
        self.lan_delivery = lan_delivery
        self.quarantine = quarantine
        self.rng = random.Random(seed)
        self.recorder = CurveRecorder(network)
        self.instrumentation = instrumentation
        #: Same-subnet packets awaiting next-tick LAN delivery.
        self._lan_queue: list[Packet] = []
        self.immunization = (
            ImmunizationProcess(network, immunization, self.rng)
            if immunization is not None
            else None
        )

        seeds = self.rng.sample(list(network.infectable), initial_infections)
        for node in seeds:
            if network.host(node).infect(tick=0):
                self.recorder.note_infection()

        self._arrived: list[Packet] = []
        self._sim = TickSimulation(instrumentation=instrumentation)
        self._sim.on(Phase.SCAN, self._scan_phase)
        self._sim.on(Phase.TRANSMIT, self._transmit_phase)
        self._sim.on(Phase.DELIVER, self._deliver_phase)
        self._sim.on(Phase.IMMUNIZE, self._immunize_phase)
        self._sim.on(Phase.OBSERVE, self._observe_phase)
        self._sim.add_stop_condition(self._epidemic_over)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _scan_phase(self, tick: int) -> None:
        network = self.network
        rng = self.rng
        instr = self.instrumentation
        for node in network.infectable:
            host = network.hosts[node]
            host.tick_throttle()
            if not host.is_infected:
                continue
            for _ in range(scans_this_tick(rng, self.scan_rate)):
                if not host.allow_scan():
                    if instr is not None:
                        instr.count("scans_throttled")
                    break
                target = self.worm.pick_target(rng, node, network)
                if target is None:
                    # The scan hit unused address space; the telescope
                    # may have seen it.
                    if self.quarantine is not None:
                        self.quarantine.note_missed_scan(rng)
                    if instr is not None:
                        instr.count("scans_dark")
                    continue
                packet = Packet(
                    src=node,
                    dst=target,
                    kind=PacketKind.INFECTION,
                    created_tick=tick,
                )
                if self.lan_delivery and self._same_subnet(node, target):
                    self._lan_queue.append(packet)
                    if instr is not None:
                        instr.count("scans_lan")
                else:
                    network.inject(packet)
                    if instr is not None:
                        instr.count("scans_routed")

    def _same_subnet(self, a: int, b: int) -> bool:
        subnets = self.network.subnets
        if subnets is None:
            return False
        subnet = subnets.subnet_of[a]
        return subnet != -1 and subnet == subnets.subnet_of[b]

    def _transmit_phase(self, tick: int) -> None:
        self._arrived = self.network.transmit_tick()
        if self._lan_queue:
            # LAN packets emitted last tick arrive now (one-tick latency);
            # partition in a single pass rather than scanning twice.
            still_queued: list[Packet] = []
            for packet in self._lan_queue:
                if packet.created_tick < tick:
                    self._arrived.append(packet)
                else:
                    still_queued.append(packet)
            self._lan_queue = still_queued

    def _deliver_phase(self, tick: int) -> None:
        instr = self.instrumentation
        for packet in self._arrived:
            if packet.kind is not PacketKind.INFECTION:
                continue
            host = self.network.hosts.get(packet.dst)
            if host is not None and host.infect(tick):
                self.recorder.note_infection()
                if instr is not None:
                    instr.count("infections")
        self._arrived = []

    def _immunize_phase(self, tick: int) -> None:
        if self.quarantine is not None:
            self.quarantine.step(tick, self.network)
        if self.immunization is not None:
            self.immunization.step(tick, self.recorder.ever_infected)

    def _observe_phase(self, tick: int) -> None:
        self.recorder.sample(tick)
        instr = self.instrumentation
        if instr is not None and instr.sink is not None:
            sample = self.recorder.last_sample()
            assert sample is not None  # sample() just ran
            _, susceptible, infected, immune, ever = sample
            stats = self.network.stats
            instr.emit(
                tick_record(
                    tick=tick,
                    susceptible=susceptible,
                    infected=infected,
                    immune=immune,
                    ever_infected=ever,
                    packets_injected=stats.packets_injected,
                    packets_delivered=stats.packets_delivered,
                    packets_dropped=stats.packets_dropped,
                    in_flight=self.network.total_queued(),
                    lan_queue=len(self._lan_queue),
                )
            )

    def _epidemic_over(self, tick: int) -> bool:
        # Stop conditions run after the observe phase, so the recorder's
        # latest sample is this tick's state — no O(N) host rescan needed.
        sample = self.recorder.last_sample()
        assert sample is not None  # observe ran earlier this tick
        _, susceptible, infected, _immune, _ever = sample
        if susceptible == 0:
            return True
        # With patching, the worm can die out before saturating.
        return infected == 0

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    @property
    def ticks_executed(self) -> int:
        """Ticks run so far (stop conditions can end a run early)."""
        return self.recorder.num_samples

    @property
    def events_executed(self) -> int:
        """Ad-hoc scheduler events run (0 for purely tick-driven runs)."""
        return self._sim.scheduler.events_executed

    def run(self, max_ticks: int) -> Trajectory:
        """Run up to ``max_ticks`` ticks and return the infection curve."""
        self._sim.run(max_ticks)
        return self.recorder.trajectory()
