"""The simulated network: topology + routing + links + hosts.

``Network`` owns everything static about a scenario — which nodes are
backbone/edge/host, which hosts are infectable, per-link queues and rate
limits, and optional node-level forwarding budgets (used for the star
topology's hub rate limit).  The dynamic worm/defense/immunization
processes in the sibling modules operate on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..topology.classify import NodeRole, RoleAssignment, classify_roles
from ..topology.graphs import Topology, TopologyError
from ..topology.powerlaw import barabasi_albert
from ..topology.star import StarTopology, star_graph
from ..topology.subnets import NO_SUBNET, SubnetMap, partition_subnets
from .links import DirectedLink, TokenBucket
from .nodes import Host
from .packet import Packet
from .routing import RoutingTables

__all__ = ["Network", "NetworkStats"]


@lru_cache(maxsize=64)
def _powerlaw_blueprint(
    num_nodes: int,
    edges_per_node: int,
    seed: int | None,
    backbone_fraction: float,
    edge_fraction: float,
) -> tuple[Topology, RoleAssignment, SubnetMap, RoutingTables]:
    """Shareable immutable pieces of a power-law scenario.

    Topology, roles, subnets and routing tables are pure functions of the
    generator parameters and never mutated by a simulation, so repeated
    runs over the same seed (the 10-run experiment protocol) reuse them
    instead of redoing 1,000 BFS traversals per run.
    """
    topology = barabasi_albert(num_nodes, edges_per_node, seed=seed)
    roles = classify_roles(
        topology,
        backbone_fraction=backbone_fraction,
        edge_fraction=edge_fraction,
    )
    subnets = partition_subnets(topology, roles)
    return topology, roles, subnets, RoutingTables(topology)


@dataclass
class NetworkStats:
    """Aggregate delivery counters."""

    packets_injected: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0


class Network:
    """A routed network with rate-limitable links and infectable hosts.

    Use the factory classmethods — :meth:`from_powerlaw` for the paper's
    1,000-node Internet experiments, :meth:`from_star` for the Section 4
    star-topology study, or :meth:`from_topology` for custom graphs.
    """

    def __init__(
        self,
        topology: Topology,
        roles: RoleAssignment,
        subnets: SubnetMap | None,
        *,
        infectable: tuple[int, ...],
        max_queue: int = 100_000,
        routing: RoutingTables | None = None,
    ) -> None:
        if not infectable:
            raise TopologyError("a scenario needs at least one infectable host")
        self.topology = topology
        self.roles = roles
        self.subnets = subnets
        self.routing = routing if routing is not None else RoutingTables(topology)
        self._max_queue = max_queue
        self.links: dict[tuple[int, int], DirectedLink] = {}
        for u, v in topology.edges:
            self.links[(u, v)] = DirectedLink(u, v, max_queue=max_queue)
            self.links[(v, u)] = DirectedLink(v, u, max_queue=max_queue)

        subnet_of = subnets.subnet_of if subnets is not None else None
        self.hosts: dict[int, Host] = {}
        for node in infectable:
            subnet = subnet_of[node] if subnet_of is not None else NO_SUBNET
            self.hosts[node] = Host(node=node, subnet=subnet)
        self.infectable: tuple[int, ...] = tuple(sorted(self.hosts))
        #: Node-level forwarding budgets (hub rate limiting); keyed by node.
        self.forward_budgets: dict[int, TokenBucket] = {}
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @classmethod
    def from_powerlaw(
        cls,
        num_nodes: int = 1000,
        *,
        edges_per_node: int = 2,
        seed: int | None = None,
        backbone_fraction: float = 0.05,
        edge_fraction: float = 0.10,
        infect_routers: bool = False,
    ) -> "Network":
        """The paper's Section 5 setup: BA power-law graph, 5%/10% roles.

        By default only end hosts are infectable (routers forward but are
        not victims); pass ``infect_routers=True`` to match a reading of
        the paper where every node is susceptible.
        """
        topology, roles, subnets, routing = _powerlaw_blueprint(
            num_nodes, edges_per_node, seed, backbone_fraction, edge_fraction
        )
        if infect_routers:
            infectable = tuple(topology.nodes())
        else:
            infectable = roles.hosts
        return cls(
            topology, roles, subnets, infectable=infectable, routing=routing
        )

    @classmethod
    def from_star(cls, num_nodes: int = 200) -> "Network":
        """The Section 4 star: hub is transit, all leaves are infectable."""
        star: StarTopology = star_graph(num_nodes)
        roles = RoleAssignment(
            roles=tuple(
                NodeRole.EDGE_ROUTER if node == star.hub else NodeRole.HOST
                for node in star.graph.nodes()
            ),
            backbone=(),
            edge_routers=(star.hub,),
            hosts=star.leaves,
        )
        subnets = partition_subnets(star.graph, roles)
        return cls(star.graph, roles, subnets, infectable=star.leaves)

    @classmethod
    def from_spec(cls, spec, *, seed: int | None = None) -> "Network":
        """Build a network from a declarative topology description.

        ``spec`` is any object with the :class:`repro.runner.spec.
        TopologySpec` attributes (``kind``, ``num_nodes``, and for
        power-law graphs ``edges_per_node`` / role fractions /
        ``infect_routers``); duck typing keeps the simulator layer free
        of a runner dependency.  ``seed`` overrides the spec's own seed —
        the hook worker processes use to resample topologies per run.
        """
        if spec.kind == "star":
            return cls.from_star(spec.num_nodes)
        if spec.kind == "powerlaw":
            return cls.from_powerlaw(
                spec.num_nodes,
                edges_per_node=spec.edges_per_node,
                seed=seed if seed is not None else spec.seed,
                backbone_fraction=spec.backbone_fraction,
                edge_fraction=spec.edge_fraction,
                infect_routers=spec.infect_routers,
            )
        raise TopologyError(f"unknown topology kind {spec.kind!r}")

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        *,
        backbone_fraction: float = 0.05,
        edge_fraction: float = 0.10,
        infect_routers: bool = False,
    ) -> "Network":
        """Wrap an arbitrary connected topology with the 5%/10% role split."""
        roles = classify_roles(
            topology,
            backbone_fraction=backbone_fraction,
            edge_fraction=edge_fraction,
        )
        subnets = partition_subnets(topology, roles)
        infectable = (
            tuple(topology.nodes()) if infect_routers else roles.hosts
        )
        return cls(topology, roles, subnets, infectable=infectable)

    # ------------------------------------------------------------------
    # Host/topology queries
    # ------------------------------------------------------------------

    @property
    def num_infectable(self) -> int:
        """Size of the susceptible population ``N``."""
        return len(self.infectable)

    def host(self, node: int) -> Host:
        """The :class:`Host` for an infectable node."""
        return self.hosts[node]

    def infected_nodes(self) -> list[int]:
        """Currently infected node ids, sorted."""
        return [n for n in self.infectable if self.hosts[n].is_infected]

    def count_states(self) -> tuple[int, int, int]:
        """(susceptible, infected, immune) counts."""
        susceptible = infected = immune = 0
        for host in self.hosts.values():
            if host.is_susceptible:
                susceptible += 1
            elif host.is_infected:
                infected += 1
            else:
                immune += 1
        return susceptible, infected, immune

    def subnet_peers(self, node: int) -> tuple[int, ...]:
        """Infectable hosts sharing ``node``'s subnet, excluding ``node``."""
        if self.subnets is None:
            return ()
        subnet = self.subnets.subnet_of[node]
        if subnet == NO_SUBNET:
            return ()
        return tuple(
            peer
            for peer in self.subnets.members[subnet]
            if peer != node and peer in self.hosts
        )

    # ------------------------------------------------------------------
    # Link configuration
    # ------------------------------------------------------------------

    def link(self, u: int, v: int) -> DirectedLink:
        """The directed link u→v."""
        try:
            return self.links[(u, v)]
        except KeyError:
            raise TopologyError(f"no link {u}->{v} in topology") from None

    def set_link_rate(self, u: int, v: int, rate: float | None) -> None:
        """Rate-limit (or unlimit) the directed link u→v."""
        self.link(u, v).set_rate_limit(rate)

    def set_node_forward_budget(self, node: int, rate: float | None) -> None:
        """Cap the total packets ``node`` may forward per tick.

        This is the star experiment's hub node rate limit ``beta``; it
        applies across all of the node's outgoing links combined.
        """
        if rate is None:
            self.forward_budgets.pop(node, None)
        else:
            self.forward_budgets[node] = TokenBucket(rate)

    def rate_limited_links(self) -> list[DirectedLink]:
        """All directed links that currently carry a rate limit."""
        return [link for link in self.links.values() if link.is_rate_limited]

    # ------------------------------------------------------------------
    # Observability queries
    # ------------------------------------------------------------------

    def total_queued(self) -> int:
        """Packets currently in flight (queued on any directed link).

        Together with the cumulative counters this closes the packet
        conservation law ``injected == delivered + dropped + queued``,
        which the invariant test suite asserts every tick.
        """
        return sum(link.queue_length for link in self.links.values())

    def queue_depths(self) -> list[int]:
        """Current queue length of every directed link (sorted key order)."""
        return [self.links[key].queue_length for key in sorted(self.links)]

    # ------------------------------------------------------------------
    # Packet movement (driven by WormSimulation's transmit phase)
    # ------------------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Enter a packet at its source, en route to ``packet.dst``."""
        self.stats.packets_injected += 1
        self._forward_from(packet.src, packet)

    def _forward_from(self, node: int, packet: Packet) -> None:
        next_hop = self.routing.next_hop(node, packet.dst)
        if not self.link(node, next_hop).offer(packet):
            self.stats.packets_dropped += 1

    def transmit_tick(self) -> list[Packet]:
        """Advance every link by one tick; returns packets that arrived.

        Each drained packet either reached its destination (returned for
        the deliver phase) or is re-queued on the next link of its path,
        subject to the forwarding node's budget when one is installed.
        Links are processed in sorted key order for determinism.
        """
        for bucket in self.forward_budgets.values():
            bucket.refill()
        arrived: list[Packet] = []
        for key in sorted(self.links):
            link = self.links[key]
            drained = link.drain()
            for index, packet in enumerate(drained):
                node = link.dst
                if node == packet.dst:
                    arrived.append(packet)
                    self.stats.packets_delivered += 1
                    continue
                budget = self.forward_budgets.get(node)
                if budget is not None and not budget.try_consume():
                    # Forwarding budget exhausted this tick: requeue this
                    # packet and everything drained behind it, preserving
                    # FIFO order; they retry next tick.
                    blocked = drained[index:]
                    for back in reversed(blocked):
                        link.requeue_front(back)
                    break
                self._forward_from(node, packet)
        return arrived
