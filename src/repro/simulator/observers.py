"""Measurement: infection curves sampled once per tick.

The recorder produces :class:`~repro.models.base.Trajectory` objects — the
same container the analytical models emit — so every downstream tool
(time-to-fraction, slowdown factors, benchmark printers) works identically
on modeled and simulated data, and averaging across seeded runs is a plain
array mean.
"""

from __future__ import annotations

import numpy as np

from ..models.base import ModelError, Trajectory
from .network import Network

__all__ = ["CurveRecorder", "average_trajectories"]


class CurveRecorder:
    """Samples (susceptible, infected, immune, ever-infected) every tick."""

    def __init__(self, network: Network) -> None:
        self._network = network
        self._ticks: list[int] = []
        self._infected: list[int] = []
        self._immune: list[int] = []
        self._susceptible: list[int] = []
        self._ever_infected: list[int] = []
        self.ever_infected = 0

    def note_infection(self, count: int = 1) -> None:
        """Credit ``count`` new infections to the ever-infected tally."""
        self.ever_infected += count

    def sample(self, tick: int) -> None:
        """Record the network state at the end of ``tick``."""
        susceptible, infected, immune = self._network.count_states()
        self.record_counts(tick, susceptible, infected, immune)

    def record_counts(
        self, tick: int, susceptible: int, infected: int, immune: int
    ) -> None:
        """Record externally computed compartment counts for ``tick``.

        The fast engine maintains running S/I/R totals and feeds them
        here directly, skipping :meth:`sample`'s O(N) host walk; both
        paths append identical rows.
        """
        self._ticks.append(tick)
        self._susceptible.append(susceptible)
        self._infected.append(infected)
        self._immune.append(immune)
        self._ever_infected.append(self.ever_infected)

    @property
    def num_samples(self) -> int:
        """Ticks recorded so far."""
        return len(self._ticks)

    def last_sample(self) -> tuple[int, int, int, int, int] | None:
        """The most recent ``(tick, S, I, R, ever_infected)`` sample.

        Lets the trace layer reuse the counts :meth:`sample` already
        computed instead of re-walking every host; ``None`` before the
        first sample.
        """
        if not self._ticks:
            return None
        return (
            self._ticks[-1],
            self._susceptible[-1],
            self._infected[-1],
            self._immune[-1],
            self._ever_infected[-1],
        )

    def current_infected_fraction(self) -> float:
        """Infected fraction at the latest sample (0.0 before sampling)."""
        if not self._infected:
            return 0.0
        return self._infected[-1] / self._network.num_infectable

    def trajectory(self) -> Trajectory:
        """Package the samples as a :class:`Trajectory`."""
        if len(self._ticks) < 2:
            raise ModelError(
                "need at least two sampled ticks to build a trajectory"
            )
        return Trajectory(
            times=np.asarray(self._ticks, dtype=float),
            infected=np.asarray(self._infected, dtype=float),
            population=float(self._network.num_infectable),
            susceptible=np.asarray(self._susceptible, dtype=float),
            removed=np.asarray(self._immune, dtype=float),
            ever_infected=np.asarray(self._ever_infected, dtype=float),
        )


def subset_fraction_curve(
    network: Network, nodes: set[int], ticks: np.ndarray
) -> np.ndarray:
    """Infected fraction over time within a node subset, post hoc.

    Rebuilt from each host's ``infected_at`` stamp after a run — used for
    the paper's *within-subnet* views (Figures 3(b) and 5), where the
    population of interest is the subnet of an initial seed rather than
    the whole network.
    """
    members = [network.hosts[n] for n in nodes if n in network.hosts]
    if not members:
        raise ModelError("subset contains no infectable hosts")
    infection_ticks = np.array(
        [
            host.infected_at if host.infected_at is not None else np.inf
            for host in members
        ]
    )
    ticks = np.asarray(ticks, dtype=float)
    counts = (infection_ticks[None, :] <= ticks[:, None]).sum(axis=1)
    return counts / len(members)


def average_trajectories(trajectories: list[Trajectory]) -> Trajectory:
    """Pointwise mean of same-population trajectories (the 10-run average).

    Runs may stop at different ticks (stop conditions fire early); shorter
    runs are extended by holding their final value, which is the correct
    continuation for a saturated or extinguished epidemic.
    """
    if not trajectories:
        raise ModelError("cannot average zero trajectories")
    populations = {t.population for t in trajectories}
    if len(populations) != 1:
        raise ModelError(
            f"trajectories disagree on population: {sorted(populations)}"
        )
    length = max(t.times.size for t in trajectories)
    longest = max(trajectories, key=lambda t: t.times.size)

    def _padded(series: np.ndarray | None) -> np.ndarray | None:
        if series is None:
            return None
        if series.size == length:
            return series
        pad = np.full(length - series.size, series[-1])
        return np.concatenate([series, pad])

    def _mean(attr: str) -> np.ndarray | None:
        columns = [_padded(getattr(t, attr)) for t in trajectories]
        if any(c is None for c in columns):
            return None
        return np.mean(np.stack(columns), axis=0)

    return Trajectory(
        times=longest.times,
        infected=_mean("infected"),
        population=longest.population,
        susceptible=_mean("susceptible"),
        removed=_mean("removed"),
        ever_infected=_mean("ever_infected"),
    )
