"""Seeded multi-run experiments: build → attack → average.

The paper reports every simulated curve as "an average of ten simulation
runs".  :func:`run_experiment` reproduces that protocol: one
:class:`ExperimentSpec` describes how to build the network, which defense
to deploy, and which worm to release; the runner executes ``num_runs``
independently seeded runs and returns the averaged curve plus the
per-run trajectories.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from ..models.base import Trajectory
from .defense import DefenseDescriptor, no_defense
from .immunization import ImmunizationPolicy
from .network import Network
from .observers import average_trajectories
from .simulation import WormSimulation
from .worms import WormStrategy

__all__ = ["ExperimentSpec", "ExperimentResult", "run_experiment"]

NetworkFactory = Callable[[int], Network]
DefenseDeployer = Callable[[Network], DefenseDescriptor]
WormFactory = Callable[[], WormStrategy]


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, reproducible simulation experiment.

    Attributes
    ----------
    network_factory:
        ``seed -> Network``; called once per run so random topologies are
        resampled (pass a closure over a fixed topology to pin it).
    worm_factory:
        Builds the worm strategy for each run.
    defense:
        Deploys filters on the freshly built network; defaults to none.
    scan_rate:
        ``beta`` — expected scans per infected host per tick.
    initial_infections:
        Hosts infected at tick 0.
    immunization:
        Optional delayed-patching policy.
    lan_delivery:
        Deliver same-subnet scans over the local LAN, bypassing routed
        (and possibly filtered) links; see
        :class:`~repro.simulator.simulation.WormSimulation`.
    max_ticks:
        Tick horizon per run.
    num_runs:
        Independent runs to average (paper default: 10).
    base_seed:
        Run ``i`` uses seed ``base_seed + i`` for both topology and worm
        randomness.
    label:
        Curve label used by the benchmark printers.
    """

    network_factory: NetworkFactory
    worm_factory: WormFactory
    defense: DefenseDeployer = no_defense
    scan_rate: float = 0.8
    initial_infections: int = 1
    immunization: ImmunizationPolicy | None = None
    lan_delivery: bool = False
    max_ticks: int = 100
    num_runs: int = 10
    base_seed: int = 42
    label: str = "experiment"


@dataclass
class ExperimentResult:
    """Averaged curve plus everything needed to audit it."""

    spec: ExperimentSpec
    mean: Trajectory
    runs: list[Trajectory] = field(default_factory=list)
    defenses: list[DefenseDescriptor] = field(default_factory=list)

    @property
    def label(self) -> str:
        """The spec's display label."""
        return self.spec.label

    def time_to_fraction(self, level: float) -> float:
        """Mean-curve time to an infected fraction (paper's comparisons)."""
        return self.mean.time_to_fraction(level)

    def final_ever_infected(self) -> float:
        """Mean-curve final ever-infected fraction (Figure 8's endpoint)."""
        return self.mean.final_fraction_ever_infected()


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Execute ``spec.num_runs`` seeded runs and average the curves."""
    if spec.num_runs < 1:
        raise ValueError(f"num_runs must be >= 1, got {spec.num_runs}")
    runs: list[Trajectory] = []
    defenses: list[DefenseDescriptor] = []
    for i in range(spec.num_runs):
        seed = spec.base_seed + i
        network = spec.network_factory(seed)
        defenses.append(spec.defense(network))
        simulation = WormSimulation(
            network,
            spec.worm_factory(),
            scan_rate=spec.scan_rate,
            initial_infections=spec.initial_infections,
            immunization=spec.immunization,
            lan_delivery=spec.lan_delivery,
            seed=seed,
        )
        runs.append(simulation.run(spec.max_ticks))
    return ExperimentResult(
        spec=spec,
        mean=average_trajectories(runs),
        runs=runs,
        defenses=defenses,
    )
