"""Host state machines for the worm simulation.

Each infectable node is a :class:`Host` in one of three states, following
the SIR-with-delayed-patching dynamics of the paper: susceptible hosts can
be infected; infected hosts scan; immunized hosts (patched susceptible
*or* patched infected) are permanently out of the game.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .links import TokenBucket

__all__ = ["HostState", "Host", "HostError"]


class HostError(RuntimeError):
    """Raised on invalid host state transitions."""


class HostState(Enum):
    """Epidemiological state of a host."""

    SUSCEPTIBLE = "susceptible"
    INFECTED = "infected"
    IMMUNE = "immune"


@dataclass
class Host:
    """One infectable end system.

    Attributes
    ----------
    node:
        Node id in the topology.
    subnet:
        Subnet id (``-1`` for hosts outside any subnet).
    state:
        Current :class:`HostState`.
    infected_at:
        Tick of infection, or ``None``.
    immunized_at:
        Tick of patching, or ``None``.
    scan_throttle:
        Optional host-level rate-limiting filter (Williamson-style): a
        token bucket capping how many scans this host may emit per tick.
        ``None`` means unthrottled.
    """

    node: int
    subnet: int = -1
    state: HostState = HostState.SUSCEPTIBLE
    infected_at: int | None = None
    immunized_at: int | None = None
    scan_throttle: TokenBucket | None = field(default=None, repr=False)

    @property
    def is_susceptible(self) -> bool:
        return self.state is HostState.SUSCEPTIBLE

    @property
    def is_infected(self) -> bool:
        return self.state is HostState.INFECTED

    @property
    def is_immune(self) -> bool:
        return self.state is HostState.IMMUNE

    def infect(self, tick: int) -> bool:
        """Attempt infection; returns True if the host became infected.

        Infection attempts against infected or immune hosts are wasted
        scans (the common case for a random worm late in an outbreak).
        """
        if self.state is not HostState.SUSCEPTIBLE:
            return False
        self.state = HostState.INFECTED
        self.infected_at = tick
        return True

    def immunize(self, tick: int) -> bool:
        """Patch the host; returns True if the state changed.

        Both susceptible and infected hosts can be patched — the paper's
        dynamic-immunization model removes either kind from play.
        """
        if self.state is HostState.IMMUNE:
            return False
        self.state = HostState.IMMUNE
        self.immunized_at = tick
        return True

    def install_throttle(self, rate: float) -> None:
        """Install a host-level scan-rate filter of ``rate`` scans/tick."""
        if rate <= 0:
            raise HostError(f"throttle rate must be positive, got {rate}")
        self.scan_throttle = TokenBucket(rate)

    def allow_scan(self) -> bool:
        """Whether the host-level filter permits emitting one more scan."""
        if self.scan_throttle is None:
            return True
        return self.scan_throttle.try_consume()

    def tick_throttle(self) -> None:
        """Advance the host filter's token bucket by one tick."""
        if self.scan_throttle is not None:
            self.scan_throttle.refill()
