"""Delayed dynamic immunization for the simulator (Section 6).

The process starts at an absolute tick, or when the infection first
reaches a trigger fraction (the paper parameterizes both ways).  Once
active, every non-immune host — susceptible or infected — is patched with
probability ``mu`` each tick.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .network import Network

__all__ = ["ImmunizationPolicy", "ImmunizationProcess"]


@dataclass(frozen=True)
class ImmunizationPolicy:
    """When and how fast patching happens.

    Exactly one of ``start_tick`` / ``start_fraction`` must be set.

    Attributes
    ----------
    mu:
        Per-tick patch probability for each unpatched host.
    start_tick:
        Absolute tick at which patching begins.
    start_fraction:
        Begin patching the first tick the *ever-infected* fraction reaches
        this level (the paper's "immunization at 20%").
    patch_infected:
        Whether infected hosts are patched too (the paper's model patches
        both; disable for a susceptible-only ablation).
    """

    mu: float
    start_tick: int | None = None
    start_fraction: float | None = None
    patch_infected: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.mu <= 1.0:
            raise ValueError(f"mu must be in [0, 1], got {self.mu}")
        has_tick = self.start_tick is not None
        has_fraction = self.start_fraction is not None
        if has_tick == has_fraction:
            raise ValueError(
                "exactly one of start_tick / start_fraction must be set"
            )
        if has_tick and self.start_tick < 0:
            raise ValueError(
                f"start_tick must be non-negative, got {self.start_tick}"
            )
        if has_fraction and not 0.0 < self.start_fraction < 1.0:
            raise ValueError(
                f"start_fraction must be in (0, 1), got {self.start_fraction}"
            )

    @classmethod
    def at_tick(cls, start_tick: int, mu: float) -> "ImmunizationPolicy":
        """Patching begins at an absolute tick."""
        return cls(mu=mu, start_tick=start_tick)

    @classmethod
    def at_fraction(cls, start_fraction: float, mu: float) -> "ImmunizationPolicy":
        """Patching begins when infection reaches a fraction of hosts."""
        return cls(mu=mu, start_fraction=start_fraction)


class ImmunizationProcess:
    """Executes an :class:`ImmunizationPolicy` against a network."""

    def __init__(
        self,
        network: Network,
        policy: ImmunizationPolicy,
        rng: random.Random,
    ) -> None:
        self._network = network
        self._policy = policy
        self._rng = rng
        self._active = False
        self.started_at: int | None = None
        self.patched = 0

    @property
    def is_active(self) -> bool:
        """Whether patching has begun."""
        return self._active

    def _should_start(self, tick: int, ever_infected: int) -> bool:
        if self._policy.start_tick is not None:
            return tick >= self._policy.start_tick
        fraction = ever_infected / self._network.num_infectable
        return fraction >= self._policy.start_fraction

    def step(self, tick: int, ever_infected: int) -> int:
        """Run one tick of patching; returns the number patched this tick."""
        if not self._active:
            if not self._should_start(tick, ever_infected):
                return 0
            self._active = True
            self.started_at = tick
        rng = self._rng
        mu = self._policy.mu
        patched_now = 0
        for node in self._network.infectable:
            host = self._network.host(node)
            if host.is_immune:
                continue
            if host.is_infected and not self._policy.patch_infected:
                continue
            if rng.random() < mu:
                host.immunize(tick)
                patched_now += 1
        self.patched += patched_now
        return patched_now
