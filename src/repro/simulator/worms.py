"""Worm scanning strategies: random propagation and local-preferential.

The paper studies two propagation algorithms (Section 5):

* **random propagation** (Code Red I style) — every scan targets a host
  chosen uniformly at random from the whole susceptible population;
* **local-preferential connection** (Blaster/Welchia style) — a scan
  targets the worm's own subnet with probability ``local_preference`` and
  a random host otherwise.

Scan volume follows the paper's simulation loop: "at each time unit each
infected node will attempt to infect everyone else with infection
probability beta" — i.e. each infected node emits scans at expected rate
``beta`` per tick.  We realize fractional rates with a deterministic
integer part plus one Bernoulli trial for the remainder.
"""

from __future__ import annotations

import abc
import random

from .network import Network

__all__ = [
    "WormStrategy",
    "RandomScanWorm",
    "LocalPreferentialWorm",
    "TopologicalWorm",
    "SequentialScanWorm",
    "scans_this_tick",
]


def scans_this_tick(rng: random.Random, rate: float) -> int:
    """Number of scans a host emits this tick for an expected ``rate``.

    ``rate = 2.3`` yields 2 scans always plus a third with probability 0.3,
    so the expectation is exact and the variance is minimal (keeps 10-run
    averages tight, like the paper's).
    """
    if rate < 0:
        raise ValueError(f"scan rate must be non-negative, got {rate}")
    whole = int(rate)
    fraction = rate - whole
    return whole + (1 if fraction > 0 and rng.random() < fraction else 0)


class WormStrategy(abc.ABC):
    """Target-selection policy of a scanning worm."""

    @abc.abstractmethod
    def pick_target(
        self, rng: random.Random, origin: int, network: Network
    ) -> int | None:
        """Choose a scan destination for an infected host at ``origin``.

        Returns ``None`` when no valid target exists (degenerate
        networks); such scans are simply not emitted.
        """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short name used in experiment labels."""


class RandomScanWorm(WormStrategy):
    """Uniform random scanning over the infectable population.

    ``hit_probability`` models scans aimed at unused address space: with
    probability ``1 - hit_probability`` the scan targets nothing real and
    is wasted.  The paper's abstract model folds this into ``beta``; the
    ablation benchmarks expose it separately.
    """

    def __init__(self, *, hit_probability: float = 1.0) -> None:
        if not 0.0 < hit_probability <= 1.0:
            raise ValueError(
                f"hit_probability must be in (0, 1], got {hit_probability}"
            )
        self._hit = hit_probability

    @property
    def name(self) -> str:
        return "random"

    @property
    def hit_probability(self) -> float:
        """Probability a scan targets a real (infectable) address."""
        return self._hit

    def pick_target(
        self, rng: random.Random, origin: int, network: Network
    ) -> int | None:
        if self._hit < 1.0 and rng.random() >= self._hit:
            return None
        population = network.infectable
        if len(population) < 2:
            return None
        target = origin
        while target == origin:
            target = population[rng.randrange(len(population))]
        return target


class LocalPreferentialWorm(WormStrategy):
    """Subnet-preferential scanning (Blaster/Welchia-style).

    With probability ``local_preference`` the scan targets a random host in
    the origin's own subnet; otherwise it behaves like a random worm.
    """

    def __init__(self, local_preference: float = 0.8) -> None:
        if not 0.0 <= local_preference <= 1.0:
            raise ValueError(
                f"local_preference must be in [0, 1], got {local_preference}"
            )
        self._preference = local_preference
        self._fallback = RandomScanWorm()

    @property
    def name(self) -> str:
        return "local_preferential"

    @property
    def local_preference(self) -> float:
        """Probability a scan stays inside the origin's subnet."""
        return self._preference

    def pick_target(
        self, rng: random.Random, origin: int, network: Network
    ) -> int | None:
        if rng.random() < self._preference:
            peers = network.subnet_peers(origin)
            if peers:
                return peers[rng.randrange(len(peers))]
            # Lone host in its subnet: fall through to a random scan.
        return self._fallback.pick_target(rng, origin, network)


class TopologicalWorm(WormStrategy):
    """Spreads along application-level relationships (topological worm).

    Staniford et al. (cited by the paper) describe worms that harvest
    targets from their victims — address books, known_hosts files, peer
    lists — instead of scanning.  We model the relationship graph with
    the victim's graph neighborhood within ``radius`` hops: targets are
    hosts the victim "knows".  Such worms emit no dark-space scans at
    all, which is what makes them invisible to telescopes and resistant
    to contact-rate heuristics keyed on *unknown* addresses.

    With probability ``exploration`` the worm falls back to a random
    scan (a harvested URL pointing outside the neighborhood), which keeps
    the epidemic able to escape poorly connected regions.
    """

    def __init__(self, *, radius: int = 2, exploration: float = 0.05) -> None:
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        if not 0.0 <= exploration <= 1.0:
            raise ValueError(
                f"exploration must be in [0, 1], got {exploration}"
            )
        self._radius = radius
        self._exploration = exploration
        self._fallback = RandomScanWorm()
        self._neighborhoods: dict[int, tuple[int, ...]] = {}

    @property
    def name(self) -> str:
        return "topological"

    def _neighborhood(self, origin: int, network: Network) -> tuple[int, ...]:
        cached = self._neighborhoods.get(origin)
        if cached is not None:
            return cached
        frontier = {origin}
        seen = {origin}
        for _ in range(self._radius):
            frontier = {
                neighbor
                for node in frontier
                for neighbor in network.topology.neighbors(node)
                if neighbor not in seen
            }
            seen |= frontier
        neighborhood = tuple(
            sorted(n for n in seen if n != origin and n in network.hosts)
        )
        self._neighborhoods[origin] = neighborhood
        return neighborhood

    def pick_target(
        self, rng: random.Random, origin: int, network: Network
    ) -> int | None:
        if self._exploration > 0 and rng.random() < self._exploration:
            return self._fallback.pick_target(rng, origin, network)
        known = self._neighborhood(origin, network)
        if not known:
            return self._fallback.pick_target(rng, origin, network)
        return known[rng.randrange(len(known))]


class SequentialScanWorm(WormStrategy):
    """Blaster-style sequential address-space sweeping.

    Each infected instance starts from a random point in the (sorted)
    host address space and walks upward, wrapping around.  Sequential
    sweeps find dense address blocks efficiently but revisit nothing, so
    the per-instance wasted-scan fraction mirrors the space's density —
    modeled by ``hit_probability`` exactly as for the random worm.
    """

    def __init__(self, *, hit_probability: float = 1.0) -> None:
        if not 0.0 < hit_probability <= 1.0:
            raise ValueError(
                f"hit_probability must be in (0, 1], got {hit_probability}"
            )
        self._hit = hit_probability
        self._cursors: dict[int, int] = {}

    @property
    def name(self) -> str:
        return "sequential"

    def pick_target(
        self, rng: random.Random, origin: int, network: Network
    ) -> int | None:
        population = network.infectable
        if len(population) < 2:
            return None
        if self._hit < 1.0 and rng.random() >= self._hit:
            return None
        cursor = self._cursors.get(origin)
        if cursor is None:
            cursor = rng.randrange(len(population))
        target = population[cursor % len(population)]
        self._cursors[origin] = cursor + 1
        if target == origin:
            target = population[(cursor + 1) % len(population)]
            self._cursors[origin] = cursor + 2
        return target
