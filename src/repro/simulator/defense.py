"""Rate-limiting deployment strategies (who gets the filters).

Each function configures a :class:`~repro.simulator.network.Network` for
one of the paper's deployment cases and returns a small descriptor for the
experiment reports.  Strategies:

* :func:`no_defense` — baseline.
* :func:`deploy_host_rate_limit` — filters on a fraction ``q`` of end
  hosts, throttling their *outgoing scans* (Sections 4 leaf / 5.1 host).
* :func:`deploy_hub_rate_limit` — star topology: per-link limit ``gamma``
  plus a node-level forwarding budget ``beta`` at the hub (Section 4).
* :func:`deploy_edge_rate_limit` — limits on every link incident to an
  edge router (Section 5.2).
* :func:`deploy_backbone_rate_limit` — limits on every link incident to a
  backbone router, each sized as ``base_rate x link_weight`` where the
  weight is proportional to routing-table occupancy (Section 5.3/5.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..topology.graphs import TopologyError
from .network import Network

__all__ = [
    "DefenseDescriptor",
    "no_defense",
    "deploy_host_rate_limit",
    "deploy_hub_rate_limit",
    "deploy_edge_rate_limit",
    "deploy_backbone_rate_limit",
]


@dataclass(frozen=True)
class DefenseDescriptor:
    """What was deployed, for labeling experiment outputs."""

    name: str
    limited_links: int = 0
    throttled_hosts: int = 0
    parameters: dict[str, float] = field(default_factory=dict)


def no_defense(network: Network) -> DefenseDescriptor:
    """Baseline: no filters anywhere."""
    return DefenseDescriptor(name="no_rl")


def deploy_host_rate_limit(
    network: Network,
    fraction: float,
    rate: float,
    *,
    seed: int | None = None,
) -> DefenseDescriptor:
    """Install outgoing-scan throttles on a random ``fraction`` of hosts.

    The filtered hosts' worm scans are capped at ``rate`` per tick (a
    token bucket), matching the ``beta2`` of the analytical model; their
    inbound traffic and transit traffic are untouched, exactly like a
    host-resident filter.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = random.Random(seed)
    population = list(network.infectable)
    count = round(fraction * len(population))
    chosen = rng.sample(population, count) if count else []
    for node in chosen:
        network.host(node).install_throttle(rate)
    return DefenseDescriptor(
        name=f"host_rl_{int(round(fraction * 100))}pct",
        throttled_hosts=len(chosen),
        parameters={"fraction": fraction, "rate": rate},
    )


def deploy_hub_rate_limit(
    network: Network,
    *,
    link_rate: float,
    hub_budget: float,
) -> DefenseDescriptor:
    """Star-topology hub filters: per-link ``gamma`` + node budget ``beta``.

    Mirrors the paper's star simulation ("we limited the links to 10
    packets per second with the hub rate limit beta = 0.01"): every link
    through the hub gets capacity ``link_rate``, and the hub's combined
    forwarding is capped at ``hub_budget`` packets per tick.
    """
    if link_rate <= 0 or hub_budget <= 0:
        raise ValueError(
            f"rates must be positive (link_rate={link_rate}, "
            f"hub_budget={hub_budget})"
        )
    if not network.roles.edge_routers:
        raise TopologyError("hub rate limiting needs a hub (edge router)")
    hub = network.roles.edge_routers[0]
    limited = 0
    for neighbor in network.topology.neighbors(hub):
        network.set_link_rate(hub, neighbor, link_rate)
        network.set_link_rate(neighbor, hub, link_rate)
        limited += 2
    network.set_node_forward_budget(hub, hub_budget)
    return DefenseDescriptor(
        name="hub_rl",
        limited_links=limited,
        parameters={"link_rate": link_rate, "hub_budget": hub_budget},
    )


def _deploy_router_limits(
    network: Network,
    routers: tuple[int, ...],
    base_rate: float,
    weighted: bool,
    name: str,
) -> DefenseDescriptor:
    """Rate-limit every link incident to ``routers``.

    When ``weighted`` is true each direction's capacity is
    ``base_rate * link_weight`` — the paper's scheme: "compute a link
    weight that is proportional to the number of routing table entries the
    link occupies [and] multiply this weight to the base rate", so the
    most utilized links get the highest throughput and normal traffic is
    mostly unharmed.  A small floor of ``0.1 * base_rate`` keeps barely
    used links usable.
    """
    if base_rate <= 0:
        raise ValueError(f"base_rate must be positive, got {base_rate}")
    limited = 0
    seen: set[tuple[int, int]] = set()
    for router in routers:
        for neighbor in network.topology.neighbors(router):
            for u, v in ((router, neighbor), (neighbor, router)):
                if (u, v) in seen:
                    continue
                seen.add((u, v))
                if weighted:
                    weight = network.routing.link_weight(u, v)
                    rate = max(base_rate * weight, 0.1 * base_rate)
                else:
                    rate = base_rate
                network.set_link_rate(u, v, rate)
                limited += 1
    return DefenseDescriptor(
        name=name,
        limited_links=limited,
        parameters={"base_rate": base_rate},
    )


def deploy_edge_rate_limit(
    network: Network,
    base_rate: float,
    *,
    weighted: bool = True,
) -> DefenseDescriptor:
    """Rate-limit edge routers' subnet-boundary links (Section 5.2).

    An edge-router filter polices traffic *entering or leaving* the
    subnet; it never sees intra-subnet traffic.  So only links from an
    edge router to neighbors outside its own subnet are limited — which
    is exactly why the paper finds edge filters nearly useless against
    local-preferential worms: the intra-subnet spread bypasses them.
    """
    if not network.roles.edge_routers:
        raise TopologyError("network has no edge routers to deploy on")
    if base_rate <= 0:
        raise ValueError(f"base_rate must be positive, got {base_rate}")
    subnets = network.subnets
    limited = 0
    seen: set[tuple[int, int]] = set()
    for router in network.roles.edge_routers:
        own_subnet = (
            subnets.subnet_of[router] if subnets is not None else -1
        )
        for neighbor in network.topology.neighbors(router):
            if (
                subnets is not None
                and subnets.subnet_of[neighbor] == own_subnet
            ):
                continue  # intra-subnet link: the filter never sees it
            for u, v in ((router, neighbor), (neighbor, router)):
                if (u, v) in seen:
                    continue
                seen.add((u, v))
                if weighted:
                    weight = network.routing.link_weight(u, v)
                    rate = max(base_rate * weight, 0.1 * base_rate)
                else:
                    rate = base_rate
                network.set_link_rate(u, v, rate)
                limited += 1
    return DefenseDescriptor(
        name="edge_rl",
        limited_links=limited,
        parameters={"base_rate": base_rate},
    )


def deploy_backbone_rate_limit(
    network: Network,
    base_rate: float,
    *,
    weighted: bool = True,
) -> DefenseDescriptor:
    """Rate-limit all links incident to backbone routers (Section 5.3)."""
    if not network.roles.backbone:
        raise TopologyError("network has no backbone routers to deploy on")
    return _deploy_router_limits(
        network, network.roles.backbone, base_rate, weighted, "backbone_rl"
    )
