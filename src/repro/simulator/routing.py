"""Shortest-path routing tables and link occupancy counts.

The paper's simulator routes every infection packet over shortest paths
(ns-2's static routing) and sizes each rate-limited link's budget by "the
number of routing table entries the link occupies".  This module computes
both from the topology:

* next-hop tables — one deterministic BFS tree per destination, ties broken
  toward the lowest-numbered neighbor (adjacency lists are sorted);
* per-directed-link *occupancy* — the number of ordered (source,
  destination) pairs whose shortest path crosses the link, computed from
  BFS-tree subtree sizes in O(N^2) total.

Tables are stored as compact ``array('i')`` vectors: ~4 MB for the paper's
1,000-node topology.
"""

from __future__ import annotations

from array import array
from collections import deque

from ..topology.graphs import Topology, TopologyError

__all__ = ["RoutingTables"]

DirectedLink = tuple[int, int]


class RoutingTables:
    """All-pairs next-hop routing derived from per-destination BFS trees."""

    def __init__(self, topology: Topology) -> None:
        if not topology.is_connected():
            raise TopologyError(
                "routing requires a connected topology; got "
                f"{len(topology.connected_components())} components"
            )
        self._topology = topology
        n = topology.num_nodes
        # _parent_toward[d][v] = next hop from v toward destination d.
        self._parent_toward: list[array] = []
        self._occupancy: dict[DirectedLink, int] = {}
        for destination in range(n):
            parents, order = self._bfs_tree_with_order(destination)
            self._parent_toward.append(parents)
            self._accumulate_occupancy(destination, parents, order)

    def _bfs_tree_with_order(self, root: int) -> tuple[array, list[int]]:
        """Deterministic BFS tree toward ``root`` plus the visit order."""
        topology = self._topology
        parents = array("i", [-1] * topology.num_nodes)
        parents[root] = root
        order: list[int] = [root]
        queue: deque[int] = deque([root])
        while queue:
            node = queue.popleft()
            for neighbor in topology.neighbors(node):
                if parents[neighbor] < 0:
                    parents[neighbor] = node
                    order.append(neighbor)
                    queue.append(neighbor)
        return parents, order

    def _accumulate_occupancy(
        self, destination: int, parents: array, order: list[int]
    ) -> None:
        """Add this destination's path counts to the occupancy map.

        The number of sources whose path to ``destination`` uses the
        directed link ``(v, parents[v])`` equals the size of ``v``'s
        subtree in the BFS tree; subtree sizes fall out of one reverse
        sweep of the BFS visit order.
        """
        n = self._topology.num_nodes
        subtree = array("i", [1] * n)
        for node in reversed(order):
            parent = parents[node]
            if parent != node:
                subtree[parent] += subtree[node]
        occupancy = self._occupancy
        for node in order:
            parent = parents[node]
            if parent == node:
                continue
            link = (node, parent)
            occupancy[link] = occupancy.get(link, 0) + subtree[node]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The topology these tables were computed from."""
        return self._topology

    def next_hop(self, node: int, destination: int) -> int:
        """Next hop from ``node`` toward ``destination``.

        Returns ``destination`` itself when ``node == destination``.
        """
        hop = self._parent_toward[destination][node]
        if hop < 0:
            raise TopologyError(
                f"no route from {node} to {destination}"
            )
        return hop

    def path(self, src: int, dst: int) -> list[int]:
        """Full node sequence of the routed path, endpoints included."""
        path = [src]
        node = src
        limit = self._topology.num_nodes
        while node != dst:
            node = self.next_hop(node, dst)
            path.append(node)
            if len(path) > limit:
                raise TopologyError(
                    f"routing loop detected between {src} and {dst}"
                )
        return path

    def path_length(self, src: int, dst: int) -> int:
        """Hop count of the routed path."""
        return len(self.path(src, dst)) - 1

    def link_occupancy(self, u: int, v: int) -> int:
        """Ordered (src, dst) pairs whose path crosses directed link u→v."""
        return self._occupancy.get((u, v), 0)

    def occupancy_map(self) -> dict[DirectedLink, int]:
        """Copy of the full directed-link occupancy map."""
        return dict(self._occupancy)

    def total_occupancy(self) -> int:
        """Sum of occupancy over all directed links.

        Equals the sum of all pairwise shortest-path lengths, a useful
        cross-check for the tests.
        """
        return sum(self._occupancy.values())

    def link_weight(self, u: int, v: int) -> float:
        """Occupancy of u→v relative to the mean used directed link.

        This is the paper's "link weight proportional to the number of
        routing table entries the link occupies", normalized so the mean
        used link has weight 1.0 — multiply by a base rate to get the
        simulated link rate.
        """
        if not self._occupancy:
            return 0.0
        mean = self.total_occupancy() / len(self._occupancy)
        return self.link_occupancy(u, v) / mean
