"""Shortest-path routing tables and link occupancy counts.

The paper's simulator routes every infection packet over shortest paths
(ns-2's static routing) and sizes each rate-limited link's budget by "the
number of routing table entries the link occupies".  This module computes
both from the topology:

* next-hop tables — one deterministic BFS tree per destination, ties broken
  toward the lowest-numbered neighbor (adjacency lists are sorted);
* per-directed-link *occupancy* — the number of ordered (source,
  destination) pairs whose shortest path crosses the link, computed from
  BFS-tree subtree sizes.

Two builders produce bit-identical tables.  The default is a
level-synchronous BFS vectorized with numpy over a CSR adjacency and
batched across destinations — the sweep is what makes 10,000-node
topologies affordable (seconds instead of minutes).  ``method="scalar"``
keeps the original queue-based BFS as an executable specification; the
property-based test suite asserts the two agree on random graphs, and the
golden benchmark fixtures pin the tie-breaking on the paper scenarios.

Occupancy is computed lazily on first use: only the backbone rate-limit
defense weighs links by occupancy, so scan-only scenarios (including the
large extension runs) never pay for the second sweep.

Tables are stored as one ``(N, N)`` int32 matrix (row ``d`` holds the
next hop toward destination ``d`` from every node): ~4 MB for the paper's
1,000-node topology, ~400 MB for a 10,000-node extension run.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..topology.graphs import Topology, TopologyError

__all__ = ["RoutingTables"]

DirectedLink = tuple[int, int]

#: Builders accepted by :class:`RoutingTables`.
_METHODS = ("vectorized", "scalar")


class RoutingTables:
    """All-pairs next-hop routing derived from per-destination BFS trees."""

    def __init__(self, topology: Topology, *, method: str = "vectorized") -> None:
        if not topology.is_connected():
            raise TopologyError(
                "routing requires a connected topology; got "
                f"{len(topology.connected_components())} components"
            )
        if method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
        self._topology = topology
        self._method = method
        n = topology.num_nodes
        # CSR adjacency (neighbor lists are sorted, so the flattened
        # src * n + dst keys are globally sorted — one searchsorted maps
        # any directed link to its edge slot).
        degrees = np.array(topology.degrees(), dtype=np.int64)
        self._indptr = np.concatenate(([0], np.cumsum(degrees))).astype(
            np.int64
        )
        self._indices = np.array(
            [v for node in topology.nodes() for v in topology.neighbors(node)],
            dtype=np.int32,
        ).reshape(-1)
        sources = np.repeat(np.arange(n, dtype=np.int64), degrees)
        self._edge_keys = sources * n + self._indices
        # _parent[d][v] = next hop from v toward destination d.
        self._parent = np.full((n, n), -1, dtype=np.int32)
        # Occupancy per directed-edge slot (same order as _indices);
        # computed lazily — see _ensure_occupancy.
        self._occ: np.ndarray | None = None
        if method == "scalar":
            for root in range(n):
                self._scalar_tree(root, self._parent[root], occupancy=None)
        else:
            for start in range(0, n, self._BATCH_ROOTS):
                stop = min(start + self._BATCH_ROOTS, n)
                self._sweep_roots(
                    start, stop, self._parent[start:stop], occupancy=None
                )
        # memoryview rows hand out plain Python ints on indexing — the
        # transport hot loops read these, not numpy scalars.
        self._row_views = [row.data for row in self._parent]

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    def _edge_slot(self, u: int, v: int) -> int:
        """Slot of directed link u→v in the CSR edge arrays, or -1."""
        key = u * self._topology.num_nodes + v
        slot = int(np.searchsorted(self._edge_keys, key))
        if slot < self._edge_keys.size and self._edge_keys[slot] == key:
            return slot
        return -1

    def _scalar_tree(
        self, root: int, parent_row, occupancy: np.ndarray | None
    ) -> None:
        """Queue-based BFS toward ``root``: the executable specification.

        Writes next hops into ``parent_row`` and, when ``occupancy`` is
        given, adds this destination's path counts to it: the number of
        sources routed over directed link ``(v, parents[v])`` equals the
        size of ``v``'s subtree in the BFS tree, which one reverse sweep
        of the visit order accumulates.
        """
        topology = self._topology
        parents = [-1] * topology.num_nodes
        parents[root] = root
        order: list[int] = [root]
        queue: deque[int] = deque([root])
        while queue:
            node = queue.popleft()
            for neighbor in topology.neighbors(node):
                if parents[neighbor] < 0:
                    parents[neighbor] = node
                    order.append(neighbor)
                    queue.append(neighbor)
        parent_row[:] = parents
        if occupancy is None:
            return
        subtree = [1] * topology.num_nodes
        for node in reversed(order):
            parent = parents[node]
            if parent != node:
                subtree[parent] += subtree[node]
        for node in order:
            parent = parents[node]
            if parent != node:
                occupancy[self._edge_slot(node, parent)] += subtree[node]

    #: Roots processed per vectorized sweep — large enough to amortize
    #: numpy call overhead, small enough that the scratch arrays
    #: (batch * N entries) stay cache-friendly at 10k nodes.
    _BATCH_ROOTS = 256

    def _sweep_roots(
        self,
        first_root: int,
        stop_root: int,
        parent_rows: np.ndarray,
        occupancy: np.ndarray | None,
    ) -> None:
        """Level-synchronous BFS, vectorized over edges *and* roots.

        Matches the scalar builder bit-for-bit: in FIFO BFS a node's
        parent is the earliest-dequeued frontier neighbor, and new nodes
        are appended in (parent's dequeue rank, node id) order because
        adjacency lists are sorted.  Both facts survive vectorization
        without any sort: the gathered candidate array enumerates the
        frontier in rank order with each node's neighbors ascending, so
        it is *already* in discovery order — the subsequence of first
        occurrences of unvisited targets is exactly the scalar builder's
        append sequence, and the first occurrence also carries the
        minimal-rank (earliest-dequeued) parent.  Independent roots are
        batched by keying state on ``root_index * N + node``; the
        frontier stays grouped by root, so each root's candidate order is
        a contiguous run of the global one.
        """
        n = self._topology.num_nodes
        indptr, indices = self._indptr, self._indices
        degrees = indptr[1:] - indptr[:-1]
        batch = stop_root - first_root
        key_dtype = np.int32 if batch * n < 2**31 else np.int64
        parent_flat = parent_rows.reshape(-1)
        roots = np.arange(first_root, stop_root, dtype=np.int64)
        root_keys = np.arange(batch, dtype=np.int64) * n + roots
        parent_flat[root_keys] = roots
        # Scratch for the scatter-based dedup below; only slots written
        # this level are ever read back, so no per-level reset is needed.
        last_write = np.empty(batch * n, dtype=np.intp)
        levels: list[np.ndarray] = []
        frontier_nodes = roots.astype(np.int32)
        frontier_batch = np.arange(batch, dtype=key_dtype)
        while True:
            counts = degrees[frontier_nodes]
            total = int(counts.sum())
            if total == 0:
                break
            starts = indptr[frontier_nodes]
            group_offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            positions = (
                np.repeat(starts - group_offsets, counts)
                + np.arange(total, dtype=np.int64)
            )
            keys = (
                np.repeat(frontier_batch, counts) * key_dtype(n)
                + indices[positions]
            )
            unvisited = parent_flat[keys] == -1
            fresh_keys = keys[unvisited]
            if fresh_keys.size == 0:
                break
            fresh_parents = np.repeat(frontier_nodes, counts)[unvisited]
            # First occurrence per key, in candidate (= discovery) order:
            # scatter indices in reverse so the surviving write per key
            # is the earliest one, then keep positions that read back
            # their own index.
            index = np.arange(fresh_keys.size, dtype=np.intp)
            last_write[fresh_keys[::-1]] = index[::-1]
            chosen = last_write[fresh_keys] == index
            level = fresh_keys[chosen]
            parent_flat[level] = fresh_parents[chosen]
            levels.append(level)
            frontier_batch = (level // n).astype(key_dtype)
            frontier_nodes = (level % n).astype(np.int32)
        if occupancy is None:
            return
        # Subtree sizes: every BFS-tree child sits exactly one level
        # below its parent, so a deepest-first sweep is bottom-up.
        subtree = np.ones(batch * n, dtype=np.int64)
        for level in levels[::-1]:
            level = level.astype(np.int64)
            parent_keys = (level // n) * n + parent_flat[level]
            subtree += np.bincount(
                parent_keys, weights=subtree[level], minlength=batch * n
            ).astype(np.int64)
        if levels:
            keys = np.concatenate(levels).astype(np.int64)
            nodes = keys % n
            edge_keys = nodes * n + parent_flat[keys]
            slots = np.searchsorted(self._edge_keys, edge_keys)
            occupancy += np.bincount(
                slots, weights=subtree[keys], minlength=indices.size
            ).astype(np.int64)

    def _ensure_occupancy(self) -> np.ndarray:
        """Compute per-link occupancy on first use.

        Reruns the BFS sweep with occupancy accumulation into scratch
        parent rows (the real table is already built and must not be
        reset).  Only the backbone defense and the occupancy queries
        trigger this, so plain scan scenarios skip the cost entirely.
        """
        if self._occ is not None:
            return self._occ
        n = self._topology.num_nodes
        occ = np.zeros(self._indices.size, dtype=np.int64)
        if self._method == "scalar":
            scratch = np.empty(n, dtype=np.int32)
            for root in range(n):
                self._scalar_tree(root, scratch, occupancy=occ)
        else:
            batch = min(self._BATCH_ROOTS, n)
            scratch = np.empty((batch, n), dtype=np.int32)
            for start in range(0, n, batch):
                stop = min(start + batch, n)
                rows = scratch[: stop - start]
                rows.fill(-1)
                self._sweep_roots(start, stop, rows, occupancy=occ)
        self._occ = occ
        return occ

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The topology these tables were computed from."""
        return self._topology

    def next_hop(self, node: int, destination: int) -> int:
        """Next hop from ``node`` toward ``destination``.

        Returns ``destination`` itself when ``node == destination``.
        """
        hop = self._row_views[destination][node]
        if hop < 0:
            raise TopologyError(f"no route from {node} to {destination}")
        return hop

    def next_hop_table(self, destination: int):
        """Next-hop row toward ``destination``, indexable by node id.

        Returns a flat int view (``table[node]`` is a plain Python int);
        the fast engine's transport reads these directly instead of
        paying a method call per forwarded packet.  Treat it as
        read-only.
        """
        return self._row_views[destination]

    @property
    def parent_matrix(self) -> np.ndarray:
        """The full next-hop matrix: ``matrix[destination, node]``.

        ``matrix[d, v]`` is the next hop from ``v`` toward ``d`` (or -1
        when unreachable / ``v == d``).  Exposed for the fast engine's
        vectorized transport, which gathers next hops for whole packet
        batches with one fancy index.  Treat it as read-only.
        """
        return self._parent

    def path(self, src: int, dst: int) -> list[int]:
        """Full node sequence of the routed path, endpoints included."""
        path = [src]
        node = src
        limit = self._topology.num_nodes
        while node != dst:
            node = self.next_hop(node, dst)
            path.append(node)
            if len(path) > limit:
                raise TopologyError(
                    f"routing loop detected between {src} and {dst}"
                )
        return path

    def path_length(self, src: int, dst: int) -> int:
        """Hop count of the routed path."""
        return len(self.path(src, dst)) - 1

    def link_occupancy(self, u: int, v: int) -> int:
        """Ordered (src, dst) pairs whose path crosses directed link u→v."""
        occ = self._ensure_occupancy()
        slot = self._edge_slot(u, v)
        return int(occ[slot]) if slot >= 0 else 0

    def occupancy_map(self) -> dict[DirectedLink, int]:
        """Directed-link occupancy for every link some path uses."""
        occ = self._ensure_occupancy()
        n = self._topology.num_nodes
        used = np.nonzero(occ)[0]
        return {
            (int(self._edge_keys[slot]) // n, int(self._edge_keys[slot]) % n):
            int(occ[slot])
            for slot in used
        }

    def total_occupancy(self) -> int:
        """Sum of occupancy over all directed links.

        Equals the sum of all pairwise shortest-path lengths, a useful
        cross-check for the tests.
        """
        return int(self._ensure_occupancy().sum())

    def link_weight(self, u: int, v: int) -> float:
        """Occupancy of u→v relative to the mean used directed link.

        This is the paper's "link weight proportional to the number of
        routing table entries the link occupies", normalized so the mean
        used link has weight 1.0 — multiply by a base rate to get the
        simulated link rate.
        """
        occ = self._ensure_occupancy()
        used = int(np.count_nonzero(occ))
        if not used:
            return 0.0
        mean = self.total_occupancy() / used
        return self.link_occupancy(u, v) / mean
