"""Cross-replica vectorized execution: one numpy pass per tick.

:class:`VectorReplicaSimulation` extends
:class:`~repro.simulator.fastpath.replicas.ReplicaBatchSimulation` with
a tick loop that advances *all* live replicas through each phase in one
pass over the shared ``(replica, host)`` and ``(replica, link)`` state,
instead of round-robining per-replica phase methods.  A live-replica
mask shrinks the working set as replicas die out, so a 1000-replica
near-critical sweep pays for the few replicas that take off, not the
many that die at tick 2.

Bit-identity contract
---------------------
Each replica owns an isolated ``numpy.random.Generator``, so only the
*per-replica draw order within a tick* determines equivalence with a
solo ``scan_mode="batch"`` run.  The vectorized loop draws each
replica's per-phase arrays in exactly the solo order —

1. scan counts (``gen.random(n_infected) < frac``, only when the scan
   rate has a fractional part),
2. throttle gating (no draws),
3. hit mask (``gen.random(total)``, only when hit probability < 1),
4. targets (uniform with resample, or the local-preference kernel),
5. telescope observation (``gen.binomial``, only when scans went dark
   and a quarantine is watching),
6. immunization draws (``gen.random(n_candidates)``, only when the
   policy is active and candidates exist)

— while everything between draws (state flips, token arithmetic,
packet transport) is computed cross-replica.  Transport waves are
merged globally, but every per-replica *subsequence* of the global
packet arrays preserves that replica's solo ordering, and all counter
updates key on ``replica * L + link``, so per-link statistics, queue
contents, and drop-tail victim identity match the solo batch engine
bit for bit.  The equivalence suite asserts this across the defense
grid; paths that cannot keep the contract fall back.

Fallback
--------
Node forwarding budgets serialize per-packet decisions (the solo batch
engine itself falls back to the exact scalar sweep), so scenarios with
static forwarding budgets or a quarantine plan that deploys budgets run
on the inherited round-robin loop.  ``mode="auto"`` picks vectorized
whenever eligible; ``mode="roundrobin"`` forces the PR 6 loop (the
bench baseline); ``mode="vector"`` raises on ineligible scenarios.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from itertools import chain

import numpy as np

from ..dynamic import DynamicQuarantine
from ..immunization import ImmunizationPolicy
from ..network import Network
from ..worms import WormStrategy
from .engine import FastWormSimulation, pick_targets_local_pref
from .replicas import ReplicaBatchSimulation
from .state import IMMUNE, INFECTED, SUSCEPTIBLE
from .transport import FastTransport

__all__ = ["VectorReplicaSimulation", "REPLICA_ENGINES"]

#: Supported values for ``VectorReplicaSimulation(mode=...)``.
REPLICA_ENGINES = ("auto", "vector", "roundrobin")


class VectorReplicaSimulation(ReplicaBatchSimulation):
    """Replica batch with a cross-replica vectorized tick loop.

    Construction is identical to :class:`ReplicaBatchSimulation` plus
    ``mode`` (see module docstring).  ``self.vectorized`` reports which
    loop :meth:`run` will use.
    """

    def __init__(
        self,
        network: Network,
        worm: WormStrategy,
        *,
        scan_rate: float,
        seeds: Sequence[int],
        initial_infections: int = 1,
        immunization: ImmunizationPolicy | None = None,
        lan_delivery: bool = False,
        quarantine_factory: Callable[[], DynamicQuarantine] | None = None,
        mode: str = "auto",
        writeback: str = "full",
    ) -> None:
        if mode not in REPLICA_ENGINES:
            raise ValueError(
                f"mode must be one of {REPLICA_ENGINES}, got {mode!r}"
            )
        super().__init__(
            network,
            worm,
            scan_rate=scan_rate,
            seeds=seeds,
            initial_infections=initial_infections,
            immunization=immunization,
            lan_delivery=lan_delivery,
            quarantine_factory=quarantine_factory,
            writeback=writeback,
        )
        plan = self._plan
        eligible = not self.layout.budget_buckets and (
            plan is None or not plan.budgets
        )
        if mode == "vector" and not eligible:
            raise ValueError(
                "mode='vector' requires a scenario without node"
                " forwarding budgets (the batch transport itself falls"
                " back to the exact scalar sweep there)"
            )
        self.mode = mode
        self.vectorized = mode != "roundrobin" and eligible

    def run(
        self,
        max_ticks: int,
        harvest: Callable[[int, FastWormSimulation], None],
    ) -> None:
        if not self.vectorized:
            super().run(max_ticks, harvest)
            return
        if max_ticks <= 0:
            raise ValueError(
                f"max_ticks must be positive, got {max_ticks}"
            )
        if self._ran:
            raise RuntimeError(
                "replica batch already ran; build a fresh one"
            )
        self._ran = True
        self._run_vector(max_ticks, harvest)

    # ------------------------------------------------------------------
    # Vectorized loop
    # ------------------------------------------------------------------

    @staticmethod
    def _inject_guarded(
        t: FastTransport,
        li: np.ndarray,
        dsts: np.ndarray,
        rep: int,
        wave_li: list[np.ndarray],
        wave_dst: list[np.ndarray],
        wave_rep: list[np.ndarray],
    ) -> None:
        """Solo drop-tail guard for one replica's unlimited injections.

        Mirrors the tail of :meth:`FastTransport.inject_batch` when the
        virtual hold-out could overflow a queue: links without room for
        their whole share get the per-packet treatment, survivors are
        credited and handed to the global wave.
        """
        uniq, counts = np.unique(li, return_counts=True)
        queues = t.queues
        max_queue = t.max_queue
        pend = t.pending_depth
        tight = [
            link
            for link, incoming in zip(uniq.tolist(), counts.tolist())
            if len(queues[link]) + int(pend[link]) + incoming
            > max_queue[link]
        ]
        if tight:
            mask = np.isin(li, np.asarray(tight, dtype=np.int64))
            t._enqueue_pairs(li[mask], dsts[mask])
            keep = ~mask
            li = li[keep]
            dsts = dsts[keep]
            if li.size == 0:
                return
            uniq, counts = np.unique(li, return_counts=True)
        t.enq_vec[uniq] += counts
        t.fwd_vec[uniq] += counts
        t.peak_vec[uniq] = np.maximum(t.peak_vec[uniq], counts)
        wave_li.append(li)
        wave_dst.append(dsts)
        wave_rep.append(np.full(li.size, rep, dtype=np.int64))

    @staticmethod
    def _enqueue_limited_waiters(
        transports: list[FastTransport],
        w_rep: np.ndarray,
        w_lj: np.ndarray,
        w_dst: np.ndarray,
        link_count: int,
    ) -> None:
        """Queue cascade waiters bound for rate-limited links.

        Grouped by ``(replica, link)`` with one global stable sort —
        per-group semantics (drop-tail, enqueue credit, lazy peak,
        non-empty tracking) mirror
        :meth:`FastTransport._enqueue_grouped`'s limited branch, and the
        stable sort preserves each replica's solo FIFO order per link.
        """
        key = w_rep * link_count + w_lj
        order = np.argsort(key, kind="stable")
        dst_s = w_dst[order].tolist()
        uk, starts = np.unique(key[order], return_index=True)
        bounds = starts.tolist()
        bounds.append(len(dst_s))
        for g, k in enumerate(uk.tolist()):
            t = transports[k // link_count]
            link = k % link_count
            a = bounds[g]
            incoming = bounds[g + 1] - a
            queue = t.queues[link]
            depth = len(queue)
            space = t.max_queue[link] - depth
            if incoming > space:
                accepted = space if space > 0 else 0
                t.drop_list[link] += incoming - accepted
                t.dropped_total += incoming - accepted
            else:
                accepted = incoming
            if accepted:
                queue.extend(dst_s[a : a + accepted])
                t.enq_list[link] += accepted
                t.queued_total += accepted
                if depth == 0:
                    t.nonempty_l.add(link)

    def _run_vector(
        self,
        max_ticks: int,
        harvest: Callable[[int, FastWormSimulation], None],
    ) -> None:
        sims = self.sims
        hosts = self.hosts
        network = self.network
        layout = self.layout
        plan = self._plan
        replicas = self.replicas
        link_count = len(layout.keys)
        n = layout.n

        transports = [sim.transport for sim in sims]
        gens = [sim._gen for sim in sims]
        recorders = [sim.recorder for sim in sims]
        quars = [sim.quarantine for sim in sims]
        immus = [sim.immunization for sim in sims]

        # Scan parameters are scenario-determined, identical across
        # replicas by construction.
        s0 = sims[0]
        whole = s0._scan_whole
        frac = s0._scan_frac
        hit = s0._hit
        local_pref = s0._local_pref
        tables = getattr(s0, "_subnet_tables", None)
        pool = s0._infectable_arr
        subnet_arr = s0._subnet_arr
        lan = s0.lan_delivery and subnet_arr is not None

        # Shared (replica, link) counter matrices: each transport's
        # vectorized-track arrays are rebound to one row, so global
        # flat-key updates and the per-replica scalar paths (enqueue,
        # trickle, writeback, apply_limit_plan) address one memory.
        fwd2 = np.zeros((replicas, link_count), dtype=np.int64)
        enq2 = np.zeros((replicas, link_count), dtype=np.int64)
        peak2 = np.zeros((replicas, link_count), dtype=np.int64)
        tok2 = np.tile(layout.l_tokens0, (replicas, 1))
        for r, t in enumerate(transports):
            t.fwd_vec = fwd2[r]
            t.enq_vec = enq2[r]
            t.peak_vec = peak2[r]
            t.l_tokens = tok2[r]
        fwd_flat = fwd2.reshape(-1)
        enq_flat = enq2.reshape(-1)
        peak_flat = peak2.reshape(-1)

        # Token refill splits: pre-deploy rows refill the static
        # template columns; deployed rows refill static ∪ plan columns
        # at post-deploy rates.  Elementwise min(tokens + rate, burst)
        # either way — IEEE-identical to each transport's own refill.
        static_idx = layout.limited_idx
        static_limited = layout.limited_arr
        plan_member = np.zeros(link_count, dtype=bool)
        rate_dep = layout.l_rate
        burst_dep = layout.l_burst
        dep_idx = static_idx
        has_plan_links = plan is not None and plan.link_idx.size > 0
        if has_plan_links:
            plan_member[plan.link_idx] = True
            rate_dep = layout.l_rate.copy()
            burst_dep = layout.l_burst.copy()
            rate_dep[plan.link_idx] = plan.link_rates
            burst_dep[plan.link_idx] = plan.link_bursts
            dep_idx = np.unique(
                np.concatenate([static_idx, plan.link_idx])
            )
        deployed = np.zeros(replicas, dtype=bool)

        status = hosts.status
        sus_arr = (status == SUSCEPTIBLE).sum(axis=1)
        inf_arr = (status == INFECTED).sum(axis=1)
        imm_arr = (status == IMMUNE).sum(axis=1)
        injected_arr = np.zeros(replicas, dtype=np.int64)
        delivered_arr = np.zeros(replicas, dtype=np.int64)

        lan_pending: list[list[int]] = [[] for _ in range(replicas)]
        lan_ready: list[list[int]] = [[] for _ in range(replicas)]

        parent = layout.parent
        key_array = layout.key_array
        link_dst_arr = layout.link_dst_arr
        min_cap = layout.min_cap
        max_q_arr = np.asarray(layout.max_queue, dtype=np.int64)

        # Global store for unlimited-link waiters.  In the solo engine a
        # cascade waiter sits in its link's deque until the next tick's
        # sweep; here the waiters of *all* replicas live in shared
        # chunk arrays keyed by ``replica * L + link``, with per-key
        # depths for the drop-tail bound, so both the enqueue and the
        # next sweep are single sorted passes instead of per-replica
        # loops.  Invariant: outside the guard/trickle window of a tick,
        # every real unlimited deque is empty — the only scalar writers
        # (the inject guard, the limited trickle, a deploy flush) mark
        # their replica in ``dirty``, and the sweep drains those deques
        # alongside the store, in solo chronological order.
        depth2 = np.zeros((replicas, link_count), dtype=np.int64)
        depth_flat = depth2.reshape(-1)
        pend_count = np.zeros(replicas, dtype=np.int64)
        pend_rep: list[np.ndarray] = []
        pend_lj: list[np.ndarray] = []
        pend_dst: list[np.ndarray] = []
        dirty: set[int] = set()
        for r, t in enumerate(transports):
            t.pending_depth = depth2[r]

        policy = next(
            (im._policy for im in immus if im is not None), None
        )
        if policy is not None:
            mu = policy.mu
            patch_infected = policy.patch_infected
        infectable_arr = s0._infectable_arr

        live = np.arange(replicas, dtype=np.int64)
        last_tick = max_ticks - 1
        for tick in range(max_ticks):
            live_list = live.tolist()
            nlive = live.size
            hosts.refill_all_throttles()

            # -------------------- scan phase --------------------
            rows, cols = np.nonzero(status[live] == INFECTED)
            wave_li: list[np.ndarray] = []
            wave_dst: list[np.ndarray] = []
            wave_rep: list[np.ndarray] = []
            arrive_rep: list[np.ndarray] = []
            arrive_dst: list[np.ndarray] = []
            dark = None
            if rows.size:
                if frac > 0.0:
                    seg = np.bincount(rows, minlength=nlive)
                    bounds = np.zeros(nlive + 1, dtype=np.int64)
                    np.cumsum(seg, out=bounds[1:])
                    buf = np.empty(rows.size)
                    for i in range(nlive):
                        a, b = int(bounds[i]), int(bounds[i + 1])
                        if a != b:
                            buf[a:b] = gens[live_list[i]].random(b - a)
                    counts = whole + (buf < frac).astype(np.int64)
                else:
                    counts = np.full(rows.size, whole, dtype=np.int64)
                counts = hosts.throttle_gate_grouped(
                    live[rows], cols, counts
                )
                totals = np.bincount(
                    rows, weights=counts, minlength=nlive
                ).astype(np.int64)
                origins = np.repeat(cols, counts)
                rep_o = np.repeat(rows, counts)
                if hit < 1.0 and origins.size:
                    ob = np.zeros(nlive + 1, dtype=np.int64)
                    np.cumsum(totals, out=ob[1:])
                    buf = np.empty(origins.size)
                    for i in range(nlive):
                        a, b = int(ob[i]), int(ob[i + 1])
                        if a != b:
                            buf[a:b] = gens[live_list[i]].random(b - a)
                    keep = buf < hit
                    origins = origins[keep]
                    rep_o = rep_o[keep]
                dark = totals - np.bincount(rep_o, minlength=nlive)
                if origins.size and pool.size >= 2:
                    tb = np.zeros(nlive + 1, dtype=np.int64)
                    np.cumsum(
                        np.bincount(rep_o, minlength=nlive), out=tb[1:]
                    )
                    targets = np.empty(origins.size, dtype=np.int64)
                    for i in range(nlive):
                        a, b = int(tb[i]), int(tb[i + 1])
                        if a == b:
                            continue
                        gen = gens[live_list[i]]
                        seg_orig = origins[a:b]
                        if local_pref is not None:
                            targets[a:b] = pick_targets_local_pref(
                                gen,
                                pool,
                                subnet_arr,
                                tables,
                                local_pref,
                                seg_orig,
                            )
                        else:
                            cand = pool[
                                gen.integers(0, pool.size, size=b - a)
                            ]
                            while True:
                                bad = cand == seg_orig
                                misses = int(bad.sum())
                                if not misses:
                                    break
                                cand[bad] = pool[
                                    gen.integers(
                                        0, pool.size, size=misses
                                    )
                                ]
                            targets[a:b] = cand
                    if lan:
                        osub = subnet_arr[origins]
                        local = (osub != -1) & (
                            osub == subnet_arr[targets]
                        )
                        if local.any():
                            l_rep = rep_o[local]
                            l_t = targets[local].tolist()
                            lb = np.zeros(nlive + 1, dtype=np.int64)
                            np.cumsum(
                                np.bincount(l_rep, minlength=nlive),
                                out=lb[1:],
                            )
                            for i in range(nlive):
                                a, b = int(lb[i]), int(lb[i + 1])
                                if a != b:
                                    lan_pending[live_list[i]].extend(
                                        l_t[a:b]
                                    )
                            remote = ~local
                            origins = origins[remote]
                            targets = targets[remote]
                            rep_o = rep_o[remote]
                    if origins.size:
                        reps_act = live[rep_o]
                        injected_arr += np.bincount(
                            reps_act, minlength=replicas
                        )
                        next_hops = parent[targets, origins]
                        li = np.searchsorted(
                            key_array, origins * n + next_hops
                        )
                        lim = static_limited[li]
                        if has_plan_links:
                            lim = lim | (
                                plan_member[li] & deployed[reps_act]
                            )
                        if lim.any():
                            l_rep = rep_o[lim]
                            l_li = li[lim]
                            l_dst = targets[lim]
                            lb = np.zeros(nlive + 1, dtype=np.int64)
                            np.cumsum(
                                np.bincount(l_rep, minlength=nlive),
                                out=lb[1:],
                            )
                            for i in range(nlive):
                                a, b = int(lb[i]), int(lb[i + 1])
                                if a != b:
                                    transports[
                                        live_list[i]
                                    ]._enqueue_pairs(
                                        l_li[a:b], l_dst[a:b]
                                    )
                            keep = ~lim
                            li = li[keep]
                            targets = targets[keep]
                            rep_o = rep_o[keep]
                            reps_act = reps_act[keep]
                        if li.size:
                            sizes = np.bincount(rep_o, minlength=nlive)
                            ub = np.zeros(nlive + 1, dtype=np.int64)
                            np.cumsum(sizes, out=ub[1:])
                            guard = [
                                i
                                for i in range(nlive)
                                if sizes[i]
                                and transports[live_list[i]].queued_u
                                + int(pend_count[live_list[i]])
                                + int(sizes[i])
                                > min_cap
                            ]
                            if guard:
                                for i in guard:
                                    a, b = int(ub[i]), int(ub[i + 1])
                                    r = live_list[i]
                                    self._inject_guarded(
                                        transports[r],
                                        li[a:b],
                                        targets[a:b],
                                        r,
                                        wave_li,
                                        wave_dst,
                                        wave_rep,
                                    )
                                    if transports[r].nonempty_u:
                                        dirty.add(r)
                                keep = ~np.isin(
                                    rep_o,
                                    np.asarray(guard, dtype=np.int64),
                                )
                                li = li[keep]
                                targets = targets[keep]
                                reps_act = reps_act[keep]
                        if li.size:
                            key = reps_act * link_count + li
                            uk, cnt = np.unique(
                                key, return_counts=True
                            )
                            enq_flat[uk] += cnt
                            fwd_flat[uk] += cnt
                            peak_flat[uk] = np.maximum(
                                peak_flat[uk], cnt
                            )
                            wave_li.append(li)
                            wave_dst.append(targets)
                            wave_rep.append(reps_act)
                if quars[0] is not None:
                    for i in np.flatnonzero(dark).tolist():
                        q = quars[live_list[i]]
                        seen = int(
                            gens[live_list[i]].binomial(
                                int(dark[i]), q.telescope.coverage
                            )
                        )
                        if seen:
                            q.telescope.record_hits(seen)

            # ------------------- transmit phase -------------------
            dep_rows = live[deployed[live]]
            nod_rows = live[~deployed[live]]
            if static_idx.size and nod_rows.size:
                ix = np.ix_(nod_rows, static_idx)
                tok2[ix] = np.minimum(
                    tok2[ix] + layout.l_rate[static_idx],
                    layout.l_burst[static_idx],
                )
            if dep_idx.size and dep_rows.size:
                ix = np.ix_(dep_rows, dep_idx)
                tok2[ix] = np.minimum(
                    tok2[ix] + rate_dep[dep_idx], burst_dep[dep_idx]
                )
            for r in live_list:
                t = transports[r]
                if t.nonempty_l:
                    trickled: list[int] = []
                    t._trickle_limited(trickled)
                    if trickled:
                        arrive_rep.append(
                            np.full(len(trickled), r, dtype=np.int64)
                        )
                        arrive_dst.append(
                            np.asarray(trickled, dtype=np.int64)
                        )
                    if t.nonempty_u:
                        dirty.add(r)
            # Sweep: every queued unlimited packet — the global pending
            # store plus the real deques of dirty replicas — enters the
            # wave in one sorted pass.  The stable sort by
            # ``replica * L + link`` reproduces each replica's solo
            # emission order (links ascending, FIFO per link, store
            # content before same-tick scalar enqueues).
            if dirty:
                for r in sorted(dirty):
                    t = transports[r]
                    if not t.nonempty_u:
                        continue
                    active = sorted(t.nonempty_u)
                    queues = t.queues
                    cnts = np.fromiter(
                        (len(queues[li]) for li in active),
                        dtype=np.int64,
                        count=len(active),
                    )
                    total = int(cnts.sum())
                    pend_dst.append(
                        np.fromiter(
                            chain.from_iterable(
                                queues[li] for li in active
                            ),
                            dtype=np.int64,
                            count=total,
                        )
                    )
                    pend_lj.append(
                        np.repeat(np.array(active, dtype=np.int64), cnts)
                    )
                    pend_rep.append(np.full(total, r, dtype=np.int64))
                    for li in active:
                        queues[li].clear()
                    t.nonempty_u.clear()
                    t.queued_total -= total
                    t.queued_u = 0
                dirty.clear()
            if pend_rep:
                sw_rep = (
                    pend_rep[0]
                    if len(pend_rep) == 1
                    else np.concatenate(pend_rep)
                )
                sw_lj = (
                    pend_lj[0]
                    if len(pend_lj) == 1
                    else np.concatenate(pend_lj)
                )
                sw_dst = (
                    pend_dst[0]
                    if len(pend_dst) == 1
                    else np.concatenate(pend_dst)
                )
                key = sw_rep * link_count + sw_lj
                order = np.argsort(key, kind="stable")
                sw_rep = sw_rep[order]
                sw_lj = sw_lj[order]
                sw_dst = sw_dst[order]
                uk, cnt = np.unique(key[order], return_counts=True)
                fwd_flat[uk] += cnt
                depth_flat[uk] = 0
                pend_count[:] = 0
                pend_rep = []
                pend_lj = []
                pend_dst = []
                wave_rep.append(sw_rep)
                wave_li.append(sw_lj)
                wave_dst.append(sw_dst)
            if wave_dst:
                dsts = (
                    wave_dst[0]
                    if len(wave_dst) == 1
                    else np.concatenate(wave_dst)
                )
                src_li = (
                    wave_li[0]
                    if len(wave_li) == 1
                    else np.concatenate(wave_li)
                )
                reps = (
                    wave_rep[0]
                    if len(wave_rep) == 1
                    else np.concatenate(wave_rep)
                )
                while dsts.size:
                    nodes = link_dst_arr[src_li]
                    at_dest = dsts == nodes
                    if at_dest.any():
                        done_rep = reps[at_dest]
                        arrive_rep.append(done_rep)
                        arrive_dst.append(dsts[at_dest])
                        delivered_arr += np.bincount(
                            done_rep, minlength=replicas
                        )
                        keep = ~at_dest
                        dsts = dsts[keep]
                        src_li = src_li[keep]
                        reps = reps[keep]
                        nodes = nodes[keep]
                        if dsts.size == 0:
                            break
                    next_hops = parent[dsts, nodes]
                    lj = np.searchsorted(
                        key_array, nodes * n + next_hops
                    )
                    lim = static_limited[lj]
                    if has_plan_links:
                        lim = lim | (plan_member[lj] & deployed[reps])
                    cascade = ~lim & (lj > src_li)
                    if not cascade.all():
                        wait = ~cascade
                        w_rep = reps[wait]
                        w_lj = lj[wait]
                        w_dst = dsts[wait]
                        w_lim = lim[wait]
                        if w_lim.any():
                            self._enqueue_limited_waiters(
                                transports,
                                w_rep[w_lim],
                                w_lj[w_lim],
                                w_dst[w_lim],
                                link_count,
                            )
                            unl = ~w_lim
                            w_rep = w_rep[unl]
                            w_lj = w_lj[unl]
                            w_dst = w_dst[unl]
                        if w_rep.size:
                            # Unlimited waiters into the pending store:
                            # one stable sort, vectorized credit, and a
                            # per-group python pass only when a queue
                            # would overflow (real deques are empty here
                            # — see the store invariant above).
                            key = w_rep * link_count + w_lj
                            order = np.argsort(key, kind="stable")
                            rep_s = w_rep[order]
                            lj_s = w_lj[order]
                            dst_s = w_dst[order]
                            uk, starts, cnts = np.unique(
                                key[order],
                                return_index=True,
                                return_counts=True,
                            )
                            new_depth = depth_flat[uk] + cnts
                            over = new_depth > max_q_arr[uk % link_count]
                            if over.any():
                                keep = np.ones(rep_s.size, dtype=bool)
                                starts_l = starts.tolist()
                                starts_l.append(rep_s.size)
                                for g in np.flatnonzero(over).tolist():
                                    k = int(uk[g])
                                    link = k % link_count
                                    space = int(max_q_arr[link]) - int(
                                        depth_flat[k]
                                    )
                                    acc = space if space > 0 else 0
                                    spilled = int(cnts[g]) - acc
                                    t = transports[k // link_count]
                                    t.drop_list[link] += spilled
                                    t.dropped_total += spilled
                                    keep[
                                        starts_l[g]
                                        + acc : starts_l[g + 1]
                                    ] = False
                                    cnts[g] = acc
                                rep_s = rep_s[keep]
                                lj_s = lj_s[keep]
                                dst_s = dst_s[keep]
                                new_depth = depth_flat[uk] + cnts
                            depth_flat[uk] = new_depth
                            enq_flat[uk] += cnts
                            peak_flat[uk] = np.maximum(
                                peak_flat[uk], new_depth
                            )
                            if rep_s.size:
                                pend_rep.append(rep_s)
                                pend_lj.append(lj_s)
                                pend_dst.append(dst_s)
                                pend_count += np.bincount(
                                    rep_s, minlength=replicas
                                )
                        dsts = dsts[cascade]
                        lj = lj[cascade]
                        reps = reps[cascade]
                        if dsts.size == 0:
                            break
                    key = reps * link_count + lj
                    uk, cnt = np.unique(key, return_counts=True)
                    enq_flat[uk] += cnt
                    fwd_flat[uk] += cnt
                    peak_flat[uk] = np.maximum(peak_flat[uk], cnt)
                    src_li = lj

            # -------------------- deliver phase --------------------
            for r in live_list:
                ready = lan_ready[r]
                if ready:
                    arrive_rep.append(
                        np.full(len(ready), r, dtype=np.int64)
                    )
                    arrive_dst.append(
                        np.asarray(ready, dtype=np.int64)
                    )
                lan_ready[r] = lan_pending[r]
                lan_pending[r] = []
            if arrive_dst:
                a_rep = (
                    arrive_rep[0]
                    if len(arrive_rep) == 1
                    else np.concatenate(arrive_rep)
                )
                a_dst = (
                    arrive_dst[0]
                    if len(arrive_dst) == 1
                    else np.concatenate(arrive_dst)
                )
                reps_new, _nodes = hosts.infect_grouped(
                    a_rep, a_dst, tick
                )
                if reps_new.size:
                    newc = np.bincount(reps_new, minlength=replicas)
                    sus_arr -= newc
                    inf_arr += newc
                    for r in np.flatnonzero(newc).tolist():
                        recorders[r].note_infection(int(newc[r]))

            # -------------------- defense phase --------------------
            if quars[0] is not None:
                for r in live_list:
                    if quars[r].step(tick, network):
                        t = transports[r]
                        if has_plan_links and pend_count[r]:
                            # The deploy re-buckets links that already
                            # hold packets, so this replica's pending
                            # waiters must sit in its real deques first
                            # (chunk order is chronological).
                            queues = t.queues
                            moved = 0
                            kept_r: list[np.ndarray] = []
                            kept_l: list[np.ndarray] = []
                            kept_d: list[np.ndarray] = []
                            for pr, pl, pd in zip(
                                pend_rep, pend_lj, pend_dst
                            ):
                                m = pr == r
                                if m.any():
                                    for l_, d_ in zip(
                                        pl[m].tolist(), pd[m].tolist()
                                    ):
                                        queue = queues[l_]
                                        if not queue:
                                            t.nonempty_u.add(l_)
                                        queue.append(d_)
                                        moved += 1
                                    keep = ~m
                                    if keep.any():
                                        kept_r.append(pr[keep])
                                        kept_l.append(pl[keep])
                                        kept_d.append(pd[keep])
                                else:
                                    kept_r.append(pr)
                                    kept_l.append(pl)
                                    kept_d.append(pd)
                            pend_rep = kept_r
                            pend_lj = kept_l
                            pend_dst = kept_d
                            t.queued_total += moved
                            t.queued_u += moved
                            depth2[r] = 0
                            pend_count[r] = 0
                            dirty.add(r)
                        hosts.activate_latent(r)
                        t.apply_limit_plan(
                            plan.link_idx,
                            plan.link_rates,
                            plan.link_bursts,
                            plan.budgets,
                        )
                        deployed[r] = True
            if policy is not None:
                act: list[int] = []
                for r in live_list:
                    im = immus[r]
                    if not im._active:
                        if not im._should_start(
                            tick, recorders[r].ever_infected
                        ):
                            continue
                        im._active = True
                        im.started_at = tick
                    act.append(r)
                if act:
                    act_arr = np.asarray(act, dtype=np.int64)
                    sub = status[np.ix_(act_arr, infectable_arr)]
                    elig = sub == SUSCEPTIBLE
                    if patch_infected:
                        elig |= sub == INFECTED
                    err, ecc = np.nonzero(elig)
                    if err.size:
                        eb = np.zeros(len(act) + 1, dtype=np.int64)
                        np.cumsum(
                            np.bincount(err, minlength=len(act)),
                            out=eb[1:],
                        )
                        chosen_rep: list[np.ndarray] = []
                        chosen_node: list[np.ndarray] = []
                        for i, r in enumerate(act):
                            a, b = int(eb[i]), int(eb[i + 1])
                            if a == b:
                                continue
                            draws = gens[r].random(b - a)
                            pick = draws < mu
                            if pick.any():
                                nodes_sel = infectable_arr[
                                    ecc[a:b][pick]
                                ]
                                chosen_rep.append(
                                    np.full(
                                        nodes_sel.size,
                                        r,
                                        dtype=np.int64,
                                    )
                                )
                                chosen_node.append(nodes_sel)
                        if chosen_rep:
                            reps_i, was_inf = hosts.immunize_grouped(
                                np.concatenate(chosen_rep),
                                np.concatenate(chosen_node),
                                tick,
                            )
                            tot = np.bincount(
                                reps_i, minlength=replicas
                            )
                            from_inf = np.bincount(
                                reps_i[was_inf], minlength=replicas
                            )
                            imm_arr += tot
                            inf_arr -= from_inf
                            sus_arr -= tot - from_inf
                            for r in np.flatnonzero(tot).tolist():
                                immus[r].patched += int(tot[r])

            # ----------------- observe / stop / harvest -----------------
            for r in live_list:
                recorders[r].record_counts(
                    tick,
                    int(sus_arr[r]),
                    int(inf_arr[r]),
                    int(imm_arr[r]),
                )
            if tick == last_tick:
                finished = live
            else:
                over = (inf_arr[live] == 0) | (sus_arr[live] == 0)
                finished = live[over]
                live = live[~over]
            if finished.size and pend_rep:
                # Residual in-flight packets: a finishing replica's
                # pending waiters become its real queue contents, which
                # writeback materializes exactly like the solo engine's.
                fin_look = np.zeros(replicas, dtype=bool)
                fin_look[finished] = True
                kept_r = []
                kept_l = []
                kept_d = []
                for pr, pl, pd in zip(pend_rep, pend_lj, pend_dst):
                    m = fin_look[pr]
                    if m.any():
                        for rr, ll, dd in zip(
                            pr[m].tolist(),
                            pl[m].tolist(),
                            pd[m].tolist(),
                        ):
                            t = transports[rr]
                            t.queues[ll].append(dd)
                            t.queued_total += 1
                        keep = ~m
                        if keep.any():
                            kept_r.append(pr[keep])
                            kept_l.append(pl[keep])
                            kept_d.append(pd[keep])
                    else:
                        kept_r.append(pr)
                        kept_l.append(pl)
                        kept_d.append(pd)
                pend_rep = kept_r
                pend_lj = kept_l
                pend_dst = kept_d
                depth2[finished] = 0
                pend_count[finished] = 0
            for r in finished.tolist():
                sim = sims[r]
                t = transports[r]
                t.injected += int(injected_arr[r])
                t.delivered += int(delivered_arr[r])
                sim._final_tick = tick
                dirty.discard(r)
                self._finalize(r, sim, harvest)
            if tick == last_tick or live.size == 0:
                break
