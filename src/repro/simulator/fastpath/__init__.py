"""Opt-in high-performance simulation engine (``engine="fast"``).

Same five-phase tick semantics as the reference
:class:`~repro.simulator.simulation.WormSimulation`, with the
object-per-host / object-per-packet inner loops replaced by
struct-of-arrays state and batched transport:

* host status, infection stamps and throttle tokens live in
  ``(replica, host)`` arrays (:mod:`.state`) — one row per run of a
  vectorized ensemble, a single row for solo runs;
* the scan phase walks a sorted active-infected index, so its cost is
  O(infected), not O(N);
* link queues hold bare destination ids; scalar paths drain them in the
  reference's sorted-key order, vectorized paths move whole per-tick
  waves through numpy routing lookups (:mod:`.transport`).

The engine runs in one of two scan modes (``scan_mode`` on
:class:`.FastWormSimulation`, default ``"auto"``):

* ``"mirror"`` draws from the run RNG in exactly the reference order, so
  a fast run is *bit-identical* to a reference run for every supported
  configuration — trajectories, per-link stats, instrumentation
  counters, trace records, everything.  The differential test suite
  asserts this.
* ``"batch"`` (random-scan and local-preferential worms) samples
  per-host scan counts in aggregate and pushes scans through vectorized
  batched transport; dynamic immunization and quarantine/throttle
  defenses batch alongside.  Runs are *statistically* equivalent — same
  epidemic law, different random stream — and the documented transport
  relaxations in :mod:`.transport` apply.

``"auto"`` picks ``"batch"`` when the worm supports it and the
population is large enough to amortize the numpy overhead, else
``"mirror"``.  The reference engine stays untouched as the semantic
oracle.

:class:`.ReplicaBatchSimulation` (:mod:`.replicas`) stacks many seeded
batch-mode runs of one scenario onto the replica axis: one network,
routing table, and transport layout serve every replica, and each
replica's results are bit-identical to running its spec alone in batch
mode.  :class:`.VectorReplicaSimulation` (:mod:`.vector`) advances all
live replicas through each phase in one cross-replica numpy pass,
again bit-identical, falling back to the round-robin loop where the
batch transport itself would fall back.  The runner's
``engine="fast-batched"`` selects it for whole ensembles.
"""

from .engine import FastWormSimulation
from .replicas import ReplicaBatchSimulation
from .vector import VectorReplicaSimulation

__all__ = [
    "FastWormSimulation",
    "ReplicaBatchSimulation",
    "VectorReplicaSimulation",
]
