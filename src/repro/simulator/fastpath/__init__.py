"""Opt-in high-performance simulation engine (``engine="fast"``).

Same five-phase tick semantics as the reference
:class:`~repro.simulator.simulation.WormSimulation`, with the
object-per-host / object-per-packet inner loops replaced by
struct-of-arrays state and batched transport:

* host status, infection stamps and throttle tokens live in flat arrays
  (:mod:`.state`);
* the scan phase walks a sorted active-infected index, so its cost is
  O(infected), not O(N);
* link queues hold bare destination ids; scalar paths drain them in the
  reference's sorted-key order, vectorized paths move whole per-tick
  waves through numpy routing lookups (:mod:`.transport`).

The engine runs in one of two scan modes (``scan_mode`` on
:class:`.FastWormSimulation`, default ``"auto"``):

* ``"mirror"`` draws from the run RNG in exactly the reference order, so
  a fast run is *bit-identical* to a reference run for every supported
  configuration — trajectories, per-link stats, instrumentation
  counters, trace records, everything.  The differential test suite
  asserts this.
* ``"batch"`` (random-scan worms on large populations) samples per-host
  scan counts in aggregate and pushes scans through vectorized batched
  transport.  Runs are *statistically* equivalent — same epidemic law,
  different random stream — and the documented transport relaxations in
  :mod:`.transport` apply.

``"auto"`` picks ``"batch"`` when the worm is a plain random scanner and
the population is large enough to amortize the numpy overhead, else
``"mirror"``.  The reference engine stays untouched as the semantic
oracle.
"""

from .engine import FastWormSimulation

__all__ = ["FastWormSimulation"]
