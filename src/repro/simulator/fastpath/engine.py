"""The fast worm simulation: reference semantics over flat arrays.

:class:`FastWormSimulation` is a drop-in replacement for
:class:`~repro.simulator.simulation.WormSimulation` — same constructor,
same five-phase tick pipeline on the same
:class:`~repro.simulator.engine.TickSimulation`, same stop condition,
same :class:`~repro.models.base.Trajectory` out — but host state lives
in :class:`~repro.simulator.fastpath.state.HostArrays` and packet
transport in :class:`~repro.simulator.fastpath.transport.FastTransport`.

Bit-identical equivalence hinges on drawing from the run RNG in exactly
the reference order:

* constructor: ``random.Random(seed)`` → immunization process (no
  draws) → ``rng.sample`` for the initial infections;
* scan phase: the reference walks every infectable host in sorted order
  but only *infected* hosts draw (``scans_this_tick`` then one draw per
  scan from the worm / telescope); since ``Network.infectable`` is
  sorted, walking the sorted infected index reproduces the identical
  draw sequence while skipping the O(N) susceptible walk;
* immunization: the reference draws once per non-immune host in
  ``network.infectable`` order — the fast process walks the same tuple
  and consults the status array instead of the host objects.

Host throttles refill vectorized before the scan loop instead of
interleaved with it; buckets are per-host independent and each still
refills exactly once before its own consumption, so token trajectories
are bit-identical.
"""

from __future__ import annotations

import random

import numpy as np

from ...models.base import Trajectory
from ...observability.instrumentation import Instrumentation
from ...observability.trace import tick_record
from ..dynamic import DynamicQuarantine
from ..engine import Phase, TickSimulation
from ..immunization import ImmunizationPolicy
from ..network import Network
from ..observers import CurveRecorder
from ..worms import (
    LocalPreferentialWorm,
    RandomScanWorm,
    WormStrategy,
    scans_this_tick,
)
from .state import IMMUNE, INFECTED, SUSCEPTIBLE, HostArrays
from .transport import FastTransport

__all__ = [
    "FastWormSimulation",
    "FastBatchImmunization",
    "SCAN_MODES",
    "SubnetTables",
    "pick_targets_local_pref",
]

#: Supported values for ``FastWormSimulation(scan_mode=...)``.
SCAN_MODES = ("auto", "mirror", "batch")

#: ``scan_mode="auto"`` switches from draw-for-draw mirroring to
#: aggregated batch sampling above this population size: below it, exact
#: replay costs little and buys bit-identical differential testing;
#: above it, the per-draw Python overhead dominates the tick.
BATCH_MIN_HOSTS = 512


class SubnetTables:
    """Subnet membership of the infectable population, sliced flat.

    ``members`` lists infectable hosts grouped by subnet; ``start`` /
    ``count`` index each subnet's slice.  Hosts outside any subnet (or
    a network without subnets at all) take the uniform fallback,
    matching the reference's lone-host fall-through to
    :class:`RandomScanWorm`.  Pure function of the network, so one
    instance serves every replica of a vectorized ensemble.
    """

    __slots__ = ("members", "start", "count")

    def __init__(
        self, infectable_arr: np.ndarray, subnet_arr: np.ndarray | None
    ) -> None:
        self.members: np.ndarray | None = None
        self.start: np.ndarray | None = None
        self.count: np.ndarray | None = None
        if subnet_arr is None:
            return
        subs = subnet_arr[infectable_arr]
        keep = subs >= 0
        members = infectable_arr[keep]
        subs = subs[keep]
        if members.size == 0:
            return
        order = np.argsort(subs, kind="stable")
        members = members[order]
        counts = np.bincount(subs[order], minlength=int(subs.max()) + 1)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        self.members = members
        self.start = starts.astype(np.int64)
        self.count = counts.astype(np.int64)


def pick_targets_local_pref(
    gen: np.random.Generator,
    pool: np.ndarray,
    subnet_arr: np.ndarray | None,
    tables: SubnetTables,
    local_pref: float,
    origins: np.ndarray,
) -> np.ndarray:
    """Batch twin of :meth:`LocalPreferentialWorm.pick_target`.

    With probability ``local_pref`` a scan draws uniformly from the
    origin's subnet peers; lone hosts and the remaining scans draw
    uniformly from the whole infectable pool minus the origin (the
    reference's fallback random worm, hit 1.0).  The draw sequence is
    a pure function of ``gen`` and ``origins``, which is what lets the
    vectorized replica engine replay a solo run's stream exactly.
    """
    total = origins.size
    targets = np.empty(total, dtype=np.int64)
    local = np.zeros(total, dtype=bool)
    if tables.members is not None:
        subs = subnet_arr[origins]
        valid = subs >= 0
        cnt = np.zeros(total, dtype=np.int64)
        cnt[valid] = tables.count[subs[valid]]
        local = (gen.random(total) < local_pref) & (cnt >= 2)
        if local.any():
            size = cnt[local]
            start = tables.start[subs[local]]
            # Uniform over the subnet's ``size - 1`` peers: draw from
            # the first ``size - 1`` slots and remap a self-draw to the
            # slice's last member (a swap trick — every peer keeps
            # probability 1/(size-1)).
            j = gen.integers(0, size - 1)
            cand = tables.members[start + j]
            clash = cand == origins[local]
            if clash.any():
                cand[clash] = tables.members[(start + size - 1)[clash]]
            targets[local] = cand
    rest = ~local
    n_rest = int(rest.sum())
    if n_rest:
        r_orig = origins[rest]
        cand = pool[gen.integers(0, pool.size, size=n_rest)]
        while True:
            bad = cand == r_orig
            misses = int(bad.sum())
            if not misses:
                break
            cand[bad] = pool[gen.integers(0, pool.size, size=misses)]
        targets[rest] = cand
    return targets


class FastImmunization:
    """Array-backed twin of :class:`ImmunizationProcess`.

    Same activation logic and the same RNG draw sequence (one draw per
    patch-eligible host per active tick, in ``network.infectable``
    order), reading and writing :class:`HostArrays` instead of host
    objects.
    """

    def __init__(
        self,
        network: Network,
        policy: ImmunizationPolicy,
        rng: random.Random,
    ) -> None:
        self._network = network
        self._policy = policy
        self._rng = rng
        self._active = False
        self.started_at: int | None = None
        self.patched = 0

    @property
    def is_active(self) -> bool:
        """Whether patching has begun."""
        return self._active

    def _should_start(self, tick: int, ever_infected: int) -> bool:
        if self._policy.start_tick is not None:
            return tick >= self._policy.start_tick
        fraction = ever_infected / self._network.num_infectable
        return fraction >= self._policy.start_fraction

    def step(self, tick: int, ever_infected: int, hosts: HostArrays) -> int:
        """Run one tick of patching; returns the number patched this tick."""
        if not self._active:
            if not self._should_start(tick, ever_infected):
                return 0
            self._active = True
            self.started_at = tick
        rng = self._rng
        mu = self._policy.mu
        patch_infected = self._policy.patch_infected
        status = hosts.status_row
        patched_now = 0
        for node in self._network.infectable:
            code = status[node]
            if code == IMMUNE:
                continue
            if code == INFECTED and not patch_infected:
                continue
            if rng.random() < mu:
                hosts.immunize(node, tick)
                patched_now += 1
        self.patched += patched_now
        return patched_now


class FastBatchImmunization:
    """Vectorized immunization process for batch-sampling mode.

    Same activation logic as :class:`FastImmunization`, but the per-host
    Bernoulli draws come in one bulk sample from the engine's numpy
    generator (batch mode's own random stream) and patches land through
    :meth:`HostArrays.immunize_many`.  Statistically equivalent to the
    reference process — same per-host patch probability per active tick
    — on a different stream, exactly like batch scanning itself.
    """

    def __init__(
        self,
        network: Network,
        policy: ImmunizationPolicy,
        gen: np.random.Generator,
        infectable_arr: np.ndarray,
    ) -> None:
        self._network = network
        self._policy = policy
        self._gen = gen
        self._infectable = infectable_arr
        self._active = False
        self.started_at: int | None = None
        self.patched = 0

    @property
    def is_active(self) -> bool:
        """Whether patching has begun."""
        return self._active

    def _should_start(self, tick: int, ever_infected: int) -> bool:
        if self._policy.start_tick is not None:
            return tick >= self._policy.start_tick
        fraction = ever_infected / self._network.num_infectable
        return fraction >= self._policy.start_fraction

    def step(self, tick: int, ever_infected: int, hosts: HostArrays) -> int:
        """Run one tick of patching; returns the number patched this tick."""
        if not self._active:
            if not self._should_start(tick, ever_infected):
                return 0
            self._active = True
            self.started_at = tick
        codes = hosts.status_row[self._infectable]
        eligible = codes == SUSCEPTIBLE
        if self._policy.patch_infected:
            eligible |= codes == INFECTED
        candidates = self._infectable[eligible]
        if candidates.size == 0:
            return 0
        draws = self._gen.random(candidates.size)
        chosen = candidates[draws < self._policy.mu]
        patched_now = hosts.immunize_many(chosen, tick)
        self.patched += patched_now
        return patched_now


class FastWormSimulation:
    """A single seeded worm-outbreak run on the fast engine.

    Accepts the arguments of
    :class:`~repro.simulator.simulation.WormSimulation` (see its
    docstring for their semantics) plus ``scan_mode``:

    ``"mirror"``
        Draw from the run RNG in exactly the reference order.  Given
        the same arguments and seed, the run is *bit-identical* to the
        reference engine — trajectories, traces, counters, final host
        and link state.
    ``"batch"``
        Aggregated sampling: per-tick scan counts, targets, and
        telescope observations are drawn in bulk from a numpy generator
        (seeded from the run RNG), and transport moves packet arrays.
        Statistically equivalent, not bit-identical; supported for
        :class:`RandomScanWorm` and :class:`LocalPreferentialWorm`
        (dynamic immunization and quarantine/throttle defenses batch
        alongside either).
    ``"auto"`` (default)
        ``batch`` when the worm supports it and the infectable
        population is at least ``BATCH_MIN_HOSTS``, else ``mirror`` —
        small scenarios keep exact replay, large ones keep speed.

    ``hosts`` and ``transport`` are sharing hooks for the replica
    engine (:class:`~repro.simulator.fastpath.ReplicaBatchSimulation`):
    a pre-built :class:`HostArrays` (with its active-replica cursor
    already pointing at this run's row) and a :class:`FastTransport`
    built over a shared :class:`TransportLayout`.  Leave both ``None``
    for the classic single-run construction.
    """

    def __init__(
        self,
        network: Network,
        worm: WormStrategy,
        *,
        scan_rate: float,
        initial_infections: int = 1,
        immunization: ImmunizationPolicy | None = None,
        lan_delivery: bool = False,
        quarantine: DynamicQuarantine | None = None,
        seed: int | None = None,
        instrumentation: Instrumentation | None = None,
        scan_mode: str = "auto",
        hosts: HostArrays | None = None,
        transport: FastTransport | None = None,
    ) -> None:
        if scan_rate <= 0:
            raise ValueError(f"scan_rate must be positive, got {scan_rate}")
        if scan_mode not in SCAN_MODES:
            raise ValueError(
                f"scan_mode must be one of {SCAN_MODES}, got {scan_mode!r}"
            )
        batchable = isinstance(
            worm, (RandomScanWorm, LocalPreferentialWorm)
        )
        if scan_mode == "batch" and not batchable:
            raise ValueError(
                f"scan_mode='batch' requires a RandomScanWorm or"
                f" LocalPreferentialWorm, got {type(worm).__name__}"
            )
        if not 1 <= initial_infections < network.num_infectable:
            raise ValueError(
                f"initial_infections must be in [1, {network.num_infectable}),"
                f" got {initial_infections}"
            )
        self.network = network
        self.worm = worm
        self.scan_rate = float(scan_rate)
        self.lan_delivery = lan_delivery
        self.quarantine = quarantine
        self.rng = random.Random(seed)
        self.recorder = CurveRecorder(network)
        self.instrumentation = instrumentation
        self.hosts = hosts if hosts is not None else HostArrays(network)
        self.transport = (
            transport if transport is not None else FastTransport(network)
        )
        # Trace records report cumulative NetworkStats; the transport
        # counts from zero, so remember what the network already saw.
        stats = network.stats
        self._base_injected = stats.packets_injected
        self._base_delivered = stats.packets_delivered
        self._base_dropped = stats.packets_dropped
        #: LAN ring: scans land in ``_lan_pending`` and rotate to
        #: ``_lan_ready`` at transmit, delivering one tick later —
        #: identical latency to the reference's ``created_tick`` check.
        self._lan_pending: list[int] = []
        self._lan_ready: list[int] = []

        seeds = self.rng.sample(list(network.infectable), initial_infections)
        for node in seeds:
            if self.hosts.infect(node, tick=0):
                self.recorder.note_infection()

        self.batch_sampling = scan_mode == "batch" or (
            scan_mode == "auto"
            and batchable
            and network.num_infectable >= BATCH_MIN_HOSTS
        )
        if self.batch_sampling:
            # Seeded from the run RNG after initial-infection placement,
            # so the same seed attacks the same hosts on every engine.
            self._gen = np.random.default_rng(self.rng.getrandbits(64))
            self._infectable_arr = np.array(
                network.infectable, dtype=np.int64
            )
            self._subnet_arr = (
                np.array(network.subnets.subnet_of, dtype=np.int64)
                if network.subnets is not None
                else None
            )
            self._scan_whole = int(self.scan_rate)
            self._scan_frac = self.scan_rate - self._scan_whole
            if isinstance(worm, LocalPreferentialWorm):
                # Local-pref batch kernel: a miss in the fallback branch
                # never happens (the reference fallback scans with
                # hit probability 1.0), and subnet membership tables
                # vectorize the peer draws.
                self._hit = 1.0
                self._local_pref = worm.local_preference
                self._subnet_tables = SubnetTables(
                    self._infectable_arr, self._subnet_arr
                )
            else:
                self._hit = worm.hit_probability
                self._local_pref = None

        # Created after batch setup because the batch process draws from
        # the numpy generator; neither constructor consumes randomness,
        # so mirror mode's draw order is unchanged.
        if immunization is None:
            self.immunization = None
        elif self.batch_sampling:
            self.immunization = FastBatchImmunization(
                network, immunization, self._gen, self._infectable_arr
            )
        else:
            self.immunization = FastImmunization(
                network, immunization, self.rng
            )

        self._arrived: list[int] = []
        self._sim = TickSimulation(instrumentation=instrumentation)
        self._sim.on(
            Phase.SCAN,
            self._scan_phase_batch if self.batch_sampling else self._scan_phase,
        )
        self._sim.on(Phase.TRANSMIT, self._transmit_phase)
        self._sim.on(Phase.DELIVER, self._deliver_phase)
        self._sim.on(Phase.IMMUNIZE, self._immunize_phase)
        self._sim.on(Phase.OBSERVE, self._observe_phase)
        self._sim.add_stop_condition(self._epidemic_over)
        self._final_tick = 0

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _scan_phase(self, tick: int) -> None:
        hosts = self.hosts
        hosts.refill_throttles()
        rng = self.rng
        worm = self.worm
        network = self.network
        quarantine = self.quarantine
        transport = self.transport
        scan_rate = self.scan_rate
        lan = self.lan_delivery
        subnets = network.subnets
        subnet_of = subnets.subnet_of if subnets is not None else None
        throttle_pos = hosts.throttle_pos
        tokens = hosts.throttle_tokens
        throttled = dark = lan_count = routed = 0
        for node in hosts.infected_sorted():
            pos = throttle_pos.get(node)
            for _ in range(scans_this_tick(rng, scan_rate)):
                if pos is not None:
                    if tokens[pos] + 1e-12 >= 1.0:
                        tokens[pos] -= 1.0
                    else:
                        throttled += 1
                        break
                target = worm.pick_target(rng, node, network)
                if target is None:
                    if quarantine is not None:
                        quarantine.note_missed_scan(rng)
                    dark += 1
                    continue
                if (
                    lan
                    and subnet_of is not None
                    and subnet_of[node] != -1
                    and subnet_of[node] == subnet_of[target]
                ):
                    self._lan_pending.append(target)
                    lan_count += 1
                else:
                    transport.inject(node, target)
                    routed += 1
        instr = self.instrumentation
        if instr is not None:
            if throttled:
                instr.count("scans_throttled", throttled)
            if dark:
                instr.count("scans_dark", dark)
            if lan_count:
                instr.count("scans_lan", lan_count)
            if routed:
                instr.count("scans_routed", routed)

    def _scan_phase_batch(self, tick: int) -> None:
        hosts = self.hosts
        hosts.refill_throttles()
        infected = hosts.infected_sorted()
        if not infected:
            return
        gen = self._gen
        origins_all = np.asarray(infected, dtype=np.int64)
        count = origins_all.size
        if self._scan_frac > 0.0:
            counts = self._scan_whole + (
                gen.random(count) < self._scan_frac
            ).astype(np.int64)
        else:
            counts = np.full(count, self._scan_whole, dtype=np.int64)
        throttled = 0
        if hosts.throttle_pos:
            pos = hosts.throttle_pos_arr[origins_all]
            idx = np.flatnonzero(pos >= 0)
            if idx.size:
                tpos = pos[idx]
                act = hosts.throttle_active[tpos]
                if not act.all():
                    # Latent columns (throttles pre-registered for a
                    # quarantine deploy that hasn't fired on this
                    # replica yet) gate nothing.
                    idx = idx[act]
                    tpos = tpos[act]
            if idx.size:
                tokens = hosts.throttle_tokens
                usable = np.floor(tokens[tpos] + 1e-12).astype(np.int64)
                np.maximum(usable, 0, out=usable)
                want = counts[idx]
                allowed = np.minimum(want, usable)
                # One throttled event per host whose burst was cut, like
                # the reference's per-host break.
                throttled = int((want > allowed).sum())
                tokens[tpos] -= allowed
                counts[idx] = allowed
        total = int(counts.sum())
        dark = lan_count = routed = 0
        if total:
            origins = np.repeat(origins_all, counts)
            if self._hit < 1.0:
                hit_mask = gen.random(total) < self._hit
                origins = origins[hit_mask]
                dark = total - origins.size
            pool = self._infectable_arr
            if origins.size and pool.size >= 2:
                if self._local_pref is not None:
                    targets = self._pick_targets_local_pref(origins)
                else:
                    targets = pool[
                        gen.integers(0, pool.size, size=origins.size)
                    ]
                    while True:
                        bad = targets == origins
                        misses = int(bad.sum())
                        if not misses:
                            break
                        targets[bad] = pool[
                            gen.integers(0, pool.size, size=misses)
                        ]
                if self.lan_delivery and self._subnet_arr is not None:
                    origin_subnet = self._subnet_arr[origins]
                    local = (origin_subnet != -1) & (
                        origin_subnet == self._subnet_arr[targets]
                    )
                    if local.any():
                        lan_targets = targets[local]
                        self._lan_pending.extend(lan_targets.tolist())
                        lan_count = lan_targets.size
                        remote = ~local
                        origins = origins[remote]
                        targets = targets[remote]
                if origins.size:
                    self.transport.inject_batch(origins, targets)
                    routed = origins.size
            if dark and self.quarantine is not None:
                telescope = self.quarantine.telescope
                seen = int(gen.binomial(dark, telescope.coverage))
                if seen:
                    telescope.record_hits(seen)
        instr = self.instrumentation
        if instr is not None:
            if throttled:
                instr.count("scans_throttled", throttled)
            if dark:
                instr.count("scans_dark", dark)
            if lan_count:
                instr.count("scans_lan", lan_count)
            if routed:
                instr.count("scans_routed", routed)

    def _pick_targets_local_pref(self, origins: np.ndarray) -> np.ndarray:
        return pick_targets_local_pref(
            self._gen,
            self._infectable_arr,
            self._subnet_arr,
            self._subnet_tables,
            self._local_pref,
            origins,
        )

    def _transmit_phase(self, tick: int) -> None:
        transport = self.transport
        self._arrived = (
            transport.transmit_tick_batch()
            if self.batch_sampling
            else transport.transmit_tick()
        )
        if self._lan_ready:
            self._arrived.extend(self._lan_ready)
        self._lan_ready = self._lan_pending
        self._lan_pending = []

    def _deliver_phase(self, tick: int) -> None:
        hosts = self.hosts
        infections = 0
        for dst in self._arrived:
            if hosts.infect(dst, tick):
                infections += 1
        if infections:
            self.recorder.note_infection(infections)
            if self.instrumentation is not None:
                self.instrumentation.count("infections", infections)
        self._arrived = []

    def _immunize_phase(self, tick: int) -> None:
        if self.quarantine is not None:
            if self.quarantine.step(tick, self.network):
                # Filters just deployed onto the network objects; fold
                # the new buckets/budgets into the array mirrors.
                self.hosts.sync_throttles()
                self.transport.sync_limits()
        if self.immunization is not None:
            self.immunization.step(
                tick, self.recorder.ever_infected, self.hosts
            )

    def _observe_phase(self, tick: int) -> None:
        hosts = self.hosts
        self.recorder.record_counts(
            tick, hosts.susceptible, hosts.infected, hosts.immune
        )
        self._final_tick = tick
        instr = self.instrumentation
        if instr is not None and instr.sink is not None:
            transport = self.transport
            instr.emit(
                tick_record(
                    tick=tick,
                    susceptible=hosts.susceptible,
                    infected=hosts.infected,
                    immune=hosts.immune,
                    ever_infected=self.recorder.ever_infected,
                    packets_injected=self._base_injected + transport.injected,
                    packets_delivered=(
                        self._base_delivered + transport.delivered
                    ),
                    packets_dropped=(
                        self._base_dropped + transport.dropped_total
                    ),
                    in_flight=transport.queued_total,
                    lan_queue=len(self._lan_ready),
                )
            )

    def _epidemic_over(self, tick: int) -> bool:
        hosts = self.hosts
        if hosts.susceptible == 0:
            return True
        return hosts.infected == 0

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    @property
    def ticks_executed(self) -> int:
        """Ticks run so far (stop conditions can end a run early)."""
        return self.recorder.num_samples

    @property
    def events_executed(self) -> int:
        """Ad-hoc scheduler events run (0 for purely tick-driven runs)."""
        return self._sim.scheduler.events_executed

    def run(self, max_ticks: int) -> Trajectory:
        """Run up to ``max_ticks`` ticks and return the infection curve.

        After the run, array state is written back onto the network's
        host and link objects, so post-run inspection (state counts,
        ``infected_at`` curves, link stats, queue depths) matches a
        reference run.
        """
        self._sim.run(max_ticks)
        self.hosts.writeback()
        self.transport.writeback(self._final_tick)
        return self.recorder.trajectory()
