"""Replica-batched execution: many seeded runs over one scenario build.

Monte-Carlo ensembles re-run *the same scenario* under different seeds.
Building that scenario — topology sampling, routing tables, defense
deployment — dominates small-run wall clock, and the per-run fast-engine
state (host arrays, transport layout) is mostly scenario-determined too.
:class:`ReplicaBatchSimulation` amortizes all of it: one network, one
:class:`~repro.simulator.fastpath.transport.TransportLayout`, one 2-D
:class:`~repro.simulator.fastpath.state.HostArrays` block with a
``(replica, host)`` axis — and ``R`` otherwise-ordinary
:class:`~repro.simulator.fastpath.engine.FastWormSimulation` instances
whose phase methods run against their own row of the shared state.

Because every replica executes the *same bound methods* a solo
``scan_mode="batch"`` run would execute, over state views that are
bit-for-bit the solo layout, a grouped replica's trajectory, final host
state, and link statistics are identical to running its spec alone
(asserted by the equivalence suite).

Dynamic quarantine is the one stateful wrinkle: a deploy mutates the
*network* (host throttles, link buckets, forwarding budgets), which
replicas share.  :func:`capture_deployment_plan` therefore performs one
real deploy at construction time, diffs the network, undoes everything,
and returns a :class:`DeploymentPlan`; a replica whose own detector
fires replays the plan onto its private row/transport state
(:meth:`HostArrays.activate_latent` +
:meth:`FastTransport.apply_limit_plan`) without touching the network.

One behavioral footnote: a solo run leaves deployed quarantine filters
on the network's host/link objects after it finishes; a grouped run
leaves the network undeployed (the plan was undone at capture).  Host
epidemic state, link statistics, and residual queues — everything the
results layer reads — are written back identically.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..defense import DefenseDescriptor
from ..dynamic import DynamicQuarantine
from ..immunization import ImmunizationPolicy
from ..links import LinkStats
from ..network import Network
from ..worms import WormStrategy
from .engine import FastWormSimulation
from .state import HostArrays
from .transport import FastTransport, TransportLayout

__all__ = [
    "DeploymentPlan",
    "capture_deployment_plan",
    "ReplicaBatchSimulation",
]


@dataclass(frozen=True)
class DeploymentPlan:
    """One quarantine deployment, recorded as replayable data.

    ``link_idx`` indexes into ``sorted(network.links)`` — the same
    ordering :class:`TransportLayout` uses — so the plan applies
    directly to a transport's flat arrays.
    """

    descriptor: DefenseDescriptor
    #: Host scan throttles: ``(node, rate, burst)`` per filtered host.
    throttles: list[tuple[int, float, float]] = field(default_factory=list)
    link_idx: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    link_rates: np.ndarray = field(default_factory=lambda: np.zeros(0))
    link_bursts: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Node forwarding budgets: ``node -> (rate, burst)``.
    budgets: dict[int, tuple[float, float]] = field(default_factory=dict)


def capture_deployment_plan(
    network: Network,
    response: Callable[[Network], DefenseDescriptor],
) -> DeploymentPlan:
    """Deploy ``response`` once, record the diff, and undo it.

    Deployers only ever *install* buckets (host throttles via
    :meth:`Host.install_throttle`, link limits via
    :meth:`Network.set_link_rate`, budgets via
    :meth:`Network.set_node_forward_budget`), so the diff is "which
    bucket objects changed identity".  Undo restores the exact prior
    host-throttle and budget objects; replaced link buckets are rebuilt
    at their prior rate/burst — equivalent, since buckets start empty
    and nothing ran between capture and undo.
    """
    hosts = network.hosts
    before_throttles = {
        node: hosts[node].scan_throttle for node in network.infectable
    }
    keys = sorted(network.links)
    before_buckets = [network.links[key].bucket for key in keys]
    before_budgets = dict(network.forward_budgets)

    descriptor = response(network)

    throttles: list[tuple[int, float, float]] = []
    for node in network.infectable:
        bucket = hosts[node].scan_throttle
        if bucket is not before_throttles[node] and bucket is not None:
            throttles.append((node, bucket.rate, bucket.burst))
    link_idx: list[int] = []
    link_rates: list[float] = []
    link_bursts: list[float] = []
    for i, key in enumerate(keys):
        link = network.links[key]
        bucket = link.bucket
        if bucket is not before_buckets[i] and bucket is not None:
            link_idx.append(i)
            link_rates.append(bucket.rate)
            link_bursts.append(bucket.burst)
    budgets: dict[int, tuple[float, float]] = {}
    for node, bucket in network.forward_budgets.items():
        if before_budgets.get(node) is not bucket:
            budgets[node] = (bucket.rate, bucket.burst)

    # Undo, restoring prior object identity where the objects survive.
    for node, old in before_throttles.items():
        hosts[node].scan_throttle = old
    for i in link_idx:
        old_bucket = before_buckets[i]
        network.links[keys[i]].set_rate_limit(
            old_bucket.rate if old_bucket is not None else None
        )
    network.forward_budgets.clear()
    network.forward_budgets.update(before_budgets)

    return DeploymentPlan(
        descriptor=descriptor,
        throttles=throttles,
        link_idx=np.array(link_idx, dtype=np.int64),
        link_rates=np.array(link_rates, dtype=float),
        link_bursts=np.array(link_bursts, dtype=float),
        budgets=budgets,
    )


class ReplicaBatchSimulation:
    """``R`` seeded batch-mode runs of one scenario, advanced together.

    Parameters mirror :class:`FastWormSimulation` where shared, plus:

    seeds:
        One RNG seed per replica; ``len(seeds)`` is the batch width.
    quarantine_factory:
        Zero-argument callable producing a fresh
        :class:`DynamicQuarantine` (telescope + detector + response);
        called once per replica, plus once at construction to capture
        the deployment plan.  Each replica's control loop runs
        independently — detection tick and deployment are per replica.
    writeback:
        ``"full"`` (default) writes host stamps, per-link stats and
        residual queues back onto the network before each harvest —
        the callback observes exactly what a solo run would have left
        behind.  ``"stats"`` restores only the aggregate packet
        counters (``network.stats``) and leaves hosts/links untouched:
        for harvests that read trajectories, totals, and the
        transport's arrays directly, it skips the per-replica
        whole-topology writeback walk entirely.

    The tick loop interleaves replicas: every live replica executes the
    standard five-phase tick (via its simulation's own bound phase
    methods) before any replica sees the next tick.  Replicas stop
    individually under the solo stop condition and are harvested —
    network writeback plus a caller callback — as they finish; the
    network's mutable result state (stats, link stats, queues) is reset
    between harvests so each callback observes exactly what a solo run
    of that replica would have left behind.
    """

    def __init__(
        self,
        network: Network,
        worm: WormStrategy,
        *,
        scan_rate: float,
        seeds: Sequence[int],
        initial_infections: int = 1,
        immunization: ImmunizationPolicy | None = None,
        lan_delivery: bool = False,
        quarantine_factory: Callable[[], DynamicQuarantine] | None = None,
        writeback: str = "full",
    ) -> None:
        if not seeds:
            raise ValueError("seeds must be non-empty")
        if writeback not in ("full", "stats"):
            raise ValueError(
                f"writeback must be 'full' or 'stats', got {writeback!r}"
            )
        self.network = network
        self.replicas = len(seeds)
        self._writeback = writeback
        self._plan: DeploymentPlan | None = None
        if quarantine_factory is not None:
            probe = quarantine_factory()
            self._plan = capture_deployment_plan(network, probe.response)
        # Layout after the plan capture's undo: it must template the
        # pre-deploy (static defenses only) rate-limit state.
        self.layout = TransportLayout(network)
        self.hosts = HostArrays(network, replicas=self.replicas)
        if self._plan is not None and self._plan.throttles:
            self.hosts.register_latent_throttles(self._plan.throttles)
        self.hosts.shared_refill = True
        plan = self._plan
        self.sims: list[FastWormSimulation] = []
        for replica, seed in enumerate(seeds):
            self.hosts.set_active(replica)
            quarantine = None
            if quarantine_factory is not None:
                quarantine = quarantine_factory()
                # The replica replays the captured plan itself; the
                # response just reports what "deployed".
                quarantine.response = lambda _net: plan.descriptor
            self.sims.append(
                FastWormSimulation(
                    network,
                    worm,
                    scan_rate=scan_rate,
                    initial_infections=initial_infections,
                    immunization=immunization,
                    lan_delivery=lan_delivery,
                    quarantine=quarantine,
                    seed=seed,
                    scan_mode="batch",
                    hosts=self.hosts,
                    transport=FastTransport(network, layout=self.layout),
                )
            )
        stats = network.stats
        self._base_injected = stats.packets_injected
        self._base_delivered = stats.packets_delivered
        self._base_dropped = stats.packets_dropped
        self._touched: list[int] = []
        self._ran = False

    def _reset_network(self) -> None:
        """Clear the previous harvest's writeback off the network."""
        stats = self.network.stats
        stats.packets_injected = self._base_injected
        stats.packets_delivered = self._base_delivered
        stats.packets_dropped = self._base_dropped
        if self._touched:
            links = self.network.links
            keys = self.layout.keys
            for i in self._touched:
                link = links[keys[i]]
                link.stats = LinkStats()
                # Most touched links only carried counters; rebuilding
                # an empty deque per link per replica adds up.
                if link._queue:
                    link.load_queue([])
            self._touched = []

    def _finalize(
        self,
        replica: int,
        sim: FastWormSimulation,
        harvest: Callable[[int, FastWormSimulation], None],
    ) -> None:
        if self._writeback == "stats":
            # Aggregate counters only: same values ``transport.
            # writeback`` would leave on ``network.stats``, without the
            # per-link/per-host walk.  Hosts and links keep their
            # initial state.
            transport = sim.transport
            stats = self.network.stats
            stats.packets_injected = (
                self._base_injected + transport.injected
            )
            stats.packets_delivered = (
                self._base_delivered + transport.delivered
            )
            stats.packets_dropped = (
                self._base_dropped + transport.dropped_total
            )
            harvest(replica, sim)
            return
        self._reset_network()
        sim.hosts.writeback(replica)
        self._touched = sim.transport.writeback(sim._final_tick)
        harvest(replica, sim)

    def run(
        self,
        max_ticks: int,
        harvest: Callable[[int, FastWormSimulation], None],
    ) -> None:
        """Advance every replica to completion, harvesting each.

        ``harvest(replica, sim)`` runs once per replica, immediately
        after that replica's state is written back onto the network;
        read trajectories, host state, and network statistics inside
        the callback — the next replica's harvest overwrites them.
        """
        if max_ticks <= 0:
            raise ValueError(
                f"max_ticks must be positive, got {max_ticks}"
            )
        if self._ran:
            raise RuntimeError(
                "replica batch already ran; build a fresh one"
            )
        self._ran = True
        hosts = self.hosts
        network = self.network
        plan = self._plan
        live = list(enumerate(self.sims))
        last_tick = max_ticks - 1
        for tick in range(max_ticks):
            # One cross-replica token refill per tick (per-replica
            # refills are no-ops under shared_refill); each bucket
            # column still refills exactly once before consumption.
            hosts.refill_all_throttles()
            still_running: list[tuple[int, FastWormSimulation]] = []
            for replica, sim in live:
                hosts.set_active(replica)
                sim._scan_phase_batch(tick)
                sim._transmit_phase(tick)
                sim._deliver_phase(tick)
                # The immunize phase, replica-owned: the solo path's
                # sync_throttles()/sync_limits() re-reads the network,
                # which stays undeployed here — replay the plan onto
                # this replica's private state instead.
                quarantine = sim.quarantine
                if quarantine is not None and quarantine.step(
                    tick, network
                ):
                    hosts.activate_latent(replica)
                    if plan is not None:
                        sim.transport.apply_limit_plan(
                            plan.link_idx,
                            plan.link_rates,
                            plan.link_bursts,
                            plan.budgets,
                        )
                if sim.immunization is not None:
                    sim.immunization.step(
                        tick, sim.recorder.ever_infected, hosts
                    )
                sim._observe_phase(tick)
                if sim._epidemic_over(tick) or tick == last_tick:
                    self._finalize(replica, sim, harvest)
                else:
                    still_running.append((replica, sim))
            live = still_running
            if not live:
                break
