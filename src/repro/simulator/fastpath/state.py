"""Struct-of-arrays host state for the fast engine.

One :class:`HostArrays` replaces the per-host :class:`~repro.simulator.
nodes.Host` object walk: epidemic status is a flat list indexed by node
id, compartment totals are running counters (O(1) reads for the observe
phase and stop conditions), the infected population is a maintained
sorted index (O(infected) scan phase), and Williamson throttle tokens
live in numpy arrays refilled in one vectorized step per tick.

The arrays are synced *from* the network's host objects at construction
(and re-synced when a dynamic quarantine deploys filters mid-run), and
written *back* at the end of the run, so everything downstream that
inspects hosts — ``count_states``, ``infected_at`` curves, reports —
sees exactly what a reference run would have left behind.
"""

from __future__ import annotations

import numpy as np

from ..network import Network
from ..nodes import HostState

__all__ = ["HostArrays", "SUSCEPTIBLE", "INFECTED", "IMMUNE", "UNTRACKED"]

#: Status codes (list-of-int encoding of :class:`HostState`).
UNTRACKED = -1
SUSCEPTIBLE = 0
INFECTED = 1
IMMUNE = 2

_STATE_OF = {
    SUSCEPTIBLE: HostState.SUSCEPTIBLE,
    INFECTED: HostState.INFECTED,
    IMMUNE: HostState.IMMUNE,
}
_CODE_OF = {state: code for code, state in _STATE_OF.items()}


class HostArrays:
    """Flat-array mirror of a network's infectable host population."""

    def __init__(self, network: Network) -> None:
        self.network = network
        n = network.topology.num_nodes
        #: status[node] — UNTRACKED for transit nodes, S/I/R for hosts.
        self.status: list[int] = [UNTRACKED] * n
        self.infected_at: list[int | None] = [None] * n
        self.immunized_at: list[int | None] = [None] * n
        self.susceptible = 0
        self.infected = 0
        self.immune = 0
        for node in network.infectable:
            host = network.hosts[node]
            code = _CODE_OF[host.state]
            self.status[node] = code
            self.infected_at[node] = host.infected_at
            self.immunized_at[node] = host.immunized_at
            if code == SUSCEPTIBLE:
                self.susceptible += 1
            elif code == INFECTED:
                self.infected += 1
            else:
                self.immune += 1
        self._infected_set: set[int] = {
            node for node in network.infectable
            if self.status[node] == INFECTED
        }
        self._sorted_infected: list[int] = sorted(self._infected_set)
        self._sorted_dirty = False
        # Throttle mirror (see sync_throttles).
        self.throttle_pos: dict[int, int] = {}
        self._throttle_buckets: list = []
        self._t_rate = np.zeros(0)
        self._t_burst = np.zeros(0)
        self.throttle_tokens = np.zeros(0)
        self.sync_throttles()

    # ------------------------------------------------------------------
    # Epidemic state
    # ------------------------------------------------------------------

    def infected_sorted(self) -> list[int]:
        """Currently infected node ids, sorted (the scan-phase index)."""
        if self._sorted_dirty:
            self._sorted_infected = sorted(self._infected_set)
            self._sorted_dirty = False
        return self._sorted_infected

    def infect(self, node: int, tick: int) -> bool:
        """S → I transition; mirrors :meth:`Host.infect` exactly."""
        if self.status[node] != SUSCEPTIBLE:
            return False
        self.status[node] = INFECTED
        self.infected_at[node] = tick
        self.susceptible -= 1
        self.infected += 1
        self._infected_set.add(node)
        self._sorted_dirty = True
        return True

    def immunize(self, node: int, tick: int) -> bool:
        """S/I → R transition; mirrors :meth:`Host.immunize` exactly."""
        code = self.status[node]
        if code == IMMUNE or code == UNTRACKED:
            return False
        if code == INFECTED:
            self.infected -= 1
            self._infected_set.discard(node)
            self._sorted_dirty = True
        else:
            self.susceptible -= 1
        self.immune += 1
        self.status[node] = IMMUNE
        self.immunized_at[node] = tick
        return True

    # ------------------------------------------------------------------
    # Scan throttles (Williamson host filters)
    # ------------------------------------------------------------------

    def sync_throttles(self) -> None:
        """Mirror every host's scan-throttle bucket into flat arrays.

        Called at construction and again when a mid-run quarantine
        response installs new filters.  A bucket whose object identity is
        unchanged keeps the token balance the fast engine accrued for it
        (the network-side object is never updated mid-run); new buckets
        adopt their own (freshly zero) token count.
        """
        previous = {
            id(bucket): self.throttle_tokens[pos]
            for bucket, pos in zip(
                self._throttle_buckets, range(len(self._throttle_buckets))
            )
        }
        nodes: list[int] = []
        buckets: list = []
        for node in self.network.infectable:
            bucket = self.network.hosts[node].scan_throttle
            if bucket is not None:
                nodes.append(node)
                buckets.append(bucket)
        self.throttle_pos = {node: pos for pos, node in enumerate(nodes)}
        #: Vectorized twin of ``throttle_pos``: position per node, -1 for
        #: unthrottled nodes (batch scan path).
        self.throttle_pos_arr = np.full(
            self.network.topology.num_nodes, -1, dtype=np.int64
        )
        if nodes:
            self.throttle_pos_arr[nodes] = np.arange(len(nodes))
        self._throttle_buckets = buckets
        self._t_rate = np.array([b.rate for b in buckets], dtype=float)
        self._t_burst = np.array([b.burst for b in buckets], dtype=float)
        self.throttle_tokens = np.array(
            [previous.get(id(b), b.tokens) for b in buckets], dtype=float
        )

    def refill_throttles(self) -> None:
        """One tick of token accrual for every throttled host.

        Vectorized ``min(tokens + rate, burst)`` — IEEE-identical to the
        reference engine's per-host :meth:`TokenBucket.refill` calls.
        """
        if self._throttle_buckets:
            np.minimum(
                self.throttle_tokens + self._t_rate,
                self._t_burst,
                out=self.throttle_tokens,
            )

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------

    def writeback(self) -> None:
        """Copy the final array state back onto the network's hosts."""
        hosts = self.network.hosts
        for node, host in hosts.items():
            host.state = _STATE_OF[self.status[node]]
            host.infected_at = self.infected_at[node]
            host.immunized_at = self.immunized_at[node]
