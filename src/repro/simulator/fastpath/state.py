"""Struct-of-arrays host state for the fast engine.

One :class:`HostArrays` replaces the per-host :class:`~repro.simulator.
nodes.Host` object walk: epidemic status is a 2-D ``(replica, host)``
numpy array, compartment totals are running counters (O(1) reads for the
observe phase and stop conditions), the infected population is a
maintained sorted index (O(infected) scan phase), and Williamson
throttle tokens live in numpy arrays refilled in one vectorized step per
tick.

The replica axis is the vectorized-ensemble hook: ``replicas`` seeded
runs of one scenario share a single state block, each replica owning one
row of every array plus its own counters and infected index.  Exactly
one replica is *active* at a time (:meth:`set_active`); the scalar
mutation API (``infect``/``immunize``/``infected_sorted``) and the
row views (``status_row``, ``throttle_tokens``) always address the
active replica, so the per-replica engine code is byte-for-byte the
single-run code.  ``replicas=1`` (the default) collapses to the old
single-run layout with zero extra indirection.

The arrays are synced *from* the network's host objects at construction
(and re-synced when a dynamic quarantine deploys filters mid-run), and
written *back* at the end of the run, so everything downstream that
inspects hosts — ``count_states``, ``infected_at`` curves, reports —
sees exactly what a reference run would have left behind.
"""

from __future__ import annotations

import numpy as np

from ..network import Network
from ..nodes import HostState

__all__ = ["HostArrays", "SUSCEPTIBLE", "INFECTED", "IMMUNE", "UNTRACKED"]

#: Status codes (array encoding of :class:`HostState`).
UNTRACKED = -1
SUSCEPTIBLE = 0
INFECTED = 1
IMMUNE = 2

#: Sentinel for "never" in the infected_at/immunized_at stamp arrays
#: (the object model uses ``None``; writeback converts).
NEVER = -1

_STATE_OF = {
    SUSCEPTIBLE: HostState.SUSCEPTIBLE,
    INFECTED: HostState.INFECTED,
    IMMUNE: HostState.IMMUNE,
}
_CODE_OF = {state: code for code, state in _STATE_OF.items()}


class HostArrays:
    """Replica-batched flat-array mirror of a network's host population."""

    def __init__(self, network: Network, replicas: int = 1) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.network = network
        self.replicas = replicas
        n = network.topology.num_nodes
        #: status[replica, node] — UNTRACKED for transit nodes, S/I/R
        #: for hosts.  Use :attr:`status_row` for the active replica.
        status0 = np.full(n, UNTRACKED, dtype=np.int8)
        infected0 = np.full(n, NEVER, dtype=np.int64)
        immunized0 = np.full(n, NEVER, dtype=np.int64)
        susceptible = infected = immune = 0
        for node in network.infectable:
            host = network.hosts[node]
            code = _CODE_OF[host.state]
            status0[node] = code
            if host.infected_at is not None:
                infected0[node] = host.infected_at
            if host.immunized_at is not None:
                immunized0[node] = host.immunized_at
            if code == SUSCEPTIBLE:
                susceptible += 1
            elif code == INFECTED:
                infected += 1
            else:
                immune += 1
        self.status = np.tile(status0, (replicas, 1))
        self.infected_at = np.tile(infected0, (replicas, 1))
        self.immunized_at = np.tile(immunized0, (replicas, 1))
        base_infected = {
            node for node in network.infectable
            if status0[node] == INFECTED
        }
        # Per-replica counters and infected indices; the active replica's
        # live in the plain attributes below and are saved/restored by
        # set_active.
        self._susceptible_r = np.full(replicas, susceptible, dtype=np.int64)
        self._infected_r = np.full(replicas, infected, dtype=np.int64)
        self._immune_r = np.full(replicas, immune, dtype=np.int64)
        self._infected_sets: list[set[int]] = [
            set(base_infected) for _ in range(replicas)
        ]
        self._sorted_lists: list[list[int]] = [
            sorted(base_infected) for _ in range(replicas)
        ]
        self._dirty_flags: list[bool] = [False] * replicas
        self._active = 0
        self.susceptible = susceptible
        self.infected = infected
        self.immune = immune
        self._infected_set: set[int] = self._infected_sets[0]
        self._sorted_infected: list[int] = self._sorted_lists[0]
        self._sorted_dirty = False
        self._row = self.status[0]
        self._inf_row = self.infected_at[0]
        self._imm_row = self.immunized_at[0]
        #: When True, the per-replica :meth:`refill_throttles` is a
        #: no-op and the owner calls :meth:`refill_all_throttles` once
        #: per tick instead (the replica engine's cross-replica refill).
        self.shared_refill = False
        # Throttle mirror (see sync_throttles).
        self.throttle_pos: dict[int, int] = {}
        self._throttle_buckets: list = []
        self._t_rate = np.zeros((replicas, 0))
        self._t_burst = np.zeros((replicas, 0))
        self._t_tokens = np.zeros((replicas, 0))
        self._t_active = np.zeros((replicas, 0), dtype=bool)
        self._latent_cols = np.zeros(0, dtype=np.int64)
        self._latent_rate = np.zeros(0)
        self._latent_burst = np.zeros(0)
        self.sync_throttles()

    # ------------------------------------------------------------------
    # Replica cursor
    # ------------------------------------------------------------------

    @property
    def active_replica(self) -> int:
        """Index of the replica the scalar API currently addresses."""
        return self._active

    @property
    def status_row(self) -> np.ndarray:
        """The active replica's status row (length ``num_nodes``)."""
        return self._row

    def set_active(self, replica: int) -> None:
        """Point the scalar API and row views at ``replica``."""
        if replica == self._active:
            return
        if not 0 <= replica < self.replicas:
            raise IndexError(
                f"replica must be in [0, {self.replicas}), got {replica}"
            )
        self._save_active()
        self._active = replica
        self._load_active()

    def _save_active(self) -> None:
        a = self._active
        self._susceptible_r[a] = self.susceptible
        self._infected_r[a] = self.infected
        self._immune_r[a] = self.immune
        self._infected_sets[a] = self._infected_set
        self._sorted_lists[a] = self._sorted_infected
        self._dirty_flags[a] = self._sorted_dirty

    def _load_active(self) -> None:
        r = self._active
        self.susceptible = int(self._susceptible_r[r])
        self.infected = int(self._infected_r[r])
        self.immune = int(self._immune_r[r])
        self._infected_set = self._infected_sets[r]
        self._sorted_infected = self._sorted_lists[r]
        self._sorted_dirty = self._dirty_flags[r]
        self._row = self.status[r]
        self._inf_row = self.infected_at[r]
        self._imm_row = self.immunized_at[r]
        self._load_throttle_views()

    def _load_throttle_views(self) -> None:
        r = self._active
        self.throttle_tokens = self._t_tokens[r]
        self.throttle_active = self._t_active[r]

    # ------------------------------------------------------------------
    # Epidemic state (active replica)
    # ------------------------------------------------------------------

    def infected_sorted(self) -> list[int]:
        """Currently infected node ids, sorted (the scan-phase index)."""
        if self._sorted_dirty:
            self._sorted_infected = sorted(self._infected_set)
            self._sorted_dirty = False
        return self._sorted_infected

    def infect(self, node: int, tick: int) -> bool:
        """S → I transition; mirrors :meth:`Host.infect` exactly."""
        if self._row[node] != SUSCEPTIBLE:
            return False
        self._row[node] = INFECTED
        self._inf_row[node] = tick
        self.susceptible -= 1
        self.infected += 1
        self._infected_set.add(node)
        self._sorted_dirty = True
        return True

    def immunize(self, node: int, tick: int) -> bool:
        """S/I → R transition; mirrors :meth:`Host.immunize` exactly."""
        code = self._row[node]
        if code == IMMUNE or code == UNTRACKED:
            return False
        if code == INFECTED:
            self.infected -= 1
            self._infected_set.discard(node)
            self._sorted_dirty = True
        else:
            self.susceptible -= 1
        self.immune += 1
        self._row[node] = IMMUNE
        self._imm_row[node] = tick
        return True

    def immunize_many(self, nodes: np.ndarray, tick: int) -> int:
        """Vectorized :meth:`immunize` over an array of host node ids.

        Callers pass infectable nodes; already-immune entries are
        skipped exactly as the scalar path would skip them.
        """
        if nodes.size == 0:
            return 0
        row = self._row
        codes = row[nodes]
        actionable = codes != IMMUNE
        if not actionable.all():
            nodes = nodes[actionable]
            codes = codes[actionable]
            if nodes.size == 0:
                return 0
        was_infected = codes == INFECTED
        newly_immune = int(nodes.size)
        from_infected = int(was_infected.sum())
        row[nodes] = IMMUNE
        self._imm_row[nodes] = tick
        self.infected -= from_infected
        self.susceptible -= newly_immune - from_infected
        self.immune += newly_immune
        if from_infected:
            infected_set = self._infected_set
            for node in nodes[was_infected].tolist():
                infected_set.discard(node)
            self._sorted_dirty = True
        return newly_immune

    # ------------------------------------------------------------------
    # Scan throttles (Williamson host filters)
    # ------------------------------------------------------------------

    def sync_throttles(self) -> None:
        """Mirror every host's scan-throttle bucket into flat arrays.

        Called at construction and again when a mid-run quarantine
        response installs new filters.  A bucket whose object identity is
        unchanged keeps the token balance the fast engine accrued for it
        (the network-side object is never updated mid-run); new buckets
        adopt their own (freshly zero) token count.  Token balances are
        per replica: each existing bucket's whole token *column* carries
        over.
        """
        previous = {
            id(bucket): self._t_tokens[:, pos].copy()
            for pos, bucket in enumerate(self._throttle_buckets)
            if bucket is not None
        }
        replicas = self.replicas
        nodes: list[int] = []
        buckets: list = []
        for node in self.network.infectable:
            bucket = self.network.hosts[node].scan_throttle
            if bucket is not None:
                nodes.append(node)
                buckets.append(bucket)
        self.throttle_pos = {node: pos for pos, node in enumerate(nodes)}
        #: Vectorized twin of ``throttle_pos``: position per node, -1 for
        #: unthrottled nodes (batch scan path).
        self.throttle_pos_arr = np.full(
            self.network.topology.num_nodes, -1, dtype=np.int64
        )
        if nodes:
            self.throttle_pos_arr[nodes] = np.arange(len(nodes))
        self._throttle_buckets = buckets
        count = len(buckets)
        self._t_rate = np.tile(
            np.array([b.rate for b in buckets], dtype=float), (replicas, 1)
        )
        self._t_burst = np.tile(
            np.array([b.burst for b in buckets], dtype=float), (replicas, 1)
        )
        self._t_tokens = np.empty((replicas, count))
        for pos, bucket in enumerate(buckets):
            column = previous.get(id(bucket))
            self._t_tokens[:, pos] = (
                column if column is not None else bucket.tokens
            )
        self._t_active = np.ones((replicas, count), dtype=bool)
        self._latent_cols = np.zeros(0, dtype=np.int64)
        self._latent_rate = np.zeros(0)
        self._latent_burst = np.zeros(0)
        self._load_throttle_views()

    def register_latent_throttles(
        self, entries: list[tuple[int, float, float]]
    ) -> None:
        """Pre-allocate throttle columns a quarantine plan *may* deploy.

        ``entries`` is ``[(node, rate, burst), ...]`` — the host filters
        one captured deployment of the quarantine response would
        install.  Columns for nodes without an existing bucket start
        inactive (no refill, no clamping) so undeployed replicas behave
        as unthrottled; :meth:`activate_latent` flips one replica's
        columns live with fresh-bucket semantics (zero tokens, plan
        rate/burst), exactly what a real deploy plus ``sync_throttles``
        would produce.
        """
        new_nodes = [
            node for node, _, _ in entries if node not in self.throttle_pos
        ]
        if new_nodes:
            extra = len(new_nodes)
            replicas = self.replicas
            self._t_rate = np.concatenate(
                [self._t_rate, np.zeros((replicas, extra))], axis=1
            )
            self._t_burst = np.concatenate(
                [self._t_burst, np.zeros((replicas, extra))], axis=1
            )
            self._t_tokens = np.concatenate(
                [self._t_tokens, np.zeros((replicas, extra))], axis=1
            )
            self._t_active = np.concatenate(
                [self._t_active, np.zeros((replicas, extra), dtype=bool)],
                axis=1,
            )
            for node in new_nodes:
                pos = len(self._throttle_buckets)
                self._throttle_buckets.append(None)
                self.throttle_pos[node] = pos
                self.throttle_pos_arr[node] = pos
        self._latent_cols = np.array(
            [self.throttle_pos[node] for node, _, _ in entries],
            dtype=np.int64,
        )
        self._latent_rate = np.array([rate for _, rate, _ in entries])
        self._latent_burst = np.array([burst for _, _, burst in entries])
        self._load_throttle_views()

    def activate_latent(self, replica: int) -> None:
        """Deploy the registered latent throttles on one replica's row."""
        cols = self._latent_cols
        if cols.size == 0:
            return
        self._t_active[replica, cols] = True
        self._t_rate[replica, cols] = self._latent_rate
        self._t_burst[replica, cols] = self._latent_burst
        self._t_tokens[replica, cols] = 0.0

    def refill_throttles(self) -> None:
        """One tick of token accrual for the active replica's throttles.

        Vectorized ``min(tokens + rate, burst)`` — IEEE-identical to the
        reference engine's per-host :meth:`TokenBucket.refill` calls.
        No-op under ``shared_refill`` (the replica engine refills every
        row at once via :meth:`refill_all_throttles`).
        """
        if self.shared_refill:
            return
        if self._t_rate.shape[1]:
            r = self._active
            np.minimum(
                self._t_tokens[r] + self._t_rate[r],
                self._t_burst[r],
                out=self._t_tokens[r],
            )

    def refill_all_throttles(self) -> None:
        """One tick of token accrual for *every* replica's throttles.

        A single ``(replicas, throttles)`` elementwise min per tick;
        inactive latent columns carry zero rate and burst, so they stay
        at zero tokens until :meth:`activate_latent`.
        """
        if self._t_rate.shape[1]:
            np.minimum(
                self._t_tokens + self._t_rate,
                self._t_burst,
                out=self._t_tokens,
            )

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------

    def writeback(self) -> None:
        """Copy the active replica's final state onto the network's hosts.

        Every host is written unconditionally — including runs whose
        infections all died at tick 0 and never populated the active
        infected index — so stamp arrays round-trip exactly as a
        reference run would have left them (``NEVER`` becomes ``None``).
        """
        row = self._row
        inf_row = self._inf_row
        imm_row = self._imm_row
        state_of = _STATE_OF
        for node, host in self.network.hosts.items():
            host.state = state_of[int(row[node])]
            stamp = inf_row[node]
            host.infected_at = int(stamp) if stamp >= 0 else None
            stamp = imm_row[node]
            host.immunized_at = int(stamp) if stamp >= 0 else None
