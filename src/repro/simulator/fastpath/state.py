"""Struct-of-arrays host state for the fast engine.

One :class:`HostArrays` replaces the per-host :class:`~repro.simulator.
nodes.Host` object walk: epidemic status is a 2-D ``(replica, host)``
numpy array, compartment totals are running counters (O(1) reads for the
observe phase and stop conditions), the infected population is a
maintained sorted index (O(infected) scan phase), and Williamson
throttle tokens live in numpy arrays refilled in one vectorized step per
tick.

The replica axis is the vectorized-ensemble hook: ``replicas`` seeded
runs of one scenario share a single state block, each replica owning one
row of every array plus its own counters and infected index.  Exactly
one replica is *active* at a time (:meth:`set_active`); the scalar
mutation API (``infect``/``immunize``/``infected_sorted``) and the
row views (``status_row``, ``throttle_tokens``) always address the
active replica, so the per-replica engine code is byte-for-byte the
single-run code.  ``replicas=1`` (the default) collapses to the old
single-run layout with zero extra indirection.

The arrays are synced *from* the network's host objects at construction
(and re-synced when a dynamic quarantine deploys filters mid-run), and
written *back* at the end of the run, so everything downstream that
inspects hosts — ``count_states``, ``infected_at`` curves, reports —
sees exactly what a reference run would have left behind.
"""

from __future__ import annotations

import numpy as np

from ..network import Network
from ..nodes import HostState

__all__ = ["HostArrays", "SUSCEPTIBLE", "INFECTED", "IMMUNE", "UNTRACKED"]

#: Status codes (array encoding of :class:`HostState`).
UNTRACKED = -1
SUSCEPTIBLE = 0
INFECTED = 1
IMMUNE = 2

#: Sentinel for "never" in the infected_at/immunized_at stamp arrays
#: (the object model uses ``None``; writeback converts).
NEVER = -1

_STATE_OF = {
    SUSCEPTIBLE: HostState.SUSCEPTIBLE,
    INFECTED: HostState.INFECTED,
    IMMUNE: HostState.IMMUNE,
}
_CODE_OF = {state: code for code, state in _STATE_OF.items()}


class HostArrays:
    """Replica-batched flat-array mirror of a network's host population."""

    def __init__(self, network: Network, replicas: int = 1) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.network = network
        self.replicas = replicas
        n = network.topology.num_nodes
        #: status[replica, node] — UNTRACKED for transit nodes, S/I/R
        #: for hosts.  Use :attr:`status_row` for the active replica.
        status0 = np.full(n, UNTRACKED, dtype=np.int8)
        infected0 = np.full(n, NEVER, dtype=np.int64)
        immunized0 = np.full(n, NEVER, dtype=np.int64)
        susceptible = infected = immune = 0
        for node in network.infectable:
            host = network.hosts[node]
            code = _CODE_OF[host.state]
            status0[node] = code
            if host.infected_at is not None:
                infected0[node] = host.infected_at
            if host.immunized_at is not None:
                immunized0[node] = host.immunized_at
            if code == SUSCEPTIBLE:
                susceptible += 1
            elif code == INFECTED:
                infected += 1
            else:
                immune += 1
        self.status = np.tile(status0, (replicas, 1))
        self.infected_at = np.tile(infected0, (replicas, 1))
        self.immunized_at = np.tile(immunized0, (replicas, 1))
        # Mirror of what the network's Host objects currently hold, so
        # writeback only touches hosts that differ.  Valid because
        # nothing mutates host state/stamps between construction and
        # writeback except writeback itself (fast engines run entirely
        # on the arrays; defense deploys only attach buckets).
        self._net_status = status0
        self._net_inf = infected0
        self._net_imm = immunized0
        base_infected = {
            node for node in network.infectable
            if status0[node] == INFECTED
        }
        # Per-replica counters and infected indices; the active replica's
        # live in the plain attributes below and are saved/restored by
        # set_active.
        self._susceptible_r = np.full(replicas, susceptible, dtype=np.int64)
        self._infected_r = np.full(replicas, infected, dtype=np.int64)
        self._immune_r = np.full(replicas, immune, dtype=np.int64)
        self._infected_sets: list[set[int]] = [
            set(base_infected) for _ in range(replicas)
        ]
        self._sorted_lists: list[list[int]] = [
            sorted(base_infected) for _ in range(replicas)
        ]
        self._dirty_flags: list[bool] = [False] * replicas
        self._active = 0
        self.susceptible = susceptible
        self.infected = infected
        self.immune = immune
        self._infected_set: set[int] = self._infected_sets[0]
        self._sorted_infected: list[int] = self._sorted_lists[0]
        self._sorted_dirty = False
        self._row = self.status[0]
        self._inf_row = self.infected_at[0]
        self._imm_row = self.immunized_at[0]
        #: When True, the per-replica :meth:`refill_throttles` is a
        #: no-op and the owner calls :meth:`refill_all_throttles` once
        #: per tick instead (the replica engine's cross-replica refill).
        self.shared_refill = False
        # Throttle mirror (see sync_throttles).
        self.throttle_pos: dict[int, int] = {}
        self._throttle_buckets: list = []
        self._t_rate = np.zeros((replicas, 0))
        self._t_burst = np.zeros((replicas, 0))
        self._t_tokens = np.zeros((replicas, 0))
        self._t_active = np.zeros((replicas, 0), dtype=bool)
        self._latent_cols = np.zeros(0, dtype=np.int64)
        self._latent_rate = np.zeros(0)
        self._latent_burst = np.zeros(0)
        self.sync_throttles()

    # ------------------------------------------------------------------
    # Replica cursor
    # ------------------------------------------------------------------

    @property
    def active_replica(self) -> int:
        """Index of the replica the scalar API currently addresses."""
        return self._active

    @property
    def status_row(self) -> np.ndarray:
        """The active replica's status row (length ``num_nodes``)."""
        return self._row

    def set_active(self, replica: int) -> None:
        """Point the scalar API and row views at ``replica``."""
        if replica == self._active:
            return
        if not 0 <= replica < self.replicas:
            raise IndexError(
                f"replica must be in [0, {self.replicas}), got {replica}"
            )
        self._save_active()
        self._active = replica
        self._load_active()

    def _save_active(self) -> None:
        a = self._active
        self._susceptible_r[a] = self.susceptible
        self._infected_r[a] = self.infected
        self._immune_r[a] = self.immune
        self._infected_sets[a] = self._infected_set
        self._sorted_lists[a] = self._sorted_infected
        self._dirty_flags[a] = self._sorted_dirty

    def _load_active(self) -> None:
        r = self._active
        self.susceptible = int(self._susceptible_r[r])
        self.infected = int(self._infected_r[r])
        self.immune = int(self._immune_r[r])
        self._infected_set = self._infected_sets[r]
        self._sorted_infected = self._sorted_lists[r]
        self._sorted_dirty = self._dirty_flags[r]
        self._row = self.status[r]
        self._inf_row = self.infected_at[r]
        self._imm_row = self.immunized_at[r]
        self._load_throttle_views()

    def _load_throttle_views(self) -> None:
        r = self._active
        self.throttle_tokens = self._t_tokens[r]
        self.throttle_active = self._t_active[r]

    # ------------------------------------------------------------------
    # Epidemic state (active replica)
    # ------------------------------------------------------------------

    def infected_sorted(self) -> list[int]:
        """Currently infected node ids, sorted (the scan-phase index)."""
        if self._sorted_dirty:
            self._sorted_infected = sorted(self._infected_set)
            self._sorted_dirty = False
        return self._sorted_infected

    def infect(self, node: int, tick: int) -> bool:
        """S → I transition; mirrors :meth:`Host.infect` exactly."""
        if self._row[node] != SUSCEPTIBLE:
            return False
        self._row[node] = INFECTED
        self._inf_row[node] = tick
        self.susceptible -= 1
        self.infected += 1
        self._infected_set.add(node)
        self._sorted_dirty = True
        return True

    def immunize(self, node: int, tick: int) -> bool:
        """S/I → R transition; mirrors :meth:`Host.immunize` exactly."""
        code = self._row[node]
        if code == IMMUNE or code == UNTRACKED:
            return False
        if code == INFECTED:
            self.infected -= 1
            self._infected_set.discard(node)
            self._sorted_dirty = True
        else:
            self.susceptible -= 1
        self.immune += 1
        self._row[node] = IMMUNE
        self._imm_row[node] = tick
        return True

    # ------------------------------------------------------------------
    # Grouped (cross-replica) mutation — the vectorized replica engine
    # ------------------------------------------------------------------
    #
    # The grouped API addresses ``(replica, node)`` pairs directly and
    # bypasses the active-replica cursor *and* the per-replica counters
    # and infected indices: the vectorized engine keeps its own (R,)
    # compartment counters and derives scan origins from the status
    # matrix, so maintaining the python-side sets per mutation would be
    # pure overhead.  Do not mix grouped mutation with the scalar API on
    # the same replica mid-run.

    def infect_grouped(
        self, reps: np.ndarray, nodes: np.ndarray, tick: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cross-replica S → I over ``(replica, node)`` arrival pairs.

        Duplicates collapse first (within one tick every duplicate
        arrival after the first is a no-op in the scalar engine, and
        the infection stamp is this tick either way), then susceptible
        pairs flip.  Returns the newly infected ``(reps, nodes)`` pairs,
        replica-ascending.
        """
        if reps.size == 0:
            return reps, nodes
        n = self.status.shape[1]
        keys = np.unique(reps * n + nodes)
        reps_u = keys // n
        nodes_u = keys - reps_u * n
        fresh = self.status[reps_u, nodes_u] == SUSCEPTIBLE
        if not fresh.all():
            reps_u = reps_u[fresh]
            nodes_u = nodes_u[fresh]
        if reps_u.size:
            self.status[reps_u, nodes_u] = INFECTED
            self.infected_at[reps_u, nodes_u] = tick
        return reps_u, nodes_u

    def immunize_grouped(
        self, reps: np.ndarray, nodes: np.ndarray, tick: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cross-replica S/I → R over unique ``(replica, node)`` pairs.

        Returns the pairs actually immunized plus a parallel
        ``was_infected`` mask so the caller can split its compartment
        counter updates exactly as :meth:`immunize_many` would.
        """
        if reps.size == 0:
            return reps, np.zeros(0, dtype=bool)
        codes = self.status[reps, nodes]
        actionable = (codes != IMMUNE) & (codes != UNTRACKED)
        if not actionable.all():
            reps = reps[actionable]
            nodes = nodes[actionable]
            codes = codes[actionable]
        if reps.size:
            self.status[reps, nodes] = IMMUNE
            self.immunized_at[reps, nodes] = tick
        return reps, codes == INFECTED

    def throttle_gate_grouped(
        self, reps: np.ndarray, nodes: np.ndarray, want: np.ndarray
    ) -> np.ndarray:
        """Cross-replica scan-throttle gating for unique (rep, node) pairs.

        The grouped twin of the batch scan path's token clamp: floor the
        pair's token balance (same ``1e-12`` epsilon), allow
        ``min(want, usable)``, debit the tokens, and return the allowed
        counts aligned with the inputs.  Inactive (latent) columns gate
        nothing, exactly like the per-replica path.
        """
        allowed = want.copy()
        if reps.size == 0 or not self.throttle_pos:
            return allowed
        pos = self.throttle_pos_arr[nodes]
        sel = np.flatnonzero(pos >= 0)
        if sel.size == 0:
            return allowed
        rr = reps[sel]
        pp = pos[sel]
        act = self._t_active[rr, pp]
        if not act.all():
            sel = sel[act]
            rr = rr[act]
            pp = pp[act]
        if sel.size == 0:
            return allowed
        tokens = self._t_tokens
        usable = np.floor(tokens[rr, pp] + 1e-12).astype(np.int64)
        np.maximum(usable, 0, out=usable)
        grant = np.minimum(want[sel], usable)
        tokens[rr, pp] -= grant
        allowed[sel] = grant
        return allowed

    def immunize_many(self, nodes: np.ndarray, tick: int) -> int:
        """Vectorized :meth:`immunize` over an array of host node ids.

        Callers pass infectable nodes; already-immune entries are
        skipped exactly as the scalar path would skip them.
        """
        if nodes.size == 0:
            return 0
        row = self._row
        codes = row[nodes]
        actionable = codes != IMMUNE
        if not actionable.all():
            nodes = nodes[actionable]
            codes = codes[actionable]
            if nodes.size == 0:
                return 0
        was_infected = codes == INFECTED
        newly_immune = int(nodes.size)
        from_infected = int(was_infected.sum())
        row[nodes] = IMMUNE
        self._imm_row[nodes] = tick
        self.infected -= from_infected
        self.susceptible -= newly_immune - from_infected
        self.immune += newly_immune
        if from_infected:
            infected_set = self._infected_set
            for node in nodes[was_infected].tolist():
                infected_set.discard(node)
            self._sorted_dirty = True
        return newly_immune

    # ------------------------------------------------------------------
    # Scan throttles (Williamson host filters)
    # ------------------------------------------------------------------

    def sync_throttles(self) -> None:
        """Mirror every host's scan-throttle bucket into flat arrays.

        Called at construction and again when a mid-run quarantine
        response installs new filters.  A bucket whose object identity is
        unchanged keeps the token balance the fast engine accrued for it
        (the network-side object is never updated mid-run); new buckets
        adopt their own (freshly zero) token count.  Token balances are
        per replica: each existing bucket's whole token *column* carries
        over.
        """
        previous = {
            id(bucket): self._t_tokens[:, pos].copy()
            for pos, bucket in enumerate(self._throttle_buckets)
            if bucket is not None
        }
        replicas = self.replicas
        nodes: list[int] = []
        buckets: list = []
        for node in self.network.infectable:
            bucket = self.network.hosts[node].scan_throttle
            if bucket is not None:
                nodes.append(node)
                buckets.append(bucket)
        self.throttle_pos = {node: pos for pos, node in enumerate(nodes)}
        #: Vectorized twin of ``throttle_pos``: position per node, -1 for
        #: unthrottled nodes (batch scan path).
        self.throttle_pos_arr = np.full(
            self.network.topology.num_nodes, -1, dtype=np.int64
        )
        if nodes:
            self.throttle_pos_arr[nodes] = np.arange(len(nodes))
        self._throttle_buckets = buckets
        count = len(buckets)
        self._t_rate = np.tile(
            np.array([b.rate for b in buckets], dtype=float), (replicas, 1)
        )
        self._t_burst = np.tile(
            np.array([b.burst for b in buckets], dtype=float), (replicas, 1)
        )
        self._t_tokens = np.empty((replicas, count))
        for pos, bucket in enumerate(buckets):
            column = previous.get(id(bucket))
            self._t_tokens[:, pos] = (
                column if column is not None else bucket.tokens
            )
        self._t_active = np.ones((replicas, count), dtype=bool)
        self._latent_cols = np.zeros(0, dtype=np.int64)
        self._latent_rate = np.zeros(0)
        self._latent_burst = np.zeros(0)
        self._load_throttle_views()

    def register_latent_throttles(
        self, entries: list[tuple[int, float, float]]
    ) -> None:
        """Pre-allocate throttle columns a quarantine plan *may* deploy.

        ``entries`` is ``[(node, rate, burst), ...]`` — the host filters
        one captured deployment of the quarantine response would
        install.  Columns for nodes without an existing bucket start
        inactive (no refill, no clamping) so undeployed replicas behave
        as unthrottled; :meth:`activate_latent` flips one replica's
        columns live with fresh-bucket semantics (zero tokens, plan
        rate/burst), exactly what a real deploy plus ``sync_throttles``
        would produce.
        """
        new_nodes = [
            node for node, _, _ in entries if node not in self.throttle_pos
        ]
        if new_nodes:
            extra = len(new_nodes)
            replicas = self.replicas
            self._t_rate = np.concatenate(
                [self._t_rate, np.zeros((replicas, extra))], axis=1
            )
            self._t_burst = np.concatenate(
                [self._t_burst, np.zeros((replicas, extra))], axis=1
            )
            self._t_tokens = np.concatenate(
                [self._t_tokens, np.zeros((replicas, extra))], axis=1
            )
            self._t_active = np.concatenate(
                [self._t_active, np.zeros((replicas, extra), dtype=bool)],
                axis=1,
            )
            for node in new_nodes:
                pos = len(self._throttle_buckets)
                self._throttle_buckets.append(None)
                self.throttle_pos[node] = pos
                self.throttle_pos_arr[node] = pos
        self._latent_cols = np.array(
            [self.throttle_pos[node] for node, _, _ in entries],
            dtype=np.int64,
        )
        self._latent_rate = np.array([rate for _, rate, _ in entries])
        self._latent_burst = np.array([burst for _, _, burst in entries])
        self._load_throttle_views()

    def activate_latent(self, replica: int) -> None:
        """Deploy the registered latent throttles on one replica's row."""
        cols = self._latent_cols
        if cols.size == 0:
            return
        self._t_active[replica, cols] = True
        self._t_rate[replica, cols] = self._latent_rate
        self._t_burst[replica, cols] = self._latent_burst
        self._t_tokens[replica, cols] = 0.0

    def refill_throttles(self) -> None:
        """One tick of token accrual for the active replica's throttles.

        Vectorized ``min(tokens + rate, burst)`` — IEEE-identical to the
        reference engine's per-host :meth:`TokenBucket.refill` calls.
        No-op under ``shared_refill`` (the replica engine refills every
        row at once via :meth:`refill_all_throttles`).
        """
        if self.shared_refill:
            return
        if self._t_rate.shape[1]:
            r = self._active
            np.minimum(
                self._t_tokens[r] + self._t_rate[r],
                self._t_burst[r],
                out=self._t_tokens[r],
            )

    def refill_all_throttles(self) -> None:
        """One tick of token accrual for *every* replica's throttles.

        A single ``(replicas, throttles)`` elementwise min per tick;
        inactive latent columns carry zero rate and burst, so they stay
        at zero tokens until :meth:`activate_latent`.
        """
        if self._t_rate.shape[1]:
            np.minimum(
                self._t_tokens + self._t_rate,
                self._t_burst,
                out=self._t_tokens,
            )

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------

    def writeback(self, replica: int | None = None) -> None:
        """Copy one replica's final state onto the network's hosts.

        ``replica`` defaults to the active replica; passing it
        explicitly addresses a row without moving the cursor (the
        vectorized engine never moves it).  Every host whose state or
        stamps differ from what the network currently holds is written
        — including runs whose infections all died at tick 0 and never
        populated the active infected index — so stamp arrays
        round-trip exactly as a reference run would have left them
        (``NEVER`` becomes ``None``).  The diff against the
        ``_net_*`` mirror makes harvesting a replica cost O(changed
        hosts), which is what lets a 1000-replica die-out ensemble
        finalize its mostly-untouched replicas cheaply.
        """
        if replica is None or replica == self._active:
            row = self._row
            inf_row = self._inf_row
            imm_row = self._imm_row
        else:
            row = self.status[replica]
            inf_row = self.infected_at[replica]
            imm_row = self.immunized_at[replica]
        net_status = self._net_status
        net_inf = self._net_inf
        net_imm = self._net_imm
        changed = np.flatnonzero(
            (row != net_status)
            | (inf_row != net_inf)
            | (imm_row != net_imm)
        )
        if changed.size == 0:
            return
        state_of = _STATE_OF
        hosts = self.network.hosts
        for node in changed.tolist():
            host = hosts[node]
            host.state = state_of[int(row[node])]
            stamp = inf_row[node]
            host.infected_at = int(stamp) if stamp >= 0 else None
            stamp = imm_row[node]
            host.immunized_at = int(stamp) if stamp >= 0 else None
        net_status[changed] = row[changed]
        net_inf[changed] = inf_row[changed]
        net_imm[changed] = imm_row[changed]
