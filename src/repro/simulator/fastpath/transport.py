"""Batched link transport for the fast engine.

Mirrors :meth:`Network.transmit_tick` over flat arrays:

* links are indexed in sorted-key order, so "process links in sorted key
  order" becomes "process indices ascending";
* queues hold bare destination node ids instead of
  :class:`~repro.simulator.packet.Packet` objects;
* non-empty links are tracked in two sets (unlimited / rate-limited) so
  a tick only touches links that can actually move packets;
* token buckets and forwarding budgets are plain floats updated with the
  same operation sequence (refill once per tick, one subtraction per
  packet, same 1e-12 epsilon), so rate-limit behavior is bit-identical.

Two transmit paths share this state: :meth:`transmit_tick` reproduces
the reference sweep exactly (packet for packet, counter for counter) and
backs the engine's RNG-mirroring mode; :meth:`transmit_tick_batch` moves
packet arrays in bulk waves for the aggregated-sampling mode.

Per-link counters are kept on two tracks — plain python lists updated by
the scalar paths and numpy vectors updated by the vectorized paths —
because each representation is an order of magnitude faster for its
access pattern.  Additive counters sum and peaks take the elementwise
max at writeback, which folds both tracks exactly.
"""

from __future__ import annotations

import gc
from collections import defaultdict, deque
from heapq import heappop, heappush
from itertools import chain

import numpy as np

from ..network import Network
from ..packet import Packet, PacketKind

__all__ = ["FastTransport", "TransportLayout"]


class TransportLayout:
    """The immutable, shareable half of a :class:`FastTransport`.

    Link ordering, routing tables, queue capacities, and the *initial*
    rate-limit/budget mirror are pure functions of the network as built
    (topology + static defense); every replica of a vectorized ensemble
    transports packets over the same network, so one layout serves all
    of them.  Mutable per-replica state (queues, counters, token
    balances) stays in :class:`FastTransport`, which copies the cheap
    arrays and references the expensive ones.

    Build the layout *after* static defenses are applied and *before*
    any dynamic deploy — the same point in time at which a solo
    ``FastTransport(network)`` would have built the identical state.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        n = network.topology.num_nodes
        self.n = n
        keys = sorted(network.links)
        self.keys = keys
        count = len(keys)
        self.link_dst = [v for _u, v in keys]
        #: (u * n + v) -> link index; int keys avoid tuple allocation in
        #: the forwarding hot loop.
        self.index_of = {u * n + v: i for i, (u, v) in enumerate(keys)}
        self.max_queue = [network.links[key].max_queue for key in keys]
        self.min_cap = min(self.max_queue, default=0)
        #: Next-hop rows, indexable as rows[destination][node] -> int.
        self.rows = [network.routing.next_hop_table(d) for d in range(n)]
        #: Whole next-hop matrix for vectorized gathers (batch path).
        self.parent = network.routing.parent_matrix
        #: ``key_array[i] == u * n + v`` for link i; ascending because
        #: the keys list is sorted, so searchsorted inverts index_of.
        self.key_array = np.fromiter(
            (u * n + v for u, v in keys), dtype=np.int64, count=count
        )
        self.link_dst_arr = np.fromiter(
            self.link_dst, dtype=np.int64, count=count
        )
        # Rate-limit template: the network's bucket/budget state at
        # layout time, which each transport copies instead of re-reading
        # the links (sync_limits semantics with no prior token state).
        buckets = [network.links[key].bucket for key in keys]
        self.link_buckets = buckets
        self.limited = [bucket is not None for bucket in buckets]
        self.limited_arr = np.array(self.limited, dtype=bool)
        self.l_rate = np.array(
            [b.rate if b is not None else 0.0 for b in buckets]
        )
        self.l_burst = np.array(
            [b.burst if b is not None else 0.0 for b in buckets]
        )
        self.l_tokens0 = np.array(
            [b.tokens if b is not None else 0.0 for b in buckets]
        )
        self.limited_idx = np.flatnonzero(self.limited_arr)
        self.budget_buckets = dict(network.forward_budgets)


class FastTransport:
    """Array-backed packet transport over a network's links.

    Pass ``layout`` to share one :class:`TransportLayout` across many
    transports (the replica engine); omit it for the classic single-run
    construction, which builds a private layout from the network.
    """

    def __init__(
        self, network: Network, layout: TransportLayout | None = None
    ) -> None:
        self.network = network
        if layout is None:
            layout = TransportLayout(network)
        self.layout = layout
        n = layout.n
        self.n = n
        keys = layout.keys
        self.keys = keys
        count = len(keys)
        self.link_dst = layout.link_dst
        self.index_of = layout.index_of
        #: Lazy queue map: only links that ever held a packet get a
        #: deque, so per-replica construction and writeback cost scale
        #: with traffic, not topology size.
        self.queues: defaultdict[int, deque[int]] = defaultdict(deque)
        self.max_queue = layout.max_queue
        self._min_cap = layout.min_cap
        #: Packets currently queued on *unlimited* links (batch paths
        #: only) — lets inject_batch prove no queue can overflow without
        #: measuring per-link depths.
        self.queued_u = 0
        # Per-link counters: scalar track (python lists) ...
        self.fwd_list = [0] * count
        self.drop_list = [0] * count
        self.enq_list = [0] * count
        self.peak_list = [0] * count
        self.req_list = [0] * count
        # ... and vectorized track (numpy), folded at writeback.
        self.fwd_vec = np.zeros(count, dtype=np.int64)
        self.enq_vec = np.zeros(count, dtype=np.int64)
        self.peak_vec = np.zeros(count, dtype=np.int64)
        # NetworkStats mirror: totals *since this transport started*;
        # trace emission adds the network's pre-existing base counts.
        self.injected = 0
        self.delivered = 0
        self.dropped_total = 0
        self.queued_total = 0
        #: Non-empty links, split by rate-limit status so the batch path
        #: can sweep unlimited links without filtering every tick.
        self.nonempty_u: set[int] = set()
        self.nonempty_l: set[int] = set()
        #: First-hop packets held out of the queues until this tick's
        #: bulk wave (batch mode only; see inject_batch).
        self._pending_li: list[np.ndarray] = []
        self._pending_dst: list[np.ndarray] = []
        #: Optional per-link count of packets the vectorized replica
        #: engine holds for this replica in its global waiter store
        #: (``None`` outside that engine).  Scalar enqueues add it to
        #: the real deque depth so drop-tail bounds and peak-depth
        #: tracking see the same queue the solo engine would.
        self.pending_depth: np.ndarray | None = None
        self.rows = layout.rows
        self._parent = layout.parent
        self.key_array = layout.key_array
        self.link_dst_arr = layout.link_dst_arr
        # Rate-limit state: the layout's template — exactly what
        # sync_limits would mirror from the network with no prior token
        # state (new buckets adopt their own token counts).  Everything
        # except the token balance is shared copy-on-write: the only
        # in-place mutators (apply_limit_plan) and wholesale rebuilders
        # (sync_limits) replace these attributes first, so a thousand
        # replicas sharing one template never alias a write.
        self._link_buckets = layout.link_buckets
        self.limited = layout.limited
        self.limited_arr = layout.limited_arr
        self.l_rate = layout.l_rate
        self.l_burst = layout.l_burst
        self.l_tokens = layout.l_tokens0.copy()
        self._limited_idx = layout.limited_idx
        self._budget_buckets: dict[int, object] = dict(layout.budget_buckets)
        self.budget_rate = {
            node: bucket.rate
            for node, bucket in self._budget_buckets.items()
        }
        self.budget_burst = {
            node: bucket.burst
            for node, bucket in self._budget_buckets.items()
        }
        self.budget_tokens = {
            node: bucket.tokens
            for node, bucket in self._budget_buckets.items()
        }

    # ------------------------------------------------------------------
    # Rate-limit configuration
    # ------------------------------------------------------------------

    def sync_limits(self) -> None:
        """Mirror link buckets and node forwarding budgets into arrays.

        Called at construction and after a mid-run quarantine deploy.
        Buckets whose object identity is unchanged keep the token balance
        this transport accrued (the network-side objects are not updated
        during a fast run); newly installed buckets adopt their own
        (freshly zero) token count.
        """
        old_tokens = {
            id(bucket): tokens
            for bucket, tokens in zip(self._link_buckets, self.l_tokens)
            if bucket is not None
        }
        network = self.network
        buckets = [network.links[key].bucket for key in self.keys]
        self._link_buckets = buckets
        self.limited = [bucket is not None for bucket in buckets]
        self.limited_arr = np.array(self.limited, dtype=bool)
        self.l_rate = np.array(
            [b.rate if b is not None else 0.0 for b in buckets]
        )
        self.l_burst = np.array(
            [b.burst if b is not None else 0.0 for b in buckets]
        )
        self.l_tokens = np.array(
            [
                old_tokens.get(id(b), b.tokens) if b is not None else 0.0
                for b in buckets
            ]
        )
        self._limited_idx = np.flatnonzero(self.limited_arr)
        # A deploy may have installed buckets on links that already hold
        # queued packets; re-bucket the non-empty sets to match.
        occupied = self.nonempty_u | self.nonempty_l
        self.nonempty_l = {li for li in occupied if self.limited[li]}
        self.nonempty_u = occupied - self.nonempty_l
        self.queued_u = sum(len(self.queues[li]) for li in self.nonempty_u)
        old_budget_tokens = {
            id(bucket): self.budget_tokens[node]
            for node, bucket in self._budget_buckets.items()
            if node in self.budget_tokens
        }
        self._budget_buckets = dict(network.forward_budgets)
        self.budget_rate = {}
        self.budget_burst = {}
        self.budget_tokens = {}
        for node, bucket in self._budget_buckets.items():
            self.budget_rate[node] = bucket.rate
            self.budget_burst[node] = bucket.burst
            self.budget_tokens[node] = old_budget_tokens.get(
                id(bucket), bucket.tokens
            )

    def apply_limit_plan(
        self,
        link_idx: np.ndarray,
        rates: np.ndarray,
        bursts: np.ndarray,
        budgets: dict[int, tuple[float, float]],
    ) -> None:
        """Install a captured quarantine deployment, network untouched.

        The replica engine records one real deploy of the quarantine
        response as a *plan* (link indices + rates, node budgets) and
        undoes it; each replica that triggers its own quarantine replays
        the plan here.  Semantically identical to deploying onto the
        network and calling :meth:`sync_limits`: fresh buckets start at
        zero tokens, links already holding packets are re-bucketed into
        the limited set.  (The ``_link_buckets``/``_budget_buckets``
        identity mirrors are *not* updated — they only serve
        ``sync_limits``'s token carry-over, which the plan path never
        invokes mid-run.)
        """
        if link_idx.size:
            # Un-share the copy-on-write rate-limit template before the
            # first in-place write (see __init__).
            layout = self.layout
            if self.limited is layout.limited:
                self.limited = list(layout.limited)
            if self.limited_arr is layout.limited_arr:
                self.limited_arr = layout.limited_arr.copy()
            if self.l_rate is layout.l_rate:
                self.l_rate = layout.l_rate.copy()
            if self.l_burst is layout.l_burst:
                self.l_burst = layout.l_burst.copy()
            limited = self.limited
            for li in link_idx.tolist():
                limited[li] = True
            self.limited_arr[link_idx] = True
            self.l_rate[link_idx] = rates
            self.l_burst[link_idx] = bursts
            self.l_tokens[link_idx] = 0.0
            self._limited_idx = np.flatnonzero(self.limited_arr)
            occupied = self.nonempty_u | self.nonempty_l
            self.nonempty_l = {li for li in occupied if limited[li]}
            self.nonempty_u = occupied - self.nonempty_l
            self.queued_u = sum(
                len(self.queues[li]) for li in self.nonempty_u
            )
        for node, (rate, burst) in budgets.items():
            self.budget_rate[node] = rate
            self.budget_burst[node] = burst
            self.budget_tokens[node] = 0.0

    def _refill_limited(self) -> None:
        """One tick of token accrual for every rate-limited link.

        Vectorized ``min(tokens + rate, burst)`` — IEEE-identical to
        refilling each bucket individually, and each bucket still
        refills exactly once per tick before its own consumption.
        """
        idx = self._limited_idx
        if idx.size:
            tokens = self.l_tokens
            tokens[idx] = np.minimum(
                tokens[idx] + self.l_rate[idx], self.l_burst[idx]
            )

    # ------------------------------------------------------------------
    # Exact packet movement (RNG-mirroring mode)
    # ------------------------------------------------------------------

    def inject(self, src: int, dst: int) -> None:
        """Enter a packet at ``src`` en route to ``dst`` (scan phase)."""
        self.injected += 1
        next_hop = self.rows[dst][src]
        li = self.index_of[src * self.n + next_hop]
        queue = self.queues[li]
        if len(queue) >= self.max_queue[li]:
            self.drop_list[li] += 1
            self.dropped_total += 1
            return
        queue.append(dst)
        self.enq_list[li] += 1
        depth = len(queue)
        if depth > self.peak_list[li]:
            self.peak_list[li] = depth
        self.queued_total += 1
        if depth == 1:
            (self.nonempty_l if self.limited[li] else self.nonempty_u).add(li)

    def transmit_tick(self) -> list[int]:
        """Advance every link one tick; returns arrived destination ids.

        Identical semantics to :meth:`Network.transmit_tick`: every
        bucket refills exactly once per tick (batched up front — each
        bucket's refill still precedes any consumption from it this
        tick), non-empty links drain in sorted order with same-tick
        multi-hop forwarding, and an exhausted forwarding budget pushes
        the blocked suffix back in FIFO order without refunding the link
        tokens already spent.
        """
        budget_tokens = self.budget_tokens
        for node in budget_tokens:
            budget_tokens[node] = min(
                budget_tokens[node] + self.budget_rate[node],
                self.budget_burst[node],
            )
        self._refill_limited()
        l_tokens = self.l_tokens
        queues = self.queues
        rows = self.rows
        index_of = self.index_of
        limited = self.limited
        nonempty_u = self.nonempty_u
        nonempty_l = self.nonempty_l
        fwd_list = self.fwd_list
        enq_list = self.enq_list
        peak_list = self.peak_list
        n = self.n
        arrived: list[int] = []
        heap = sorted(nonempty_u | nonempty_l)
        in_heap = set(heap)
        while heap:
            li = heappop(heap)
            queue = queues[li]
            if limited[li]:
                tokens = l_tokens[li]
                drained: list[int] = []
                while queue:
                    if not tokens + 1e-12 >= 1.0:
                        break
                    tokens -= 1.0
                    drained.append(queue.popleft())
                l_tokens[li] = tokens
            else:
                drained = list(queue)
                queue.clear()
            count = len(drained)
            fwd_list[li] += count
            self.queued_total -= count
            node = self.link_dst[li]
            has_budget = node in budget_tokens
            for index in range(count):
                dst = drained[index]
                if node == dst:
                    arrived.append(dst)
                    self.delivered += 1
                    continue
                if has_budget:
                    tokens = budget_tokens[node]
                    if tokens + 1e-12 >= 1.0:
                        budget_tokens[node] = tokens - 1.0
                    else:
                        blocked = drained[index:]
                        for back in reversed(blocked):
                            queue.appendleft(back)
                        backed = len(blocked)
                        fwd_list[li] -= backed
                        self.req_list[li] += backed
                        self.queued_total += backed
                        break
                next_hop = rows[dst][node]
                lj = index_of[node * n + next_hop]
                target_queue = queues[lj]
                if len(target_queue) >= self.max_queue[lj]:
                    self.drop_list[lj] += 1
                    self.dropped_total += 1
                    continue
                target_queue.append(dst)
                enq_list[lj] += 1
                depth = len(target_queue)
                if depth > peak_list[lj]:
                    peak_list[lj] = depth
                self.queued_total += 1
                if depth == 1:
                    (nonempty_l if limited[lj] else nonempty_u).add(lj)
                    if lj > li and lj not in in_heap:
                        heappush(heap, lj)
                        in_heap.add(lj)
            if not queue:
                (nonempty_l if limited[li] else nonempty_u).discard(li)
        return arrived

    # ------------------------------------------------------------------
    # Batched packet movement (aggregated-sampling mode)
    # ------------------------------------------------------------------
    #
    # The methods below move whole packet *arrays* per tick.  Totals
    # (NetworkStats, per-link forwarded/enqueued/dropped, queue depths
    # at tick end) match the exact path; what is relaxed is intra-tick
    # interleaving: same-tick multi-hop cascades run in breadth waves
    # rather than strict sorted-link order, so when several packets race
    # into one rate-cut queue in a single tick, *which* of them waits
    # can differ from the reference, and peak_queue does not track
    # transient same-tick occupancy (first-hop scan bursts and
    # pass-through) at exact per-packet depths — it records the batch
    # size instead.  Both effects are statistically invisible; the
    # differential suite checks them at distribution level.  Node
    # forwarding budgets are not batched — transmit_tick_batch falls
    # back to the exact path when any exist.

    def inject_batch(self, srcs: np.ndarray, dsts: np.ndarray) -> None:
        """Enter many packets at once (batch scan phase).

        Packets whose first-hop link is rate-limited (or bounded by a
        nearly full queue) join that queue for real; the rest — the vast
        majority, one thin stream per scanning host — are held out as
        arrays and merged straight into this tick's bulk wave, skipping
        a per-packet queue round-trip that the reference's sorted sweep
        would complete within the tick anyway.
        """
        count = srcs.size
        if count == 0:
            return
        self.injected += count
        next_hops = self._parent[dsts, srcs]
        li = np.searchsorted(self.key_array, srcs * self.n + next_hops)
        if self.budget_tokens:
            # Budget scenarios use the exact transmit path, which only
            # reads the real queues.
            self._enqueue_pairs(li, dsts)
            return
        lim = self.limited_arr[li]
        if lim.any():
            self._enqueue_pairs(li[lim], dsts[lim])
            keep = ~lim
            li = li[keep]
            dsts = dsts[keep]
            if li.size == 0:
                return
        uniq, counts = np.unique(li, return_counts=True)
        # Drop-tail guard: a link without room for its whole share gets
        # the per-packet treatment.  Rare — unlimited queues drain fully
        # every tick, so depth is nonzero only behind same-tick waiters;
        # when even queuing *everything everywhere* could not overflow
        # the smallest cap, skip measuring per-link depths.
        if self.queued_u + li.size > self._min_cap:
            queues = self.queues
            max_queue = self.max_queue
            tight = [
                link
                for link, incoming in zip(uniq.tolist(), counts.tolist())
                if len(queues[link]) + incoming > max_queue[link]
            ]
            if tight:
                mask = np.isin(li, np.asarray(tight, dtype=np.int64))
                self._enqueue_pairs(li[mask], dsts[mask])
                keep = ~mask
                li = li[keep]
                dsts = dsts[keep]
                if li.size == 0:
                    return
                uniq, counts = np.unique(li, return_counts=True)
        # Reference semantics: enqueued at inject, forwarded at this
        # tick's transmit; both are certain here, so credit them now.
        self.enq_vec[uniq] += counts
        self.fwd_vec[uniq] += counts
        self.peak_vec[uniq] = np.maximum(self.peak_vec[uniq], counts)
        self._pending_li.append(li)
        self._pending_dst.append(dsts)

    def _enqueue_pairs(self, li: np.ndarray, dsts: np.ndarray) -> None:
        """Append a batch of packets onto their links, drop-tail bounded.

        Scalar per-packet appends over python-list counters: these
        batches fan out over many links in groups of one or two packets,
        where per-group numpy slicing costs more than the work it saves.
        """
        queues = self.queues
        max_queue = self.max_queue
        enq_list = self.enq_list
        drop_list = self.drop_list
        peak_list = self.peak_list
        limited = self.limited
        nonempty_u = self.nonempty_u
        nonempty_l = self.nonempty_l
        pend = self.pending_depth
        added = 0
        added_u = 0
        overflowed = 0
        for link, dst in zip(li.tolist(), dsts.tolist()):
            queue = queues[link]
            real = len(queue)
            extra = int(pend[link]) if pend is not None else 0
            if real + extra >= max_queue[link]:
                drop_list[link] += 1
                overflowed += 1
                continue
            queue.append(dst)
            enq_list[link] += 1
            real += 1
            depth = real + extra
            if depth > peak_list[link]:
                peak_list[link] = depth
            added += 1
            if limited[link]:
                if real == 1:
                    nonempty_l.add(link)
            else:
                added_u += 1
                if real == 1:
                    nonempty_u.add(link)
        self.queued_total += added
        self.queued_u += added_u
        self.dropped_total += overflowed

    def _enqueue_grouped(self, li: np.ndarray, dsts: np.ndarray) -> None:
        """Append a batch of packets onto their links, grouped by link.

        Per-link ``deque.extend`` instead of per-packet appends: used for
        the wave-cascade wait set, which concentrates many packets onto
        the few rate-limited links of the current deployment.  The
        stable sort preserves FIFO order within each link.
        """
        order = np.argsort(li, kind="stable")
        li_sorted = li[order]
        dst_sorted = dsts[order].tolist()
        uniq, starts = np.unique(li_sorted, return_index=True)
        bounds = starts.tolist()
        bounds.append(len(dst_sorted))
        queues = self.queues
        max_queue = self.max_queue
        enq_list = self.enq_list
        drop_list = self.drop_list
        peak_list = self.peak_list
        limited = self.limited
        added = 0
        added_u = 0
        overflowed = 0
        for j, link in enumerate(uniq.tolist()):
            a = bounds[j]
            incoming = bounds[j + 1] - a
            queue = queues[link]
            depth = len(queue)
            space = max_queue[link] - depth
            if incoming > space:
                accepted = space if space > 0 else 0
                drop_list[link] += incoming - accepted
                overflowed += incoming - accepted
            else:
                accepted = incoming
            if accepted:
                queue.extend(dst_sorted[a : a + accepted])
                enq_list[link] += accepted
                depth += accepted
                added += accepted
                if limited[link]:
                    # Peak depth for rate-limited links is tracked
                    # lazily: queues only shrink at trickle drains, so
                    # the high-water mark is read right before a drain
                    # and once more at writeback.
                    if depth == accepted:
                        self.nonempty_l.add(link)
                else:
                    if depth > peak_list[link]:
                        peak_list[link] = depth
                    added_u += accepted
                    if depth == accepted:
                        self.nonempty_u.add(link)
        self.queued_total += added
        self.queued_u += added_u
        self.dropped_total += overflowed

    def _enqueue_one(self, node: int, dst: int) -> None:
        """Scalar enqueue of one forwarded packet (trickle stage)."""
        next_hop = self.rows[dst][node]
        lj = self.index_of[node * self.n + next_hop]
        queue = self.queues[lj]
        pend = self.pending_depth
        extra = int(pend[lj]) if pend is not None else 0
        if len(queue) + extra >= self.max_queue[lj]:
            self.drop_list[lj] += 1
            self.dropped_total += 1
            return
        queue.append(dst)
        self.enq_list[lj] += 1
        depth = len(queue) + extra
        if depth > self.peak_list[lj]:
            self.peak_list[lj] = depth
        self.queued_total += 1
        if self.limited[lj]:
            if len(queue) == 1:
                self.nonempty_l.add(lj)
        else:
            self.queued_u += 1
            if len(queue) == 1:
                self.nonempty_u.add(lj)

    def _trickle_limited(self, arrived: list[int]) -> None:
        """Stage 1 of the batch tick: drain rate-limited links scalarly.

        Rate-limited links holding a whole token move packets one by one
        (their aggregate throughput is tiny by construction); arrivals
        append to ``arrived`` in sorted-link order.  Factored out so the
        vectorized replica engine can run this per-replica stage between
        the shared refill and the global wave cascade.
        """
        queues = self.queues
        l_tokens = self.l_tokens
        held = np.fromiter(
            self.nonempty_l, dtype=np.int64, count=len(self.nonempty_l)
        )
        ready = held[l_tokens[held] + 1e-12 >= 1.0]
        ready.sort()
        fwd_list = self.fwd_list
        peak_list = self.peak_list
        for li in ready.tolist():
            queue = queues[li]
            # Lazy peak for rate-limited links: the queue only grew
            # since the last drain, so this is its high-water mark.
            depth = len(queue)
            if depth > peak_list[li]:
                peak_list[li] = depth
            tokens = l_tokens[li]
            node = self.link_dst[li]
            moved = 0
            while queue and tokens + 1e-12 >= 1.0:
                tokens -= 1.0
                dst = queue.popleft()
                moved += 1
                if dst == node:
                    arrived.append(dst)
                    self.delivered += 1
                else:
                    self._enqueue_one(node, dst)
            l_tokens[li] = tokens
            fwd_list[li] += moved
            self.queued_total -= moved
            if not queue:
                self.nonempty_l.discard(li)

    def transmit_tick_batch(self) -> list[int]:
        """Advance every link one tick, moving packet arrays in bulk.

        Two stages: rate-limited links holding a whole token drain first
        (scalar — their aggregate throughput is tiny by construction),
        then this tick's virtually-held injections plus every non-empty
        unlimited link's queue enter a wave cascade: arrivals peel off,
        packets bound for limited links queue up, and packets bound for
        a *later-indexed* unlimited link keep moving within the tick —
        the same per-tick reachability as the reference's sorted sweep.
        """
        if self.budget_tokens:
            # Node budgets serialize per-packet decisions; use the
            # exact path (these scenarios are small stars).
            return self.transmit_tick()
        self._refill_limited()
        arrived: list[int] = []
        queues = self.queues
        # Stage 1: trickle through rate-limited links with >= 1 token.
        if self.nonempty_l:
            self._trickle_limited(arrived)
        # Stage 2: bulk wave cascade — virtual injections plus queued
        # packets on unlimited links.
        chunks_dst = self._pending_dst
        chunks_li = self._pending_li
        if self.nonempty_u:
            active = sorted(self.nonempty_u)
            active_arr = np.array(active, dtype=np.int64)
            counts = np.fromiter(
                (len(queues[li]) for li in active),
                dtype=np.int64,
                count=len(active),
            )
            total = int(counts.sum())
            chunks_dst.append(
                np.fromiter(
                    chain.from_iterable(queues[li] for li in active),
                    dtype=np.int64,
                    count=total,
                )
            )
            chunks_li.append(np.repeat(active_arr, counts))
            for li in active:
                queues[li].clear()
            self.fwd_vec[active_arr] += counts
            self.nonempty_u.clear()
            self.queued_total -= total
            self.queued_u = 0
        if not chunks_dst:
            return arrived
        dsts = (
            chunks_dst[0]
            if len(chunks_dst) == 1
            else np.concatenate(chunks_dst)
        )
        src_li = (
            chunks_li[0] if len(chunks_li) == 1 else np.concatenate(chunks_li)
        )
        self._pending_dst = []
        self._pending_li = []
        key_array = self.key_array
        link_dst_arr = self.link_dst_arr
        limited_arr = self.limited_arr
        n = self.n
        while dsts.size:
            nodes = link_dst_arr[src_li]
            at_dest = dsts == nodes
            if at_dest.any():
                done = dsts[at_dest]
                arrived.extend(done.tolist())
                self.delivered += done.size
                keep = ~at_dest
                dsts = dsts[keep]
                src_li = src_li[keep]
                nodes = nodes[keep]
                if dsts.size == 0:
                    break
            next_hops = self._parent[dsts, nodes]
            lj = np.searchsorted(key_array, nodes * n + next_hops)
            # Packets whose next link is rate-limited, or an unlimited
            # link already swept this tick (lj <= source), wait queued.
            cascade = ~limited_arr[lj] & (lj > src_li)
            if not cascade.all():
                wait = ~cascade
                self._enqueue_grouped(lj[wait], dsts[wait])
                lj = lj[cascade]
                dsts = dsts[cascade]
            if dsts.size == 0:
                break
            # Pass-through: offered and drained within the same tick.
            passing, pass_counts = np.unique(lj, return_counts=True)
            self.enq_vec[passing] += pass_counts
            self.fwd_vec[passing] += pass_counts
            self.peak_vec[passing] = np.maximum(
                self.peak_vec[passing], pass_counts
            )
            src_li = lj
        return arrived

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------

    def link_stat_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Folded per-link ``(peak_queue, dropped)`` in layout order.

        The same fold :meth:`writeback` applies per link (scalar track
        max/plus vectorized track), for every link at once — so a
        caller that only needs link-stat *distributions* (the runner's
        histograms) can skip walking ``network.links``.  Call at or
        after writeback time; mid-tick virtual injections are not
        folded in.
        """
        peak = np.maximum(
            np.asarray(self.peak_list, dtype=np.int64), self.peak_vec
        )
        dropped = np.asarray(self.drop_list, dtype=np.int64)
        return peak, dropped

    def writeback(self, final_tick: int) -> list[int]:
        """Copy accumulated counters and residual queues onto the network.

        Residual queued packets are materialized as
        :class:`~repro.simulator.packet.Packet` objects so post-run
        inspection (``total_queued``, ``queue_depths``, reports) matches
        a reference run; only the destination survives the int encoding,
        so the materialized packets carry the holding link's source node
        and the final tick as their provenance.

        Returns the indices of links whose stats or queues were touched,
        so the replica engine can reset exactly those between replicas.
        Links this transport never moved a packet over are skipped
        entirely (their counter updates would all be ``+= 0``).
        """
        # Virtually-held injections exist only mid-tick (a transmit
        # always follows in the phase pipeline); flush defensively if a
        # caller stopped between phases.
        if self._pending_li:
            for li, dsts in zip(self._pending_li, self._pending_dst):
                self._enqueue_pairs(li, dsts)
            self._pending_li = []
            self._pending_dst = []
        stats = self.network.stats
        stats.packets_injected += self.injected
        stats.packets_delivered += self.delivered
        stats.packets_dropped += self.dropped_total
        # Candidate links: the vectorized track's nonzero entries plus
        # every link that ever got a queue.  The scalar-track counters
        # (fwd/drop/enq/peak/req lists) are only written after a
        # ``queues[li]`` access, which creates the defaultdict entry —
        # so this set covers them, and links the run never moved a
        # packet over are skipped without a whole-topology walk.
        candidates = set(
            np.flatnonzero(
                self.fwd_vec | self.enq_vec | self.peak_vec
            ).tolist()
        )
        candidates.update(self.queues.keys())
        fwd_vec = self.fwd_vec
        enq_vec = self.enq_vec
        peak_vec = self.peak_vec
        infection = PacketKind.INFECTION
        new_packet = Packet.__new__
        touched: list[int] = []
        keys = self.keys
        # Residual queues can hold 100k+ packets on rate-limited links;
        # pause collection while materializing them so the allocation
        # burst does not trigger repeated whole-heap scans.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for i in sorted(candidates):
                key = keys[i]
                forwarded = self.fwd_list[i] + int(fwd_vec[i])
                enqueued = self.enq_list[i] + int(enq_vec[i])
                dropped = self.drop_list[i]
                requeued = self.req_list[i]
                peak = self.peak_list[i]
                if peak_vec[i] > peak:
                    peak = int(peak_vec[i])
                queue = self.queues.get(i)
                if not (
                    forwarded or enqueued or dropped or requeued
                    or peak or queue
                ):
                    continue
                touched.append(i)
                link = self.network.links[key]
                link_stats = link.stats
                link_stats.forwarded += forwarded
                link_stats.dropped += dropped
                link_stats.enqueued += enqueued
                link_stats.requeued += requeued
                if queue:
                    # Close out the lazy high-water mark for limited
                    # links (queues only grew since their last drain).
                    depth = len(queue)
                    if self.limited[i] and depth > peak:
                        peak = depth
                    src = link.src
                    packets = []
                    for dst in queue:
                        packet = new_packet(Packet)
                        packet.src = src
                        packet.dst = dst
                        packet.kind = infection
                        packet.created_tick = final_tick
                        packet.hops = 0
                        packets.append(packet)
                    link.load_queue(packets)
                if peak > link_stats.peak_queue:
                    link_stats.peak_queue = peak
        finally:
            if gc_was_enabled:
                gc.enable()
        return touched
