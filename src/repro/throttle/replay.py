"""Replay trace traffic through a throttle and measure who gets hurt.

This closes the loop of Section 7: take the synthetic campus trace, run
each host's outbound contacts through a candidate throttle, and compare
the damage — legitimate hosts should see (almost) no delay, worm hosts
should see their effective contact rate collapse to the throttle's service
rate.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..traces.dns import DnsCache
from ..traces.records import HostClass, Trace
from .base import Action, Throttle
from .dns_throttle import DnsThrottle

__all__ = ["ReplayResult", "replay_host", "replay_class", "worm_slowdown"]

ThrottleFactory = Callable[[], Throttle]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one host (or one class) through a throttle.

    Attributes
    ----------
    scheme:
        Throttle name.
    contacts:
        Outbound contact attempts replayed.
    delayed_fraction:
        Fraction of contacts that were held at all.
    mean_delay:
        Mean delay in seconds over all contacts.
    max_delay:
        Worst single-contact delay.
    natural_rate:
        Contacts per second the host attempted.
    effective_rate:
        Contacts per second actually released (after throttling).
    """

    scheme: str
    contacts: int
    delayed_fraction: float
    mean_delay: float
    max_delay: float
    natural_rate: float
    effective_rate: float

    @property
    def slowdown(self) -> float:
        """Natural over effective rate (1.0 = unaffected)."""
        if self.effective_rate <= 0:
            return float("inf")
        return self.natural_rate / self.effective_rate


def replay_host(
    trace: Trace,
    host: int,
    throttle: Throttle,
) -> ReplayResult:
    """Run ``host``'s outbound initiated contacts through ``throttle``.

    DNS answers observed for the host feed ``dns_valid``; inbound
    initiations are reported to DNS-style throttles so replies stay
    exempt.
    """
    dns = DnsCache()
    offered = 0
    max_delay = 0.0
    total_delay = 0.0
    delayed = 0
    first_time: float | None = None
    last_release = 0.0
    for record in trace:
        dns.observe(record)
        if (
            record.dst == host
            and not trace.is_internal(record.src)
            and record.initiates_contact
            and isinstance(throttle, DnsThrottle)
        ):
            throttle.note_inbound(record.src)
        if record.src != host or trace.is_internal(record.dst):
            continue
        if not record.initiates_contact:
            continue
        decision = throttle.offer(
            record.time,
            record.dst,
            dns_valid=dns.has_valid_translation(host, record.dst, record.time),
        )
        offered += 1
        if first_time is None:
            first_time = record.time
        last_release = max(last_release, decision.release_time, record.time)
        if decision.action is Action.DELAY:
            delayed += 1
            d = decision.delay(record.time)
            total_delay += d
            max_delay = max(max_delay, d)

    if offered == 0 or first_time is None:
        return ReplayResult(
            scheme=throttle.name,
            contacts=0,
            delayed_fraction=0.0,
            mean_delay=0.0,
            max_delay=0.0,
            natural_rate=0.0,
            effective_rate=0.0,
        )
    natural_span = max(trace.duration, 1e-9)
    effective_span = max(last_release - first_time, natural_span, 1e-9)
    return ReplayResult(
        scheme=throttle.name,
        contacts=offered,
        delayed_fraction=delayed / offered,
        mean_delay=total_delay / offered,
        max_delay=max_delay,
        natural_rate=offered / natural_span,
        effective_rate=offered / effective_span,
    )


def replay_class(
    trace: Trace,
    host_class: HostClass,
    throttle_factory: ThrottleFactory,
    *,
    limit_hosts: int | None = None,
) -> list[ReplayResult]:
    """Replay every host of a class through a fresh throttle instance."""
    hosts = trace.hosts_of_class(host_class)
    if limit_hosts is not None:
        hosts = hosts[:limit_hosts]
    return [replay_host(trace, host, throttle_factory()) for host in hosts]


def worm_slowdown(results: list[ReplayResult]) -> float:
    """Median slowdown across a class's replay results."""
    finite = sorted(
        r.slowdown for r in results if r.contacts > 0
    )
    if not finite:
        raise ValueError("no hosts with contacts to summarize")
    return finite[len(finite) // 2]
