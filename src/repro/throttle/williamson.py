"""Williamson's virus throttle [17]: working set + delay queue.

The throttle keeps a small *working set* of recently contacted addresses.
A contact to an address in the working set passes untouched.  A contact to
a *new* address joins a delay queue that is served at a fixed rate (the
original paper's default: one per second); when a queued contact is
served, it is forwarded and its address enters the working set, evicting
the least-recently-used entry.

Normal traffic revisits the same few addresses and almost never waits.  A
scanning worm contacts fresh addresses every time, so its queue — and its
per-contact delay — grows without bound, capping its effective contact
rate at the service rate.
"""

from __future__ import annotations

from collections import OrderedDict

from .base import Action, Decision, Throttle

__all__ = ["WilliamsonThrottle"]


class WilliamsonThrottle(Throttle):
    """IP contact-rate throttle with an LRU working set.

    Parameters
    ----------
    working_set_size:
        Addresses remembered as "recently contacted" (default 5, per the
        original proposal).
    service_period:
        Seconds between delay-queue services; one queued contact is
        released per period (default 1.0 — "five per second" variants use
        0.2).
    """

    def __init__(
        self,
        *,
        working_set_size: int = 5,
        service_period: float = 1.0,
    ) -> None:
        super().__init__()
        if working_set_size < 1:
            raise ValueError(
                f"working_set_size must be >= 1, got {working_set_size}"
            )
        if service_period <= 0:
            raise ValueError(
                f"service_period must be positive, got {service_period}"
            )
        self._capacity = working_set_size
        self._period = service_period
        # address -> last use time; ordered oldest-first (LRU).
        self._working_set: OrderedDict[int, float] = OrderedDict()
        # The time at which the *next* delayed contact could be released.
        self._next_release = 0.0

    @property
    def name(self) -> str:
        return "williamson_ip_throttle"

    @property
    def working_set(self) -> tuple[int, ...]:
        """Current working-set addresses, LRU first."""
        return tuple(self._working_set)

    @property
    def queue_depth_at(self) -> float:
        """Backlog, expressed in periods, still waiting to drain."""
        return max(0.0, (self._next_release - self._last_offer) / self._period)

    def _touch(self, dst: int) -> None:
        self._working_set[dst] = self._last_offer
        self._working_set.move_to_end(dst)
        while len(self._working_set) > self._capacity:
            self._working_set.popitem(last=False)

    def _decide(self, t: float, dst: int, dns_valid: bool) -> Decision:
        if dst in self._working_set:
            self._touch(dst)
            return Decision(action=Action.FORWARD, release_time=t)
        # New address: serviced at rate 1/period.  If the server is idle
        # (no release pending), the contact passes immediately; otherwise
        # it queues behind the backlog.
        release = max(t, self._next_release)
        self._next_release = release + self._period
        self._touch(dst)
        if release <= t:
            return Decision(action=Action.FORWARD, release_time=t)
        return Decision(action=Action.DELAY, release_time=release)
