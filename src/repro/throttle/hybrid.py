"""Hybrid dual-window throttle (the Section 7 proposal).

The paper observes that long windows admit lower long-term rate limits
(bursts average out: 5 per 1 s vs 12 per 5 s vs 50 per 60 s at 99.9%
coverage) but risk long stalls once filled, and suggests "hybrid windows
with, for example, one short window to prevent long delays and one longer
window to provide better rate-limiting".  This throttle implements that: a
contact passes only when *both* a short-window and a long-window sliding
budget allow it; otherwise it is delayed to the earliest time both do.
"""

from __future__ import annotations

from collections import deque

from .base import Action, Decision, Throttle

__all__ = ["HybridThrottle"]


class _SlidingBudget:
    """Sliding-log budget: at most ``budget`` releases per ``window``."""

    def __init__(self, budget: int, window: float) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.budget = budget
        self.window = window
        self._log: deque[float] = deque()

    def earliest_slot(self, t: float) -> float:
        while self._log and self._log[0] <= t - self.window:
            self._log.popleft()
        if len(self._log) < self.budget:
            return t
        index = len(self._log) - self.budget
        return self._log[index] + self.window

    def commit(self, release: float) -> None:
        self._log.append(release)


class HybridThrottle(Throttle):
    """Short + long sliding-window budgets combined.

    Defaults follow the paper's trace-derived numbers: a short window of
    5 contacts per second (prevents multi-second stalls) and a long window
    of 50 contacts per minute (caps the sustained rate well below any
    worm's).
    """

    def __init__(
        self,
        *,
        short_budget: int = 5,
        short_window: float = 1.0,
        long_budget: int = 50,
        long_window: float = 60.0,
    ) -> None:
        super().__init__()
        if long_window <= short_window:
            raise ValueError(
                f"long window ({long_window}) must exceed short window "
                f"({short_window})"
            )
        self._short = _SlidingBudget(short_budget, short_window)
        self._long = _SlidingBudget(long_budget, long_window)

    @property
    def name(self) -> str:
        return "hybrid_dual_window"

    def _decide(self, t: float, dst: int, dns_valid: bool) -> Decision:
        release = t
        # Fixed-point: each budget may push the release later; two passes
        # suffice because slots only move forward.
        for _ in range(4):
            pushed = max(
                self._short.earliest_slot(release),
                self._long.earliest_slot(release),
            )
            if pushed <= release:
                break
            release = pushed
        self._short.commit(release)
        self._long.commit(release)
        if release <= t:
            return Decision(action=Action.FORWARD, release_time=t)
        return Decision(action=Action.DELAY, release_time=release)
