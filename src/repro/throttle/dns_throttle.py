"""The Ganger et al. DNS-based throttle [5].

Self-securing network interfaces observe that legitimate software looks a
name up before connecting, while self-propagating worms synthesize raw
32-bit addresses.  The filter therefore passes, untouched:

* contacts to addresses with a valid DNS translation, and
* contacts back to addresses that initiated contact with us first;

and rate-limits only the remainder — *unknown* addresses — against a small
budget (the original default: six per minute).  Contacts beyond the budget
wait in a delay queue for budget to accrue.
"""

from __future__ import annotations

from collections import deque

from .base import Action, Decision, Throttle

__all__ = ["DnsThrottle"]


class DnsThrottle(Throttle):
    """Rate limiter for contacts to non-DNS-translated addresses.

    Parameters
    ----------
    budget:
        Unknown-address contacts allowed per ``window`` (default 6).
    window:
        Budget window in seconds (default 60).
    """

    def __init__(self, *, budget: int = 6, window: float = 60.0) -> None:
        super().__init__()
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._budget = budget
        self._window = window
        #: Release times of recent unknown-address contacts (sliding log).
        self._recent: deque[float] = deque()
        #: Hosts that contacted us first; replies to them are exempt.
        self._prior_contacts: set[int] = set()

    @property
    def name(self) -> str:
        return "dns_based_throttle"

    def note_inbound(self, src: int) -> None:
        """Record that ``src`` initiated contact with this host."""
        self._prior_contacts.add(src)

    def _next_slot(self, t: float) -> float:
        """Earliest time a new unknown contact may be released."""
        # Drop log entries older than one window.
        while self._recent and self._recent[0] <= t - self._window:
            self._recent.popleft()
        if len(self._recent) < self._budget:
            return t
        # The slot frees when the oldest of the last `budget` releases
        # ages out of the window.
        index = len(self._recent) - self._budget
        return self._recent[index] + self._window

    def _decide(self, t: float, dst: int, dns_valid: bool) -> Decision:
        if dns_valid or dst in self._prior_contacts:
            return Decision(action=Action.FORWARD, release_time=t)
        release = self._next_slot(t)
        self._recent.append(release)
        if release <= t:
            return Decision(action=Action.FORWARD, release_time=t)
        return Decision(action=Action.DELAY, release_time=release)
