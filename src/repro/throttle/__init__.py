"""Working host-level rate limiters (Williamson IP throttle, Ganger DNS
throttle, the hybrid dual-window proposal) and trace replay tooling."""

from .base import Action, Decision, Throttle, ThrottleStats
from .dns_throttle import DnsThrottle
from .hybrid import HybridThrottle
from .replay import ReplayResult, replay_class, replay_host, worm_slowdown
from .williamson import WilliamsonThrottle

__all__ = [
    "Action",
    "Decision",
    "Throttle",
    "ThrottleStats",
    "DnsThrottle",
    "HybridThrottle",
    "ReplayResult",
    "replay_class",
    "replay_host",
    "worm_slowdown",
    "WilliamsonThrottle",
]
