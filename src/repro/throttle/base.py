"""Throttle interface: stateful per-host rate-limiting filters.

A throttle sees a host's *outbound contact attempts* in time order and
decides, for each, whether it is forwarded immediately or held in a delay
queue until a budget frees up (the mechanism of Williamson's virus
throttle; the Ganger et al. NIC scheme behaves the same way for non-DNS
contacts).  Rate limiting never drops traffic — it reshapes it — so the
interesting outputs are *delays*: near zero for legitimate traffic, large
and growing for worm scans.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from enum import Enum

__all__ = ["Action", "Decision", "Throttle", "ThrottleStats"]


class Action(Enum):
    """What the throttle did with a contact attempt."""

    FORWARD = "forward"
    DELAY = "delay"


@dataclass(frozen=True)
class Decision:
    """Outcome of offering one contact to a throttle.

    Attributes
    ----------
    action:
        Whether the contact passed immediately or was queued.
    release_time:
        When the contact actually leaves the host.  Equals the offer time
        for forwarded contacts; later for delayed ones.
    """

    action: Action
    release_time: float

    def delay(self, offered_at: float) -> float:
        """Seconds the contact was held."""
        return max(0.0, self.release_time - offered_at)


@dataclass
class ThrottleStats:
    """Aggregate counters kept by every throttle."""

    offered: int = 0
    forwarded: int = 0
    delayed: int = 0
    total_delay: float = 0.0

    @property
    def delay_fraction(self) -> float:
        """Fraction of contacts that were held."""
        return self.delayed / self.offered if self.offered else 0.0

    @property
    def mean_delay(self) -> float:
        """Mean delay over *all* offered contacts."""
        return self.total_delay / self.offered if self.offered else 0.0


class Throttle(abc.ABC):
    """Base class: per-host contact-rate filter with a delay queue.

    Offers must arrive in non-decreasing time order (they come from a
    time-sorted trace); implementations may raise ``ValueError`` on
    out-of-order input.
    """

    def __init__(self) -> None:
        self.stats = ThrottleStats()
        self._last_offer = float("-inf")

    def offer(
        self, t: float, dst: int, *, dns_valid: bool = False
    ) -> Decision:
        """Submit a contact attempt; returns the scheduling decision.

        Parameters
        ----------
        t:
            Offer time (seconds); non-decreasing across calls.
        dst:
            Destination address of the contact.
        dns_valid:
            Whether the host held a valid DNS translation for ``dst``
            (only the DNS-based throttle cares).
        """
        if t < self._last_offer:
            raise ValueError(
                f"offers must be time-ordered: {t} after {self._last_offer}"
            )
        self._last_offer = t
        decision = self._decide(t, dst, dns_valid)
        self.stats.offered += 1
        if decision.action is Action.FORWARD:
            self.stats.forwarded += 1
        else:
            self.stats.delayed += 1
            self.stats.total_delay += decision.delay(t)
        return decision

    @abc.abstractmethod
    def _decide(self, t: float, dst: int, dns_valid: bool) -> Decision:
        """Implementation hook for :meth:`offer`."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short scheme name for reports."""
