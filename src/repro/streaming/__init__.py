"""Streaming detection: online worm containment over flow streams.

The batch trace pipeline answers "what happened"; this package answers
it *while it is happening*: time-ordered flow streams (replayed,
synthetic-online, or JSONL wire), hyper-compact per-host estimators
(shared-register vHLL spread estimation, count-min failure counting), and
online detectors (windowed contact rate, connection-failure-ratio
containment, throttle-policy adapters) that emit timestamped verdicts
and quarantine actions without ever materializing a trace.  Serving
surfaces: the ``repro stream`` CLI and the service's ``/v1/stream``
chunked-ingest sessions.
"""

from .detectors import (
    ContactRateDetector,
    DetectionEngine,
    Detector,
    FailureRatioDetector,
    QuarantineAction,
    ThrottleDetector,
    Verdict,
    make_detector,
)
from .estimators import (
    CountMinSketch,
    ExactCounter,
    ExactDistinct,
    VirtualHyperLogLog,
)
from .eval import evaluate_detectors, evaluate_synthetic, throughput_run
from .stream import (
    FlowStream,
    JsonlFlowStream,
    SyntheticFlowStream,
    TraceReplayStream,
    private_internal,
    record_from_json,
    record_to_json,
)

__all__ = [
    "ContactRateDetector",
    "DetectionEngine",
    "Detector",
    "FailureRatioDetector",
    "QuarantineAction",
    "ThrottleDetector",
    "Verdict",
    "make_detector",
    "CountMinSketch",
    "ExactCounter",
    "ExactDistinct",
    "VirtualHyperLogLog",
    "evaluate_detectors",
    "evaluate_synthetic",
    "throughput_run",
    "FlowStream",
    "JsonlFlowStream",
    "SyntheticFlowStream",
    "TraceReplayStream",
    "private_internal",
    "record_from_json",
    "record_to_json",
]
