"""Hyper-compact per-host estimators: shared-register sketches.

Per-host dicts and sets are what make online detection expensive at
millions-of-hosts scale.  Following the hyper-compact-estimator line of
work (PAPERS.md: Zhou/Zhou/Chen/Kreidl), per-host state here is a few
*shared* registers instead:

* :class:`VirtualHyperLogLog` — distinct-contact ("spread") estimation.
  One physical bank of ``m`` 1-byte HLL registers is shared by every
  host; a host's *virtual* sketch is ``s`` registers selected by hash.
  With the default geometry (8 bytes/host, s=64) the union estimate of a
  host's virtual registers measures its own spread plus the bank-wide
  noise floor, which the estimator subtracts using the bank's grand
  total — the standard virtual-sketch correction::

      n_hat(f) = (m*s / (m - s)) * (E_s / s  -  E_m / m)

  where ``E_s`` is the HLL estimate from f's s registers and ``E_m``
  from all m.  Accuracy: HLL's ~1.04/sqrt(s) (~13 % at s=64) plus a
  noise term that grows with bank load.  The documented contract,
  tested differentially against :class:`ExactDistinct`, holds at bank
  loads up to ~2 distinct items per register (per-window resets keep
  detectors in that regime): relative error within 65 % once a host's
  true spread clears ``s``, absolute error within 45 below that.
  Register updates are max-merges, so estimates are exactly independent
  of flow arrival order — the property the hypothesis suite exploits.

* :class:`CountMinSketch` — failure counting.  A conservative-update
  count-min sketch (the counting-Bloom family): ``rows`` hashed rows of
  ``width`` uint16 counters; estimate is the row minimum and *never
  underestimates* the true count.  Overestimate is bounded by collision
  load; the tested contract is exact agreement at light load and
  ``estimate >= exact`` always.  :meth:`decay` halves every counter —
  the standard sliding-exposure trick for long-lived streams.

Both sketches take a ``capacity`` (the host population they are sized
for) and report ``bytes_per_host`` so callers can assert the memory
budget; both have numpy-vectorized batch paths (``add_pairs`` /
``add_keys``) for chunked ingest.  The exact references
(:class:`ExactDistinct`, :class:`ExactCounter`) share the same API for
differential testing and for small-scale runs where exactness matters
more than memory.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "VirtualHyperLogLog",
    "CountMinSketch",
    "ExactDistinct",
    "ExactCounter",
]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_C1 = np.uint64(0x9E3779B97F4A7C15)
_C2 = np.uint64(0xBF58476D1CE4E5B9)
_C3 = np.uint64(0x94D049BB133111EB)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer: uniform 64-bit mixing (vectorized)."""
    z = (x + _C1) & _MASK64
    z = ((z ^ (z >> np.uint64(30))) * _C2) & _MASK64
    z = ((z ^ (z >> np.uint64(27))) * _C3) & _MASK64
    return z ^ (z >> np.uint64(31))


def _mix64_scalar(x: int) -> int:
    z = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def _hll_estimate(registers: np.ndarray) -> float:
    """Standard HLL estimate with linear-counting small-range correction."""
    n = registers.size
    alpha = 0.7213 / (1.0 + 1.079 / n)
    raw = alpha * n * n / float(
        np.sum(np.exp2(-registers.astype(np.float64)))
    )
    if raw <= 2.5 * n:
        zeros = int(np.count_nonzero(registers == 0))
        if zeros:
            return n * float(np.log(n / zeros))
    return raw


class VirtualHyperLogLog:
    """Register-sharing distinct estimator (virtual HLL).

    Parameters
    ----------
    capacity:
        Host population the bank is sized for.
    bytes_per_host:
        Physical registers allotted per host of capacity (bank size is
        ``capacity * bytes_per_host`` one-byte registers).
    virtual_registers:
        Registers per virtual sketch (``s``); must be a power of two
        smaller than the bank.
    """

    def __init__(
        self, capacity: int, *, bytes_per_host: int = 8,
        virtual_registers: int = 64,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if bytes_per_host < 1:
            raise ValueError(
                f"bytes_per_host must be >= 1, got {bytes_per_host}"
            )
        s = virtual_registers
        if s < 16 or s & (s - 1):
            raise ValueError(
                f"virtual_registers must be a power of two >= 16, got {s}"
            )
        m = capacity * bytes_per_host
        if m <= 2 * s:
            m = 4 * s  # floor so tiny capacities stay well-defined
        self._m = m
        self._s = s
        self._registers = np.zeros(m, dtype=np.uint8)
        self._capacity = capacity

    @property
    def bytes_per_host(self) -> float:
        """Shared-bank bytes amortized per host of capacity."""
        return self._registers.nbytes / self._capacity

    @property
    def memory_bytes(self) -> int:
        return int(self._registers.nbytes)

    def reset(self) -> None:
        """Clear the bank (used for per-window estimation)."""
        self._registers.fill(0)

    # -- updates ---------------------------------------------------------

    def add(self, host: int, item: int) -> None:
        """Record that ``host`` contacted ``item``."""
        s = self._s
        he = _mix64_scalar(item)
        j = he & (s - 1)
        w = he >> 6
        rho = 59 if w == 0 else ((w & -w).bit_length())  # tz + 1
        phys = _mix64_scalar((_mix64_scalar(host) + j)) % self._m
        if rho > self._registers[phys]:
            self._registers[phys] = min(rho, 255)

    def add_pairs(self, hosts: np.ndarray, items: np.ndarray) -> None:
        """Vectorized :meth:`add` over parallel host/item arrays."""
        if hosts.size == 0:
            return
        hosts64 = hosts.astype(np.uint64)
        he = _mix64(items.astype(np.uint64))
        j = he & np.uint64(self._s - 1)
        w = he >> np.uint64(6)
        lsb = w & (~w + np.uint64(1))
        # log2 of a power of two is exact in float64.
        rho = np.where(
            w == 0, 59, np.log2(lsb.astype(np.float64) + (w == 0)) + 1
        ).astype(np.uint8)
        phys = (_mix64(_mix64(hosts64) + j) % np.uint64(self._m)).astype(
            np.int64
        )
        np.maximum.at(self._registers, phys, rho)

    # -- estimates -------------------------------------------------------

    def _virtual_indices(self, host: int) -> np.ndarray:
        base = _mix64_scalar(host)
        j = np.arange(self._s, dtype=np.uint64)
        return (
            _mix64(np.uint64(base) + j) % np.uint64(self._m)
        ).astype(np.int64)

    def estimate(self, host: int) -> float:
        """Approximate distinct items recorded for ``host`` (>= 0)."""
        m, s = self._m, self._s
        virtual = self._registers[self._virtual_indices(host)]
        e_s = _hll_estimate(virtual)
        e_m = _hll_estimate(self._registers)
        n_hat = (m * s / (m - s)) * (e_s / s - e_m / m)
        return max(0.0, n_hat)

    def estimate_many(self, hosts: list[int]) -> dict[int, float]:
        """Estimates for several hosts, sharing the grand-total pass."""
        if not hosts:
            return {}
        m, s = self._m, self._s
        e_m = _hll_estimate(self._registers)
        scale = m * s / (m - s)
        out: dict[int, float] = {}
        for host in hosts:
            virtual = self._registers[self._virtual_indices(host)]
            e_s = _hll_estimate(virtual)
            out[host] = max(0.0, scale * (e_s / s - e_m / m))
        return out


class CountMinSketch:
    """Conservative-update count-min sketch (counting-Bloom counter).

    ``estimate`` never underestimates; conservative update (only raise
    the minimal cells) keeps overestimates near zero at light load.
    """

    def __init__(
        self, capacity: int, *, rows: int = 2, width: int | None = None,
        dtype: type = np.uint16,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        self._rows = rows
        self._width = width if width is not None else max(capacity, 16)
        self._table = np.zeros((rows, self._width), dtype=dtype)
        self._capacity = capacity
        self._max = int(np.iinfo(dtype).max)
        self._salts = np.array(
            [_mix64_scalar(0xABCD + r) for r in range(rows)], dtype=np.uint64
        )

    @property
    def bytes_per_host(self) -> float:
        return self._table.nbytes / self._capacity

    @property
    def memory_bytes(self) -> int:
        return int(self._table.nbytes)

    def reset(self) -> None:
        self._table.fill(0)

    def _columns(self, key: int) -> np.ndarray:
        h = _mix64(np.uint64(key) + self._salts)
        return (h % np.uint64(self._width)).astype(np.int64)

    def add(self, key: int, count: int = 1) -> int:
        """Count ``count`` occurrences of ``key``; returns new estimate."""
        cols = self._columns(key)
        cells = self._table[np.arange(self._rows), cols]
        new = min(int(cells.min()) + count, self._max)
        # Conservative update: only cells below the new floor move.
        np.maximum(cells, new, out=cells)
        self._table[np.arange(self._rows), cols] = cells
        return new

    def add_keys(self, keys: np.ndarray) -> None:
        """Vectorized unit-count updates (non-conservative, still >=).

        Batch mode raises every hashed cell by the key's batch
        multiplicity — a plain count-min update.  It keeps the
        never-underestimate guarantee but is looser than the scalar
        conservative path; chunked ingest uses it for throughput.
        """
        if keys.size == 0:
            return
        keys64 = keys.astype(np.uint64)
        for r in range(self._rows):
            cols = (
                _mix64(keys64 + self._salts[r]) % np.uint64(self._width)
            ).astype(np.int64)
            counts = np.bincount(cols, minlength=self._width).astype(
                self._table.dtype
            )
            row = self._table[r]
            headroom = self._max - row
            np.minimum(counts, headroom.astype(counts.dtype), out=counts)
            row += counts

    def estimate(self, key: int) -> int:
        """Estimated count for ``key`` (never below the true count)."""
        cols = self._columns(key)
        return int(self._table[np.arange(self._rows), cols].min())

    def decay(self) -> None:
        """Halve every counter (sliding exposure for long streams)."""
        self._table >>= 1


class ExactDistinct:
    """Exact per-host distinct sets — the differential-test reference."""

    def __init__(self) -> None:
        self._sets: dict[int, set[int]] = {}

    @property
    def bytes_per_host(self) -> float:
        return float("nan")  # unbounded; that is the point

    def reset(self) -> None:
        self._sets.clear()

    def add(self, host: int, item: int) -> None:
        self._sets.setdefault(host, set()).add(item)

    def add_pairs(self, hosts: np.ndarray, items: np.ndarray) -> None:
        for host, item in zip(hosts.tolist(), items.tolist()):
            self.add(host, item)

    def estimate(self, host: int) -> float:
        return float(len(self._sets.get(host, ())))

    def estimate_many(self, hosts: list[int]) -> dict[int, float]:
        return {h: self.estimate(h) for h in hosts}


class ExactCounter:
    """Exact per-key counters — the differential-test reference."""

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}

    @property
    def bytes_per_host(self) -> float:
        return float("nan")

    def reset(self) -> None:
        self._counts.clear()

    def add(self, key: int, count: int = 1) -> int:
        new = self._counts.get(key, 0) + count
        self._counts[key] = new
        return new

    def add_keys(self, keys: np.ndarray) -> None:
        for key in keys.tolist():
            self.add(key)

    def estimate(self, key: int) -> int:
        return self._counts.get(key, 0)

    def decay(self) -> None:
        for key in list(self._counts):
            self._counts[key] >>= 1
            if not self._counts[key]:
                del self._counts[key]
