"""Flow streams: time-ordered, memory-bounded sources of flow records.

The batch pipeline materializes a whole :class:`~repro.traces.records.
Trace` before anything looks at it.  Online detection inverts that: a
*flow stream* hands records to consumers one at a time, in non-decreasing
time order, and never requires the full trace to exist at once.  Three
sources implement the protocol:

* :class:`TraceReplayStream` — replays an existing in-memory trace
  (records are already time-sorted);
* :class:`SyntheticFlowStream` — generates flows *online* from the same
  behavioural host census as :func:`repro.traces.synth.generate_trace`,
  using a watermark merge over per-host state machines so memory stays
  O(hosts), independent of how many flows are produced.  This is the
  load path: millions of flows without a trace in memory.  (It shares
  the batch generator's census and rate knobs but is a distinct,
  time-ordered random process — the byte-identical batch path lives in
  :func:`repro.traces.synth.iter_flow_records`.)
* :class:`JsonlFlowStream` — decodes the wire format used by
  ``repro stream`` and ``/v1/stream``, tolerating malformed lines
  (counted, skipped) so one truncated line never kills a long-lived
  stream.

The JSONL wire format is one compact object per line::

    {"t": 12.5, "src": 167837706, "dst": 3221225985, "proto": "tcp",
     "sp": 40001, "dp": 135, "syn": 1}

``echo``/``dns`` carry the ICMP-echo flag and DNS-answer address; absent
keys default to 0/false/None.  Addresses are 32-bit integers (not dotted
quads) — the hot path avoids string parsing beyond the JSON itself.
"""

from __future__ import annotations

import heapq
import json
import random
from collections.abc import Iterable, Iterator
from typing import Callable, Protocol, runtime_checkable

from ..traces.records import FlowRecord
from ..traces.records import Protocol as FlowProtocol
from ..traces.records import Trace, TraceError
from ..traces.synth import DCOM_PORT, RESOLVER_IP, SERVICE_BASE, TraceConfig
from ..traces.records import DNS_PORT

__all__ = [
    "FlowStream",
    "TraceReplayStream",
    "SyntheticFlowStream",
    "JsonlFlowStream",
    "record_to_json",
    "record_from_json",
    "private_internal",
]

_PROTO_BY_NAME = {p.value: p for p in FlowProtocol}


def private_internal(ip: int) -> bool:
    """Default "internal host" predicate: the 10.0.0.0/8 private net.

    The synthetic census numbers its hosts inside 10.1.0.0/16, so this is
    the right default for JSONL streams that carry no host census.
    """
    return (ip >> 24) == 10


@runtime_checkable
class FlowStream(Protocol):
    """A time-ordered source of flow records.

    Iteration yields :class:`FlowRecord` objects with non-decreasing
    ``time``; ``is_internal`` tells detectors which addresses belong to
    the monitored network.
    """

    def __iter__(self) -> Iterator[FlowRecord]: ...

    def is_internal(self, ip: int) -> bool: ...


class TraceReplayStream:
    """Replay a materialized trace as a flow stream."""

    def __init__(self, trace: Trace) -> None:
        self._trace = trace

    @property
    def trace(self) -> Trace:
        return self._trace

    def is_internal(self, ip: int) -> bool:
        return self._trace.is_internal(ip)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._trace.records)


# ---------------------------------------------------------------------------
# JSONL wire format
# ---------------------------------------------------------------------------


def record_to_json(record: FlowRecord) -> str:
    """Encode one record as a compact JSONL line (no trailing newline)."""
    payload: dict[str, object] = {
        "t": record.time,
        "src": record.src,
        "dst": record.dst,
        "proto": record.protocol.value,
    }
    if record.src_port:
        payload["sp"] = record.src_port
    if record.dst_port:
        payload["dp"] = record.dst_port
    if record.tcp_syn:
        payload["syn"] = 1
    if record.icmp_echo:
        payload["echo"] = 1
    if record.dns_answer is not None:
        payload["dns"] = record.dns_answer
    return json.dumps(payload, separators=(",", ":"))


def record_from_json(line: str) -> FlowRecord:
    """Decode one JSONL line; raises :class:`TraceError` when malformed."""
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise TraceError(f"malformed JSONL line: {exc}") from exc
    if not isinstance(payload, dict):
        raise TraceError(f"JSONL line is not an object: {line[:80]!r}")
    try:
        protocol = _PROTO_BY_NAME[payload["proto"]]
        return FlowRecord(
            time=float(payload["t"]),
            src=int(payload["src"]),
            dst=int(payload["dst"]),
            protocol=protocol,
            src_port=int(payload.get("sp", 0)),
            dst_port=int(payload.get("dp", 0)),
            tcp_syn=bool(payload.get("syn", 0)),
            icmp_echo=bool(payload.get("echo", 0)),
            dns_answer=(
                int(payload["dns"]) if payload.get("dns") is not None else None
            ),
        )
    except TraceError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed flow object: {exc}") from exc


class JsonlFlowStream:
    """Decode a JSONL line source into a flow stream, skipping bad lines.

    Malformed lines (truncated JSON, missing fields, out-of-range values)
    are counted in :attr:`bad_lines` and skipped — a corrupted byte in a
    million-flow feed degrades one record, not the stream.  Out-of-order
    records (time going backwards) are likewise counted in
    :attr:`reordered` and dropped, preserving the stream's time-order
    contract for downstream detectors.
    """

    def __init__(
        self,
        lines: Iterable[str],
        *,
        internal: Callable[[int], bool] = private_internal,
        corrupt: Callable[[str], str] | None = None,
    ) -> None:
        self._lines = lines
        self._internal = internal
        self._corrupt = corrupt
        self.good_lines = 0
        self.bad_lines = 0
        self.reordered = 0

    def is_internal(self, ip: int) -> bool:
        return self._internal(ip)

    def __iter__(self) -> Iterator[FlowRecord]:
        last_time = float("-inf")
        for line in self._lines:
            if self._corrupt is not None:
                line = self._corrupt(line)
            line = line.strip()
            if not line:
                continue
            try:
                record = record_from_json(line)
            except TraceError:
                self.bad_lines += 1
                continue
            if record.time < last_time:
                self.reordered += 1
                continue
            last_time = record.time
            self.good_lines += 1
            yield record


# ---------------------------------------------------------------------------
# Online synthetic generation: watermark merge over host state machines
# ---------------------------------------------------------------------------


class _HostMachine:
    """One host's behaviour as an incremental event process.

    ``step(rng)`` emits the records of the host's next activity burst (at
    times >= :attr:`next_time`) and advances :attr:`next_time`; a machine
    whose next_time passes the horizon is retired.  Emitted record times
    within one step may exceed next_time's new value — the stream's
    watermark merge handles that overlap.
    """

    __slots__ = ("host", "next_time")

    def __init__(self, host: int, first_time: float) -> None:
        self.host = host
        self.next_time = first_time

    def step(self, rng: random.Random) -> list[FlowRecord]:  # pragma: no cover
        raise NotImplementedError


def _syn(t: float, src: int, dst: int, dst_port: int, sp: int) -> FlowRecord:
    return FlowRecord(
        time=t, src=src, dst=dst, protocol=FlowProtocol.TCP,
        src_port=sp, dst_port=dst_port, tcp_syn=True,
    )


def _reply(t: float, src: int, dst: int, src_port: int, dp: int) -> FlowRecord:
    return FlowRecord(
        time=t, src=src, dst=dst, protocol=FlowProtocol.TCP,
        src_port=src_port, dst_port=dp,
    )


class _BenignClient(_HostMachine):
    """Normal desktop / P2P client: mostly-successful service contacts.

    Each step is one contact: resolved service (DNS pair + SYN + likely
    reply), or — with the complement of ``dns_fraction`` — a raw-address
    peer contact that may be a dead peer (no reply): the benign
    false-positive pressure on failure-based containment.
    """

    __slots__ = ("rate", "dns_fraction", "reply_p")

    def __init__(
        self, host: int, rng: random.Random, *, rate: float,
        dns_fraction: float, reply_p: float,
    ) -> None:
        super().__init__(host, rng.expovariate(rate))
        self.rate = rate
        self.dns_fraction = dns_fraction
        self.reply_p = reply_p

    def step(self, rng: random.Random) -> list[FlowRecord]:
        t = self.next_time
        host = self.host
        records: list[FlowRecord] = []
        sp = 40000 + rng.randrange(20000)
        if rng.random() < self.dns_fraction:
            target = SERVICE_BASE + int(2000 ** rng.random()) - 1
            records.append(FlowRecord(
                time=t, src=host, dst=RESOLVER_IP,
                protocol=FlowProtocol.UDP,
                src_port=33000 + rng.randrange(20000), dst_port=DNS_PORT,
            ))
            records.append(FlowRecord(
                time=t + 0.003, src=RESOLVER_IP, dst=host,
                protocol=FlowProtocol.UDP,
                src_port=DNS_PORT, dst_port=33000, dns_answer=target,
            ))
            records.append(_syn(t + 0.005, host, target, 80, sp))
            if rng.random() < self.reply_p:
                records.append(_reply(t + 0.015, target, host, 80, sp))
        else:
            target = _random_external(rng)
            records.append(_syn(t, host, target, 6346, sp))
            # Raw-address peers are flakier than named services.
            if rng.random() < self.reply_p * 0.6:
                records.append(_reply(t + 0.015, target, host, 6346, sp))
        self.next_time = t + rng.expovariate(self.rate)
        return records


class _ServerHost(_HostMachine):
    """Server: inbound connections answered immediately."""

    __slots__ = ("rate",)

    def __init__(self, host: int, rng: random.Random, *, rate: float) -> None:
        super().__init__(host, rng.expovariate(rate))
        self.rate = rate

    def step(self, rng: random.Random) -> list[FlowRecord]:
        t = self.next_time
        remote = _random_external(rng)
        sp = 40000 + rng.randrange(20000)
        records = [
            _syn(t, remote, self.host, 80, sp),
            _reply(t + 0.002, self.host, remote, 80, sp),
        ]
        self.next_time = t + rng.expovariate(self.rate)
        return records


class _BlasterHost(_HostMachine):
    """Sequential TCP/135 scanner; most probes fail."""

    __slots__ = ("rate", "cursor", "unreachable_p")

    def __init__(
        self, host: int, rng: random.Random, *, rate: float,
        unreachable_p: float,
    ) -> None:
        super().__init__(host, rng.expovariate(rate))
        self.rate = rate
        self.cursor = _random_external(rng) & 0xFFFF0000
        self.unreachable_p = unreachable_p

    def step(self, rng: random.Random) -> list[FlowRecord]:
        t = self.next_time
        target = self.cursor & 0xFFFFFFFF
        self.cursor += 1
        while (target >> 24) in (0, 10, 127) or (target >> 24) >= 224:
            target = self.cursor & 0xFFFFFFFF
            self.cursor += 1
        records = [_syn(t, self.host, target, DCOM_PORT,
                        40000 + rng.randrange(20000))]
        if self.unreachable_p > 0 and rng.random() < self.unreachable_p:
            records.append(FlowRecord(
                time=t + 0.02, src=target, dst=self.host,
                protocol=FlowProtocol.ICMP,
            ))
        self.next_time = t + rng.expovariate(self.rate)
        return records


class _WelchiaHost(_HostMachine):
    """ICMP sweeper; responders draw a TCP/135 exploit probe."""

    __slots__ = ("rate", "cursor", "probe_p", "unreachable_p")

    def __init__(
        self, host: int, rng: random.Random, *, rate: float,
        probe_p: float, unreachable_p: float,
    ) -> None:
        super().__init__(host, rng.expovariate(rate))
        self.rate = rate
        self.cursor = _random_external(rng) & 0xFFFFFF00
        self.probe_p = probe_p
        self.unreachable_p = unreachable_p

    def step(self, rng: random.Random) -> list[FlowRecord]:
        t = self.next_time
        target = self.cursor & 0xFFFFFFFF
        self.cursor += 1
        while (target >> 24) in (0, 10, 127) or (target >> 24) >= 224:
            target = self.cursor & 0xFFFFFFFF
            self.cursor += 1
        records = [FlowRecord(
            time=t, src=self.host, dst=target,
            protocol=FlowProtocol.ICMP, icmp_echo=True,
        )]
        if rng.random() < self.probe_p:
            records.append(_syn(t + 0.01, self.host, target, DCOM_PORT,
                                40000 + rng.randrange(20000)))
        elif self.unreachable_p > 0 and rng.random() < self.unreachable_p:
            records.append(FlowRecord(
                time=t + 0.02, src=target, dst=self.host,
                protocol=FlowProtocol.ICMP,
            ))
        self.next_time = t + rng.expovariate(self.rate)
        return records


def _random_external(rng: random.Random) -> int:
    """A routable pseudo-random address outside 10/8."""
    while True:
        address = rng.randrange(1 << 32)
        first_octet = address >> 24
        if first_octet not in (0, 10, 127) and first_octet < 224:
            return address


class SyntheticFlowStream:
    """Online synthetic flow generation at O(hosts) memory.

    A heap of per-host state machines is merged with a watermark: a
    buffered record is released only once every machine's next event time
    has passed it, so the output is globally time-ordered while the
    buffer never holds more than the records of in-flight activity
    bursts.  Memory is proportional to the host census — *not* to
    ``max_flows`` — which is what lets ``repro stream --synthetic``
    push millions of flows through a detector without a trace in memory.

    Parameters
    ----------
    config:
        Census and rate knobs (reuses :class:`TraceConfig`; the
        ``service_reply_probability`` / ``scan_unreachable_probability``
        failure knobs default to realistic nonzero values here when left
        at 0.0, because a stream with no success signal would make every
        host look failing).
    max_flows:
        Optional hard cap on yielded records (the generator stops
        early); ``None`` runs to ``config.duration``.
    """

    #: Stream defaults when the batch-oriented config leaves them off.
    DEFAULT_REPLY_PROBABILITY = 0.92
    DEFAULT_UNREACHABLE_PROBABILITY = 0.30

    def __init__(
        self, config: TraceConfig | None = None, *,
        max_flows: int | None = None,
    ) -> None:
        self.config = config or TraceConfig()
        if max_flows is not None and max_flows < 0:
            raise TraceError(f"max_flows must be >= 0, got {max_flows}")
        self.max_flows = max_flows
        base = INTERNAL_STREAM_BASE
        self._hosts = [base + 10 + i for i in range(self.config.num_hosts)]

    def is_internal(self, ip: int) -> bool:
        return private_internal(ip)

    @property
    def internal_hosts(self) -> list[int]:
        return list(self._hosts)

    def _machines(self, rng: random.Random) -> list[_HostMachine]:
        c = self.config
        reply_p = c.service_reply_probability or self.DEFAULT_REPLY_PROBABILITY
        unreach_p = (
            c.scan_unreachable_probability
            or self.DEFAULT_UNREACHABLE_PROBABILITY
        )
        machines: list[_HostMachine] = []
        cursor = iter(self._hosts)
        for _ in range(c.num_normal):
            machines.append(_BenignClient(
                next(cursor), rng,
                rate=max(c.normal_session_rate * 20, 1e-6),
                dns_fraction=1.0 - c.normal_direct_probability,
                reply_p=reply_p,
            ))
        for _ in range(c.num_servers):
            machines.append(_ServerHost(
                next(cursor), rng, rate=max(c.server_inbound_rate, 1e-6),
            ))
        for _ in range(c.num_p2p):
            machines.append(_BenignClient(
                next(cursor), rng, rate=max(c.p2p_contact_rate, 1e-6),
                dns_fraction=c.p2p_dns_fraction, reply_p=reply_p,
            ))
        for _ in range(c.num_blaster):
            machines.append(_BlasterHost(
                next(cursor), rng, rate=max(c.blaster_scan_rate, 1e-6),
                unreachable_p=unreach_p,
            ))
        for _ in range(c.num_welchia):
            machines.append(_WelchiaHost(
                next(cursor), rng,
                rate=max(
                    c.welchia_sweep_rate * c.welchia_active_fraction, 1e-6
                ),
                probe_p=c.welchia_probe_probability,
                unreachable_p=unreach_p,
            ))
        return machines

    def __iter__(self) -> Iterator[FlowRecord]:
        rng = random.Random(f"stream:{self.config.seed}")
        duration = self.config.duration
        machines = self._machines(rng)
        # Heap of (next_time, tiebreak, machine); tiebreak keeps the
        # ordering total (machines are not comparable).
        ready = [
            (m.next_time, i, m)
            for i, m in enumerate(machines)
            if m.next_time < duration
        ]
        heapq.heapify(ready)
        pending: list[tuple[float, int, FlowRecord]] = []
        emitted = 0
        serial = len(machines)
        cap = self.max_flows
        while ready or pending:
            # Pump machines until the earliest buffered record is safe
            # to release (no machine can still emit anything earlier).
            while ready and (not pending or ready[0][0] <= pending[0][0]):
                _, _, machine = heapq.heappop(ready)
                for record in machine.step(rng):
                    serial += 1
                    heapq.heappush(pending, (record.time, serial, record))
                if machine.next_time < duration:
                    serial += 1
                    heapq.heappush(
                        ready, (machine.next_time, serial, machine)
                    )
            if not pending:
                continue
            _, _, record = heapq.heappop(pending)
            yield record
            emitted += 1
            if cap is not None and emitted >= cap:
                return


#: Streamed synthetic hosts live in the same 10.1.0.0/16 as batch traces.
INTERNAL_STREAM_BASE = (10 << 24) | (1 << 16)
