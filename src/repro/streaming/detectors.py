"""Online detectors over flow streams: one interface, three families.

Every detector consumes time-ordered :class:`FlowRecord` objects via
``observe`` and yields timestamped events; ``finish`` flushes whatever
the end of the stream makes decidable (pending connection timeouts,
the final window).  Events come in two flavors:

* :class:`Verdict` — "this host looks infected" with a reason and score;
* :class:`QuarantineAction` — the containment decision itself, emitted
  at most once per host per detector (the paper's quarantine trigger).

Families:

* :class:`ContactRateDetector` — the paper's signal: distinct
  destinations contacted per window.  With exact estimators its
  per-window counts equal :func:`repro.traces.windows.per_host_counts`
  (the stream-vs-batch parity contract, asserted by test); with
  :class:`~repro.streaming.estimators.VirtualHyperLogLog` the per-host
  state drops to a few shared bytes.
* :class:`FailureRatioDetector` — connection-failure containment
  (Zhou/Zhou/Chen/Kreidl): count unanswered SYNs and ICMP unreachables
  per host, quarantine on failure count + failure ratio.  Its failure
  semantics are byte-for-byte those of
  :meth:`repro.traces.records.Trace.failed_contacts`, including the
  end-of-stream flush, so batch and stream agree exactly.
* :class:`ThrottleDetector` — adapter over the existing
  :mod:`repro.throttle` policies (Williamson / DNS): a host whose
  per-contact delay exceeds ``detect_delay`` is flagged.  This is the
  baseline the failure detector is compared against in the golden
  detection-latency fixture.

:class:`DetectionEngine` fans one stream out to several detectors and
collects events plus flow counts — the common core under the CLI, the
``/v1/stream`` endpoint, the evaluation harness, and the bench scenario.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from ..throttle.base import Throttle
from ..throttle.dns_throttle import DnsThrottle
from ..throttle.williamson import WilliamsonThrottle
from ..traces.dns import DEFAULT_DNS_TTL, DnsCache
from ..traces.records import (
    DEFAULT_FAILURE_TIMEOUT,
    FlowRecord,
    Protocol,
    TraceError,
)
from .estimators import ExactCounter, ExactDistinct

__all__ = [
    "Verdict",
    "QuarantineAction",
    "Detector",
    "ContactRateDetector",
    "FailureRatioDetector",
    "ThrottleDetector",
    "DetectionEngine",
    "make_detector",
]


@dataclass(slots=True, frozen=True)
class Verdict:
    """A detector's judgement about one host at one moment."""

    time: float
    host: int
    detector: str
    kind: str  # "infected"
    reason: str
    score: float

    def to_dict(self) -> dict:
        return {
            "event": "verdict",
            "time": self.time,
            "host": self.host,
            "detector": self.detector,
            "kind": self.kind,
            "reason": self.reason,
            "score": self.score,
        }


@dataclass(slots=True, frozen=True)
class QuarantineAction:
    """A containment decision for one host (at most one per detector)."""

    time: float
    host: int
    detector: str
    action: str  # "quarantine"
    reason: str

    def to_dict(self) -> dict:
        return {
            "event": "action",
            "time": self.time,
            "host": self.host,
            "detector": self.detector,
            "action": self.action,
            "reason": self.reason,
        }


Event = Verdict | QuarantineAction


class Detector:
    """Base class: stateful online detector over a time-ordered stream."""

    name: str = "detector"

    def __init__(self, *, internal: Callable[[int], bool]) -> None:
        self._internal = internal
        self._quarantined: set[int] = set()
        self._last_time = float("-inf")

    @property
    def quarantined(self) -> frozenset[int]:
        """Hosts this detector has quarantined so far."""
        return frozenset(self._quarantined)

    def observe(self, record: FlowRecord) -> list[Event]:
        """Ingest one record; returns any events it triggers."""
        if record.time < self._last_time:
            raise TraceError(
                f"records must be time-ordered: {record.time} after "
                f"{self._last_time}"
            )
        self._last_time = record.time
        return self._observe(record)

    def finish(self) -> list[Event]:
        """Flush end-of-stream decisions (final window, pending timeouts)."""
        return []

    def _observe(self, record: FlowRecord) -> list[Event]:
        raise NotImplementedError

    def _quarantine(
        self, t: float, host: int, reason: str, score: float
    ) -> list[Event]:
        """Emit a verdict, plus the action if the host is newly flagged."""
        events: list[Event] = [
            Verdict(
                time=t, host=host, detector=self.name,
                kind="infected", reason=reason, score=score,
            )
        ]
        if host not in self._quarantined:
            self._quarantined.add(host)
            events.append(
                QuarantineAction(
                    time=t, host=host, detector=self.name,
                    action="quarantine", reason=reason,
                )
            )
        return events

    def memory_bytes(self) -> int | None:
        """Estimator-bank bytes, if this detector uses compact state."""
        return None


class ContactRateDetector(Detector):
    """Windowed distinct-destination counting (the paper's Figure 9 signal).

    Counts, per internal host and per tumbling ``window``, the distinct
    external destinations of initiated outbound flows; a window count at
    or above ``threshold`` quarantines the host.  With the default
    :class:`ExactDistinct` estimator the counts replicate
    :func:`repro.traces.windows.per_host_counts` under
    ``Refinement.ALL`` exactly; pass a
    :class:`~repro.streaming.estimators.VirtualHyperLogLog` for the
    hyper-compact variant (the bank is reset at window boundaries, so
    load stays in its documented-accuracy regime).
    """

    name = "contact_rate"

    def __init__(
        self, *, internal: Callable[[int], bool],
        window: float = 5.0, threshold: float = 100.0,
        estimator=None,
    ) -> None:
        super().__init__(internal=internal)
        if window <= 0:
            raise TraceError(f"window must be positive, got {window}")
        if threshold <= 0:
            raise TraceError(f"threshold must be positive, got {threshold}")
        self.window = window
        self.threshold = threshold
        self.estimator = estimator if estimator is not None else ExactDistinct()
        self._current_window = 0
        self._active_hosts: set[int] = set()
        #: per-host per-window counts kept only in exact mode (parity).
        self.window_counts: dict[int, dict[int, int]] = {}
        self._exact = isinstance(self.estimator, ExactDistinct)

    def _flush_window(self, boundary_time: float) -> list[Event]:
        events: list[Event] = []
        estimates = self.estimator.estimate_many(sorted(self._active_hosts))
        for host, count in estimates.items():
            if self._exact:
                self.window_counts.setdefault(host, {})[
                    self._current_window
                ] = int(count)
            if count >= self.threshold:
                events.extend(
                    self._quarantine(
                        boundary_time, host,
                        f"window_rate>={self.threshold:g}", float(count),
                    )
                )
        self._active_hosts.clear()
        self.estimator.reset()
        return events

    def _observe(self, record: FlowRecord) -> list[Event]:
        events: list[Event] = []
        index = int(record.time // self.window)
        if index != self._current_window:
            # The closing window's boundary, not the new record's window
            # (windows may be skipped entirely during quiet spells).
            events.extend(
                self._flush_window((self._current_window + 1) * self.window)
            )
            self._current_window = index
        if (
            record.initiates_contact
            and self._internal(record.src)
            and not self._internal(record.dst)
        ):
            self._active_hosts.add(record.src)
            self.estimator.add(record.src, record.dst)
        return events

    def finish(self) -> list[Event]:
        return self._flush_window((self._current_window + 1) * self.window)

    def memory_bytes(self) -> int | None:
        return getattr(self.estimator, "memory_bytes", None)


class FailureRatioDetector(Detector):
    """Connection-failure-ratio containment.

    Failure signals (identical to
    :meth:`~repro.traces.records.Trace.failed_contacts`):

    * a TCP SYN from an internal host unanswered within ``timeout`` —
      an answer is any non-SYN TCP segment back from the target, and it
      clears every outstanding SYN for that (host, target) pair;
    * an ICMP unreachable from the target — fails every outstanding
      contact (SYN or echo) toward it.

    Per-host failure and attempt tallies go through pluggable counter
    estimators (:class:`ExactCounter` by default;
    :class:`~repro.streaming.estimators.CountMinSketch` for the
    hyper-compact variant — count-min never underestimates, so
    compaction can only make containment *more* aggressive, never
    blind).  A host is quarantined when its failures reach
    ``min_failures`` and the failure/attempt ratio reaches
    ``ratio_threshold``.
    """

    name = "failure_ratio"

    def __init__(
        self, *, internal: Callable[[int], bool],
        timeout: float = DEFAULT_FAILURE_TIMEOUT,
        min_failures: int = 16, ratio_threshold: float = 0.5,
        failures=None, attempts=None,
    ) -> None:
        super().__init__(internal=internal)
        if timeout <= 0:
            raise TraceError(f"timeout must be positive, got {timeout}")
        if min_failures < 1:
            raise TraceError(
                f"min_failures must be >= 1, got {min_failures}"
            )
        if not 0.0 < ratio_threshold <= 1.0:
            raise TraceError(
                f"ratio_threshold must be in (0, 1], got {ratio_threshold}"
            )
        self.timeout = timeout
        self.min_failures = min_failures
        self.ratio_threshold = ratio_threshold
        self.failures = failures if failures is not None else ExactCounter()
        self.attempts = attempts if attempts is not None else ExactCounter()
        # Pending-contact tracking (mirrors Trace.failed_contacts).
        # Entry: [time, src, dst, is_tcp, alive]
        self._queue: deque[list] = deque()
        self._by_pair: dict[tuple[int, int], deque[list]] = {}
        #: (time, src, dst, reason) of every failure, in detection order —
        #: the parity hook against Trace.failed_contacts.
        self.failure_log: list[tuple[float, int, int, str]] = []

    def _fail(self, detected_at: float, entry: list, reason: str) -> list[Event]:
        entry[4] = False
        host = entry[1]
        self.failure_log.append((detected_at, host, entry[2], reason))
        fail_count = self.failures.add(host)
        attempt_count = max(self.attempts.estimate(host), fail_count)
        ratio = fail_count / attempt_count
        if fail_count >= self.min_failures and ratio >= self.ratio_threshold:
            return self._quarantine(
                detected_at, host,
                f"failures>={self.min_failures},ratio>="
                f"{self.ratio_threshold:g}",
                float(fail_count),
            )
        return []

    def _expire(self, now: float | None) -> list[Event]:
        events: list[Event] = []
        queue = self._queue
        while queue and (
            now is None or queue[0][0] + self.timeout < now
        ):
            entry = queue.popleft()
            t, src, dst, is_tcp, alive = entry
            if alive and is_tcp:
                events.extend(self._fail(t + self.timeout, entry, "timeout"))
            entry[4] = False
            bucket = self._by_pair.get((src, dst))
            if bucket and bucket[0] is entry:
                bucket.popleft()
                if not bucket:
                    del self._by_pair[(src, dst)]
        return events

    def _observe(self, record: FlowRecord) -> list[Event]:
        events = self._expire(record.time)
        if record.protocol is Protocol.TCP and not record.tcp_syn:
            for entry in self._by_pair.pop((record.dst, record.src), ()):
                entry[4] = False
        elif record.icmp_unreachable:
            for entry in self._by_pair.pop((record.dst, record.src), ()):
                if entry[4]:
                    events.extend(
                        self._fail(record.time, entry, "unreachable")
                    )
        elif (
            record.initiates_contact
            and record.protocol is not Protocol.UDP
            and self._internal(record.src)
        ):
            self.attempts.add(record.src)
            entry = [
                record.time, record.src, record.dst,
                record.protocol is Protocol.TCP, True,
            ]
            self._queue.append(entry)
            self._by_pair.setdefault(
                (record.src, record.dst), deque()
            ).append(entry)
        return events

    def finish(self) -> list[Event]:
        """Flush every pending SYN as a timeout (batch-parity semantics)."""
        return self._expire(None)

    def memory_bytes(self) -> int | None:
        total = 0
        for estimator in (self.failures, self.attempts):
            nbytes = getattr(estimator, "memory_bytes", None)
            if nbytes is None:
                return None
            total += nbytes
        return total


class ThrottleDetector(Detector):
    """Adapter: per-host :mod:`repro.throttle` policies as a detector.

    Each internal host gets its own throttle instance; outbound
    initiated contacts are offered in time order.  A host whose contact
    is delayed by at least ``detect_delay`` seconds is flagged — the
    standard "a growing delay queue *is* the detection" reading of
    Williamson's throttle.  DNS answers feed a shared
    :class:`~repro.traces.dns.DnsCache` so the DNS throttle sees the
    same translation state as the batch analysis; inbound initiations
    are forwarded to ``note_inbound`` when the policy tracks
    prior contacts.
    """

    name = "throttle"

    def __init__(
        self, *, internal: Callable[[int], bool],
        factory: Callable[[], Throttle],
        detect_delay: float = 30.0,
        dns_ttl: float = DEFAULT_DNS_TTL,
    ) -> None:
        super().__init__(internal=internal)
        if detect_delay <= 0:
            raise TraceError(
                f"detect_delay must be positive, got {detect_delay}"
            )
        self.factory = factory
        self.detect_delay = detect_delay
        self._throttles: dict[int, Throttle] = {}
        self._dns = DnsCache(ttl=dns_ttl)
        probe = factory()
        self.name = f"throttle_{probe.name}"

    def _throttle_for(self, host: int) -> Throttle:
        throttle = self._throttles.get(host)
        if throttle is None:
            throttle = self._throttles[host] = self.factory()
        return throttle

    def _observe(self, record: FlowRecord) -> list[Event]:
        self._dns.observe(record)
        src_internal = self._internal(record.src)
        dst_internal = self._internal(record.dst)
        if (
            not src_internal and dst_internal and record.initiates_contact
        ):
            throttle = self._throttle_for(record.dst)
            note = getattr(throttle, "note_inbound", None)
            if note is not None:
                note(record.src)
            return []
        if not (
            src_internal and not dst_internal and record.initiates_contact
        ):
            return []
        host = record.src
        throttle = self._throttle_for(host)
        decision = throttle.offer(
            record.time, record.dst,
            dns_valid=self._dns.has_valid_translation(
                host, record.dst, record.time
            ),
        )
        delay = decision.delay(record.time)
        if delay >= self.detect_delay:
            return self._quarantine(
                record.time, host,
                f"delay>={self.detect_delay:g}s", delay,
            )
        return []

    def stats_for(self, host: int):
        """The underlying throttle's stats (None if never offered)."""
        throttle = self._throttles.get(host)
        return throttle.stats if throttle is not None else None


def make_detector(
    kind: str, *, internal: Callable[[int], bool], **kwargs
) -> Detector:
    """Build a detector by short name (CLI / service / bench plumbing).

    ``kind`` is one of ``contact-rate``, ``failure-ratio``,
    ``williamson``, ``dns-throttle``.
    """
    if kind == "contact-rate":
        return ContactRateDetector(internal=internal, **kwargs)
    if kind == "failure-ratio":
        return FailureRatioDetector(internal=internal, **kwargs)
    if kind == "williamson":
        detect_delay = kwargs.pop("detect_delay", 30.0)
        return ThrottleDetector(
            internal=internal, factory=lambda: WilliamsonThrottle(**kwargs),
            detect_delay=detect_delay,
        )
    if kind == "dns-throttle":
        detect_delay = kwargs.pop("detect_delay", 30.0)
        return ThrottleDetector(
            internal=internal, factory=lambda: DnsThrottle(**kwargs),
            detect_delay=detect_delay,
        )
    raise TraceError(f"unknown detector kind: {kind!r}")


class DetectionEngine:
    """Fan one time-ordered stream out to several detectors.

    The engine is the shared core under every serving surface: feed it
    records (one at a time or in chunks), read back events; ``finish``
    flushes the detectors once the stream ends.
    """

    def __init__(self, detectors: Iterable[Detector]) -> None:
        self.detectors = list(detectors)
        if not self.detectors:
            raise TraceError("engine needs at least one detector")
        self.flows = 0
        self.events: list[Event] = []
        self._finished = False

    def feed(self, record: FlowRecord) -> list[Event]:
        """Process one record through every detector."""
        if self._finished:
            raise TraceError("engine already finished")
        self.flows += 1
        new: list[Event] = []
        for detector in self.detectors:
            new.extend(detector.observe(record))
        self.events.extend(new)
        return new

    def feed_many(self, records: Iterable[FlowRecord]) -> list[Event]:
        """Process a chunk of records; returns the chunk's events."""
        before = len(self.events)
        for record in records:
            self.feed(record)
        return self.events[before:]

    def finish(self) -> list[Event]:
        """Flush every detector; idempotent."""
        if self._finished:
            return []
        self._finished = True
        new: list[Event] = []
        for detector in self.detectors:
            new.extend(detector.finish())
        self.events.extend(new)
        return new

    def quarantined(self) -> dict[str, frozenset[int]]:
        """Quarantined host sets, per detector."""
        return {d.name: d.quarantined for d in self.detectors}

    def estimator_bytes_per_host(self, capacity: int) -> float | None:
        """Total compact-estimator bytes amortized per host of capacity.

        ``None`` when any detector keeps unbounded (exact) state — the
        budget assertion only applies to all-compact engines.
        """
        total = 0
        for detector in self.detectors:
            nbytes = detector.memory_bytes()
            if nbytes is None:
                return None
            total += nbytes
        return total / max(capacity, 1)
