"""Evaluation harness: detection latency, false positives, throughput.

:func:`evaluate_detectors` replays a labeled synthetic trace through a
:class:`~repro.streaming.detectors.DetectionEngine` and scores each
detector on the three axes the streaming work is judged by:

* **detection latency** — per worm host, quarantine time minus the
  host's first outbound worm activity; plus the fraction of worms
  caught at all;
* **false positives** — benign (normal/server/P2P) hosts quarantined,
  broken out per class;
* **throughput** — flows per second through the engine (wall clock).

The result dict is JSON-stable (sorted keys, no object references) so
it can feed the golden detection-latency fixture and the bench matrix
unchanged.  :func:`throughput_run` is the bench-facing variant: it
drives the online :class:`~repro.streaming.stream.SyntheticFlowStream`
(no trace materialization) and reports only flow counts and timing —
the flows/sec axis the bench-gate CI watches.
"""

from __future__ import annotations

import time as _time
from statistics import mean, median
from typing import Callable

from ..traces.records import HostClass, Trace
from ..traces.synth import TraceConfig, generate_trace
from .detectors import DetectionEngine, Detector, QuarantineAction
from .stream import SyntheticFlowStream, TraceReplayStream

__all__ = ["evaluate_detectors", "evaluate_synthetic", "throughput_run"]

_BENIGN = (HostClass.NORMAL, HostClass.SERVER, HostClass.P2P)
_WORM = (HostClass.WORM_BLASTER, HostClass.WORM_WELCHIA)


def _first_activity(trace: Trace, hosts: set[int]) -> dict[int, float]:
    """First outbound initiation time per host (infection onset)."""
    first: dict[int, float] = {}
    for record in trace.records:
        if (
            record.src in hosts
            and record.src not in first
            and record.initiates_contact
        ):
            first[record.src] = record.time
    return first


def evaluate_detectors(
    trace: Trace,
    detector_factories: dict[str, Callable[[Callable[[int], bool]], Detector]],
) -> dict:
    """Score detectors on a labeled trace; returns a JSON-stable dict.

    ``detector_factories`` maps a report label to a factory taking the
    stream's ``is_internal`` predicate — each detector gets its own
    fresh replay pass so policies never interfere.
    """
    worm_hosts = {
        host for cls in _WORM for host in trace.hosts_of_class(cls)
    }
    onset = _first_activity(trace, worm_hosts)
    benign_by_class = {
        cls.value: set(trace.hosts_of_class(cls)) for cls in _BENIGN
    }
    num_benign = sum(len(hosts) for hosts in benign_by_class.values())

    results: dict[str, dict] = {}
    for label in sorted(detector_factories):
        factory = detector_factories[label]
        stream = TraceReplayStream(trace)
        detector = factory(stream.is_internal)
        engine = DetectionEngine([detector])
        started = _time.perf_counter()
        for record in stream:
            engine.feed(record)
        engine.finish()
        elapsed = _time.perf_counter() - started

        quarantine_times: dict[int, float] = {}
        for event in engine.events:
            if (
                isinstance(event, QuarantineAction)
                and event.host not in quarantine_times
            ):
                quarantine_times[event.host] = event.time

        latencies = sorted(
            quarantine_times[host] - onset[host]
            for host in worm_hosts
            if host in quarantine_times and host in onset
        )
        caught = len(latencies)
        false_positives = {
            cls: sorted(hosts & set(quarantine_times))
            for cls, hosts in benign_by_class.items()
        }
        num_fp = sum(len(v) for v in false_positives.values())
        results[label] = {
            "detector": detector.name,
            "worm_hosts": len(worm_hosts),
            "caught": caught,
            "catch_rate": round(caught / max(len(worm_hosts), 1), 6),
            "detection_latency_s": {
                "mean": round(mean(latencies), 6) if latencies else None,
                "median": round(median(latencies), 6) if latencies else None,
                "max": round(max(latencies), 6) if latencies else None,
                "per_host": [round(v, 6) for v in latencies],
            },
            "false_positives": {
                cls: hosts for cls, hosts in sorted(false_positives.items())
            },
            "false_positive_rate": round(num_fp / max(num_benign, 1), 6),
            "flows": engine.flows,
            "events": len(engine.events),
            "elapsed_s": round(elapsed, 6),
        }
    return {
        "num_worm_hosts": len(worm_hosts),
        "num_benign_hosts": num_benign,
        "detectors": results,
    }


def throughput_run(
    config: TraceConfig,
    engine: DetectionEngine,
    *,
    max_flows: int | None = None,
) -> dict:
    """Drive a synthetic online stream through ``engine``; time it.

    No trace is materialized: this is the memory-bounded load path the
    smoke run and the ``stream_detect`` bench scenario measure.
    """
    stream = SyntheticFlowStream(config, max_flows=max_flows)
    started = _time.perf_counter()
    for record in stream:
        engine.feed(record)
    engine.finish()
    elapsed = _time.perf_counter() - started
    flows_per_sec = engine.flows / elapsed if elapsed > 0 else 0.0
    bytes_per_host = engine.estimator_bytes_per_host(config.num_hosts)
    return {
        "flows": engine.flows,
        "events": len(engine.events),
        "quarantined": {
            name: len(hosts) for name, hosts in engine.quarantined().items()
        },
        "elapsed_s": round(elapsed, 6),
        "flows_per_sec": round(flows_per_sec, 3),
        "estimator_bytes_per_host": (
            round(bytes_per_host, 3) if bytes_per_host is not None else None
        ),
    }


def evaluate_synthetic(
    config: TraceConfig,
    detector_factories: dict[str, Callable[[Callable[[int], bool]], Detector]],
) -> dict:
    """Generate the labeled trace for ``config`` and evaluate on it."""
    return evaluate_detectors(generate_trace(config), detector_factories)
