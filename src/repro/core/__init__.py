"""The paper's primary contribution as a library: deployment-strategy
analysis for worm rate limiting (policies, the QuarantineStudy front door,
slowdown metrics, and canned per-figure scenarios)."""

from .policy import DeploymentLocation, DeploymentStrategy, RateLimitPolicy
from .quarantine import QuarantineStudy
from .slowdown import SlowdownReport, compare_times, slowdown_factor
from .sweeps import (
    SweepPoint,
    SweepResult,
    sweep_backbone_rate,
    sweep_detection_latency,
    sweep_host_coverage,
)

__all__ = [
    "DeploymentLocation",
    "DeploymentStrategy",
    "RateLimitPolicy",
    "QuarantineStudy",
    "SlowdownReport",
    "compare_times",
    "slowdown_factor",
    "SweepPoint",
    "SweepResult",
    "sweep_backbone_rate",
    "sweep_detection_latency",
    "sweep_host_coverage",
]
