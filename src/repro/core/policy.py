"""Deployment-policy descriptions: the paper's design space as data.

A :class:`RateLimitPolicy` says *how hard* a filter throttles; a
:class:`DeploymentStrategy` says *where* filters go.  Together they
parameterize both the analytical models and the simulator through
:mod:`repro.core.quarantine`, so a study can sweep the same policy across
deployment locations — the paper's central experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["DeploymentLocation", "RateLimitPolicy", "DeploymentStrategy"]


class DeploymentLocation(Enum):
    """Where rate-limiting filters are installed."""

    NONE = "none"
    HOSTS = "hosts"
    HUB = "hub"
    EDGE_ROUTERS = "edge_routers"
    BACKBONE_ROUTERS = "backbone_routers"


@dataclass(frozen=True)
class RateLimitPolicy:
    """How a deployed filter throttles.

    Attributes
    ----------
    rate:
        Allowed contact/packet rate per tick: the analytical ``beta2`` for
        host filters, or the per-link base rate for router filters.
    node_budget:
        Optional node-level forwarding budget (the star hub's ``beta``).
    weighted:
        Whether router-link capacities scale with routing-table occupancy
        (the paper's scheme); ignored for host filters.
    """

    rate: float
    node_budget: float | None = None
    weighted: bool = True

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.node_budget is not None and self.node_budget <= 0:
            raise ValueError(
                f"node_budget must be positive, got {self.node_budget}"
            )


@dataclass(frozen=True)
class DeploymentStrategy:
    """A (location, coverage, policy) triple.

    Attributes
    ----------
    location:
        Where the filters go.
    coverage:
        Fraction of eligible nodes that get a filter (only meaningful for
        host deployment; router deployments are all-or-nothing in the
        paper).
    policy:
        The throttle strength.
    """

    location: DeploymentLocation
    policy: RateLimitPolicy | None = None
    coverage: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError(
                f"coverage must be in [0, 1], got {self.coverage}"
            )
        if self.location is not DeploymentLocation.NONE and self.policy is None:
            raise ValueError(f"{self.location} deployment needs a policy")

    @property
    def label(self) -> str:
        """Display label, e.g. ``host_rl_30pct`` or ``backbone_rl``."""
        if self.location is DeploymentLocation.NONE:
            return "no_rl"
        if self.location is DeploymentLocation.HOSTS:
            return f"host_rl_{int(round(self.coverage * 100))}pct"
        return {
            DeploymentLocation.HUB: "hub_rl",
            DeploymentLocation.EDGE_ROUTERS: "edge_rl",
            DeploymentLocation.BACKBONE_ROUTERS: "backbone_rl",
        }[self.location]

    # Convenience constructors for the paper's standard cases ------------

    @classmethod
    def none(cls) -> "DeploymentStrategy":
        """No rate limiting anywhere (the baseline)."""
        return cls(location=DeploymentLocation.NONE)

    @classmethod
    def hosts(cls, coverage: float, rate: float) -> "DeploymentStrategy":
        """Filters on a fraction of end hosts."""
        return cls(
            location=DeploymentLocation.HOSTS,
            policy=RateLimitPolicy(rate=rate),
            coverage=coverage,
        )

    @classmethod
    def hub(cls, link_rate: float, node_budget: float) -> "DeploymentStrategy":
        """Star-topology hub filters (link rate + node budget)."""
        return cls(
            location=DeploymentLocation.HUB,
            policy=RateLimitPolicy(rate=link_rate, node_budget=node_budget),
        )

    @classmethod
    def edge(cls, base_rate: float, *, weighted: bool = True) -> "DeploymentStrategy":
        """Filters on edge routers' subnet-boundary links."""
        return cls(
            location=DeploymentLocation.EDGE_ROUTERS,
            policy=RateLimitPolicy(rate=base_rate, weighted=weighted),
        )

    @classmethod
    def backbone(
        cls, base_rate: float, *, weighted: bool = True
    ) -> "DeploymentStrategy":
        """Filters on all backbone-router links."""
        return cls(
            location=DeploymentLocation.BACKBONE_ROUTERS,
            policy=RateLimitPolicy(rate=base_rate, weighted=weighted),
        )
