"""QuarantineStudy: one front door over the models and the simulator.

The paper's method is always the same two-step: write down the ODE model
for a deployment strategy, then check it against packet-level simulation.
``QuarantineStudy`` packages that workflow:

>>> from repro import QuarantineStudy, DeploymentStrategy
>>> study = QuarantineStudy(num_nodes=1000, scan_rate=0.8, seed=7)
>>> curves = study.simulate_deployments(
...     [DeploymentStrategy.none(), DeploymentStrategy.backbone(0.02)],
...     max_ticks=300, num_runs=3)
>>> report = study.slowdown_report(curves, level=0.5)

Deployment strategies translate to declarative runner specs via
:meth:`QuarantineStudy.defense_spec_for` / :meth:`QuarantineStudy.spec_for`
(executed by :func:`repro.runner.run_ensemble`), and to analytical models
via :meth:`QuarantineStudy.analytical_model`.
"""

from __future__ import annotations

from collections.abc import Callable

from ..models.backbone import BackboneRateLimitModel
from ..models.base import EpidemicModel, Trajectory
from ..models.homogeneous import HomogeneousSIModel
from ..models.hub import HubRateLimitModel
from ..models.leaf import LeafRateLimitModel
from ..runner import (
    DefenseSpec,
    EnsembleResult,
    EnsembleSpec,
    RunSpec,
    TopologySpec,
    WormSpec,
    run_ensemble,
)
from ..simulator.defense import (
    DefenseDescriptor,
    deploy_backbone_rate_limit,
    deploy_edge_rate_limit,
    deploy_host_rate_limit,
    deploy_hub_rate_limit,
    no_defense,
)
from ..simulator.immunization import ImmunizationPolicy
from ..simulator.network import Network
from ..simulator.worms import LocalPreferentialWorm, RandomScanWorm, WormStrategy
from .policy import DeploymentLocation, DeploymentStrategy
from .slowdown import SlowdownReport, compare_times

__all__ = ["QuarantineStudy"]

Deployer = Callable[[Network], DefenseDescriptor]


class QuarantineStudy:
    """Compare rate-limiting deployment strategies on one scenario.

    Parameters
    ----------
    num_nodes:
        Topology size (1,000 in the paper's Internet experiments).
    scan_rate:
        Worm contact rate ``beta`` per infected host per tick.
    topology:
        ``"powerlaw"`` (default) or ``"star"``.
    local_preference:
        If set, the worm is local-preferential with this subnet bias;
        otherwise it scans uniformly at random.
    initial_infections:
        Hosts infected at tick 0 of each run.
    lan_delivery:
        Deliver same-subnet scans over the local LAN (broadcast domain)
        instead of through routed links.  Defaults to true on power-law
        topologies — a subnet is a LAN, so edge filters never see
        intra-subnet traffic — and false on the star, whose hub is the
        interconnect under test.
    seed:
        Base seed; run ``i`` of an experiment uses ``seed + i``.
    """

    def __init__(
        self,
        num_nodes: int = 1000,
        *,
        scan_rate: float = 0.8,
        topology: str = "powerlaw",
        local_preference: float | None = None,
        initial_infections: int = 5,
        lan_delivery: bool | None = None,
        seed: int = 42,
    ) -> None:
        if topology not in ("powerlaw", "star"):
            raise ValueError(
                f"topology must be 'powerlaw' or 'star', got {topology!r}"
            )
        self.num_nodes = num_nodes
        self.scan_rate = scan_rate
        self.topology = topology
        self.local_preference = local_preference
        self.initial_infections = initial_infections
        self.lan_delivery = (
            lan_delivery if lan_delivery is not None else topology == "powerlaw"
        )
        self.seed = seed

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------

    def network_factory(self) -> Callable[[int], Network]:
        """``seed -> Network`` builder matching this study's topology."""
        if self.topology == "star":
            num_nodes = self.num_nodes
            return lambda seed: Network.from_star(num_nodes)
        num_nodes = self.num_nodes
        return lambda seed: Network.from_powerlaw(num_nodes, seed=seed)

    def worm_factory(self) -> Callable[[], WormStrategy]:
        """Builder for this study's worm strategy."""
        if self.local_preference is None:
            return RandomScanWorm
        preference = self.local_preference
        return lambda: LocalPreferentialWorm(preference)

    def deployer_for(self, strategy: DeploymentStrategy) -> Deployer:
        """Translate a :class:`DeploymentStrategy` to a network deployer."""
        if strategy.location is DeploymentLocation.NONE:
            return no_defense
        policy = strategy.policy
        assert policy is not None  # enforced by DeploymentStrategy
        if strategy.location is DeploymentLocation.HOSTS:
            coverage, rate, seed = strategy.coverage, policy.rate, self.seed
            return lambda network: deploy_host_rate_limit(
                network, coverage, rate, seed=seed
            )
        if strategy.location is DeploymentLocation.HUB:
            budget = policy.node_budget
            if budget is None:
                raise ValueError("hub deployment needs a node_budget")
            rate = policy.rate
            return lambda network: deploy_hub_rate_limit(
                network, link_rate=rate, hub_budget=budget
            )
        if strategy.location is DeploymentLocation.EDGE_ROUTERS:
            rate, weighted = policy.rate, policy.weighted
            return lambda network: deploy_edge_rate_limit(
                network, rate, weighted=weighted
            )
        rate, weighted = policy.rate, policy.weighted
        return lambda network: deploy_backbone_rate_limit(
            network, rate, weighted=weighted
        )

    # ------------------------------------------------------------------
    # Simulation side (declarative specs, executed by repro.runner)
    # ------------------------------------------------------------------

    def topology_spec(self) -> TopologySpec:
        """This study's topology, as runner data."""
        return TopologySpec(kind=self.topology, num_nodes=self.num_nodes)

    def worm_spec(self) -> WormSpec:
        """This study's worm strategy, as runner data."""
        if self.local_preference is None:
            return WormSpec(kind="random")
        return WormSpec(
            kind="local_preferential",
            local_preference=self.local_preference,
        )

    def defense_spec_for(self, strategy: DeploymentStrategy) -> DefenseSpec:
        """Translate a :class:`DeploymentStrategy` to a runner spec.

        Host deployment pins its filter-placement seed to the study seed
        so every run of an ensemble throttles the same hosts (the fixed-
        deployment reading of the paper).
        """
        if strategy.location is DeploymentLocation.NONE:
            return DefenseSpec(kind="none")
        policy = strategy.policy
        assert policy is not None  # enforced by DeploymentStrategy
        if strategy.location is DeploymentLocation.HOSTS:
            return DefenseSpec(
                kind="hosts",
                rate=policy.rate,
                coverage=strategy.coverage,
                seed=self.seed,
            )
        if strategy.location is DeploymentLocation.HUB:
            if policy.node_budget is None:
                raise ValueError("hub deployment needs a node_budget")
            return DefenseSpec(
                kind="hub", rate=policy.rate, node_budget=policy.node_budget
            )
        kind = (
            "edge"
            if strategy.location is DeploymentLocation.EDGE_ROUTERS
            else "backbone"
        )
        return DefenseSpec(
            kind=kind, rate=policy.rate, weighted=policy.weighted
        )

    def spec_for(
        self,
        strategy: DeploymentStrategy,
        *,
        max_ticks: int = 200,
        num_runs: int = 10,
        immunization: ImmunizationPolicy | None = None,
    ) -> EnsembleSpec:
        """Full :class:`EnsembleSpec` for one deployment strategy."""
        template = RunSpec(
            topology=self.topology_spec(),
            worm=self.worm_spec(),
            defense=self.defense_spec_for(strategy),
            scan_rate=self.scan_rate,
            initial_infections=self.initial_infections,
            immunization=immunization,
            lan_delivery=self.lan_delivery,
            max_ticks=max_ticks,
        )
        return EnsembleSpec(
            template=template,
            num_runs=num_runs,
            base_seed=self.seed,
            label=strategy.label,
        )

    def run_deployments(
        self,
        strategies: list[DeploymentStrategy],
        *,
        max_ticks: int = 200,
        num_runs: int = 10,
        immunization: ImmunizationPolicy | None = None,
    ) -> dict[str, EnsembleResult]:
        """Full :class:`EnsembleResult` per strategy, keyed by label."""
        results: dict[str, EnsembleResult] = {}
        for strategy in strategies:
            results[strategy.label] = run_ensemble(
                self.spec_for(
                    strategy,
                    max_ticks=max_ticks,
                    num_runs=num_runs,
                    immunization=immunization,
                )
            )
        return results

    def simulate_deployments(
        self,
        strategies: list[DeploymentStrategy],
        *,
        max_ticks: int = 200,
        num_runs: int = 10,
        immunization: ImmunizationPolicy | None = None,
    ) -> dict[str, Trajectory]:
        """Averaged infection curve per strategy, keyed by label."""
        results = self.run_deployments(
            strategies,
            max_ticks=max_ticks,
            num_runs=num_runs,
            immunization=immunization,
        )
        return {label: result.mean for label, result in results.items()}

    # ------------------------------------------------------------------
    # Analytical side
    # ------------------------------------------------------------------

    def analytical_model(
        self, strategy: DeploymentStrategy
    ) -> EpidemicModel:
        """The paper's ODE model matching a deployment strategy.

        Host/leaf deployment maps to Eq. (3); hub deployment to
        Eqs. (4)–(5); backbone deployment to Eq. (6) with the link base
        rate interpreted as residual coverage.  Edge-router deployment has
        no single-curve model (it is two-level); use
        :class:`repro.models.EdgeRouterModel` directly.
        """
        n = float(self.num_nodes)
        if strategy.location is DeploymentLocation.NONE:
            return HomogeneousSIModel(
                n, self.scan_rate, initial_infected=self.initial_infections
            )
        policy = strategy.policy
        assert policy is not None
        if strategy.location is DeploymentLocation.HOSTS:
            return LeafRateLimitModel(
                n,
                strategy.coverage,
                self.scan_rate,
                policy.rate,
                initial_infected=self.initial_infections,
            )
        if strategy.location is DeploymentLocation.HUB:
            if policy.node_budget is None:
                raise ValueError("hub deployment needs a node_budget")
            return HubRateLimitModel(
                n,
                min(policy.rate, self.scan_rate),
                policy.node_budget,
                initial_infected=self.initial_infections,
            )
        if strategy.location is DeploymentLocation.BACKBONE_ROUTERS:
            # Backbone filters cover nearly all paths; the residual spread
            # comes from paths that dodge the backbone plus the leak.
            return BackboneRateLimitModel(
                n,
                self.scan_rate,
                path_coverage=0.95,
                residual_rate=policy.rate * n,
                initial_infected=self.initial_infections,
            )
        raise ValueError(
            "edge-router deployment is two-level; use "
            "repro.models.EdgeRouterModel directly"
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @staticmethod
    def slowdown_report(
        curves: dict[str, Trajectory],
        *,
        level: float = 0.5,
        baseline: str = "no_rl",
    ) -> SlowdownReport:
        """Times-to-level table across the compared strategies."""
        return compare_times(curves, baseline=baseline, level=level)
