"""Canned paper scenarios: one builder per figure / Section-7 statistic.

Every benchmark and example calls into this module, so the experiment
definitions live in exactly one place.  Each ``fig*`` function reproduces
the matching figure's curves; each ``sec7_*`` function reproduces one of
the trace study's in-text statistics.  Parameters default to values tuned
so the *shapes* (orderings, slowdown factors, crossovers) match the paper;
see EXPERIMENTS.md for the side-by-side numbers.

Simulation scenarios accept ``num_runs`` / ``max_ticks`` so the test suite
can run them small and the benchmark harness can run them at paper scale.
"""

from __future__ import annotations

import numpy as np

from ..models.backbone import BackboneRateLimitModel
from ..models.base import Trajectory
from ..models.combined import BackboneImmunizationModel
from ..models.edge import EdgeRouterModel, WormKind
from ..models.homogeneous import HomogeneousSIModel
from ..models.hub import HubRateLimitModel
from ..models.immunization import DelayedImmunizationModel
from ..models.leaf import LeafRateLimitModel
from ..runner import (
    DefenseSpec,
    EnsembleSpec,
    RunSpec,
    TopologySpec,
    WormSpec,
    run_ensemble,
)
from ..simulator.immunization import ImmunizationPolicy
from ..traces.analysis import (
    RateLimitTable,
    empirical_cdf,
    peak_scan_rate,
    recommend_rate_limits,
    window_size_study,
)
from ..traces.classify import census, classify_hosts
from ..traces.records import HostClass, Trace
from ..traces.synth import TraceConfig, generate_trace
from ..traces.windows import Refinement, count_contacts
from ..throttle.dns_throttle import DnsThrottle
from ..throttle.replay import ReplayResult, replay_class, worm_slowdown
from ..throttle.williamson import WilliamsonThrottle
from .policy import DeploymentStrategy
from .quarantine import QuarantineStudy

__all__ = [
    "fig1a_star_analytical",
    "fig1b_star_simulation",
    "fig2_host_analytical",
    "fig3_edge_analytical",
    "fig4_powerlaw_simulation",
    "fig5_ensembles",
    "fig5_edge_localpref_simulation",
    "fig6_localpref_deployments",
    "fig7a_immunization_analytical",
    "fig7b_immunization_rl_analytical",
    "fig8a_immunization_simulation",
    "fig8b_immunization_rl_simulation",
    "fig9_contact_rate_cdfs",
    "fig10_trace_rate_models",
    "sec7_host_census",
    "sec7_rate_limit_tables",
    "sec7_window_size_study",
    "sec7_worm_peak_rates",
    "sec7_throttle_replay",
    "shared_trace",
]

# ---------------------------------------------------------------------------
# Star topology (Section 4, Figure 1)
# ---------------------------------------------------------------------------

#: Star size used throughout Section 4.
STAR_NODES = 200
#: Worm contact rate in the star experiments.
STAR_BETA1 = 0.8
#: Throttled host contact rate (beta2 << beta1).
STAR_BETA2 = 0.01
#: Hub node budget tuned so hub RL ~3x slower to 60% than 30% leaf RL.
STAR_HUB_BUDGET = 4.0
#: Per-link rate at the hub ("10 packets per second" in the paper).
STAR_LINK_RATE = 10.0


def fig1a_star_analytical(
    *, t_end: float = 50.0, num_points: int = 400
) -> dict[str, Trajectory]:
    """Figure 1(a): analytical star-graph curves.

    No RL and 10% / 30% leaf RL are Eq. (3) logistics; hub RL is the
    Eq. (4)/(5) piecewise model.
    """
    leaves = STAR_NODES - 1
    curves: dict[str, Trajectory] = {}
    cases = {
        "no_rl": LeafRateLimitModel(leaves, 0.0, STAR_BETA1, STAR_BETA2),
        "leaf_rl_10pct": LeafRateLimitModel(leaves, 0.10, STAR_BETA1, STAR_BETA2),
        "leaf_rl_30pct": LeafRateLimitModel(leaves, 0.30, STAR_BETA1, STAR_BETA2),
        "hub_rl": HubRateLimitModel(leaves, STAR_BETA1, STAR_HUB_BUDGET),
    }
    for label, model in cases.items():
        curves[label] = model.solve(t_end, num_points=num_points)
    return curves


def fig1b_star_simulation(
    *, num_runs: int = 10, max_ticks: int = 60
) -> dict[str, Trajectory]:
    """Figure 1(b): simulated star-graph curves (10-run averages)."""
    study = QuarantineStudy(
        STAR_NODES,
        scan_rate=STAR_BETA1,
        topology="star",
        initial_infections=2,
        seed=42,
    )
    strategies = [
        DeploymentStrategy.none(),
        DeploymentStrategy.hosts(0.10, STAR_BETA2),
        DeploymentStrategy.hosts(0.30, STAR_BETA2),
        DeploymentStrategy.hub(STAR_LINK_RATE, STAR_HUB_BUDGET),
    ]
    curves = study.simulate_deployments(
        strategies, max_ticks=max_ticks, num_runs=num_runs
    )
    # Match Figure 1's legend wording for the leaf cases.
    return {
        "no_rl": curves["no_rl"],
        "leaf_rl_10pct": curves["host_rl_10pct"],
        "leaf_rl_30pct": curves["host_rl_30pct"],
        "hub_rl": curves["hub_rl"],
    }


# ---------------------------------------------------------------------------
# Host-based rate limiting (Section 5.1, Figure 2)
# ---------------------------------------------------------------------------


def fig2_host_analytical(
    *,
    population: int = 1000,
    beta1: float = 0.8,
    beta2: float = 0.01,
    t_end: float = 1000.0,
    num_points: int = 800,
) -> dict[str, Trajectory]:
    """Figure 2: Eq. (3) curves for q in {0, 5, 50, 80, 100}%."""
    curves: dict[str, Trajectory] = {}
    for q in (0.0, 0.05, 0.50, 0.80, 1.00):
        label = "no_rl" if q == 0.0 else f"host_rl_{int(q * 100)}pct"
        model = LeafRateLimitModel(population, q, beta1, beta2)
        curves[label] = model.solve(t_end, num_points=num_points)
    return curves


# ---------------------------------------------------------------------------
# Edge-router rate limiting, analytical (Section 5.2, Figure 3)
# ---------------------------------------------------------------------------


def fig3_edge_analytical(
    *,
    num_subnets: int = 100,
    hosts_per_subnet: int = 10,
    scan_rate: float = 0.8,
    cross_rate_limit: float = 0.01,
    t_end: float = 300.0,
) -> dict[str, dict[str, Trajectory]]:
    """Figure 3: two-level curves for three cases.

    Returns ``{"across": {...}, "within": {...}}``, each holding the
    curves for: local-preferential with no RL, local-preferential with
    edge RL, and random propagation with edge RL.
    """
    local = WormKind.local_preferential(0.8)
    rand = WormKind.random(num_subnets)
    cases = {
        "local_pref_no_rl": EdgeRouterModel(
            num_subnets, hosts_per_subnet, scan_rate, local
        ),
        "local_pref_rl": EdgeRouterModel(
            num_subnets,
            hosts_per_subnet,
            scan_rate,
            local,
            cross_rate_limit=cross_rate_limit,
        ),
        "random_rl": EdgeRouterModel(
            num_subnets,
            hosts_per_subnet,
            scan_rate,
            rand,
            cross_rate_limit=cross_rate_limit,
        ),
    }
    return {
        "across": {
            label: model.subnet_trajectory(t_end)
            for label, model in cases.items()
        },
        "within": {
            label: model.within_subnet_trajectory(t_end)
            for label, model in cases.items()
        },
    }


# ---------------------------------------------------------------------------
# Power-law deployments, simulated (Section 5.4, Figure 4)
# ---------------------------------------------------------------------------

#: Base link rate for router deployments, tuned so backbone RL lands near
#: the paper's ~5x slowdown to 50% infection.
ROUTER_BASE_RATE = 0.02
#: Throttled host scan rate for host deployments.
HOST_RL_RATE = 0.01


def fig4_powerlaw_simulation(
    *,
    num_nodes: int = 1000,
    num_runs: int = 10,
    max_ticks: int = 400,
) -> dict[str, Trajectory]:
    """Figure 4: random worm; none vs 5% hosts vs edge vs backbone."""
    study = QuarantineStudy(num_nodes, scan_rate=0.8, seed=42)
    strategies = [
        DeploymentStrategy.none(),
        DeploymentStrategy.hosts(0.05, HOST_RL_RATE),
        DeploymentStrategy.edge(ROUTER_BASE_RATE),
        DeploymentStrategy.backbone(ROUTER_BASE_RATE),
    ]
    return study.simulate_deployments(
        strategies, max_ticks=max_ticks, num_runs=num_runs
    )


# ---------------------------------------------------------------------------
# Edge RL vs worm strategy, simulated (Figure 5)
# ---------------------------------------------------------------------------


def fig5_ensembles(
    *,
    num_nodes: int = 1000,
    num_runs: int = 10,
    max_ticks: int = 150,
    base_seed: int = 42,
) -> dict[str, EnsembleSpec]:
    """Figure 5's four ensembles (worm strategy x edge RL), as specs.

    The ``seed_subnets`` observation mode records each run's infected
    fraction *within the subnets holding the initial seeds* rather than
    network-wide — the paper's "within subnets" view.
    """
    specs: dict[str, EnsembleSpec] = {}
    worms = {
        "random": WormSpec(kind="random"),
        "local_pref": WormSpec(kind="local_preferential", local_preference=0.8),
    }
    defenses = {
        "no_rl": DefenseSpec(kind="none"),
        "edge_rl": DefenseSpec(kind="edge", rate=ROUTER_BASE_RATE),
    }
    for worm_name, worm in worms.items():
        for defense_name, defense in defenses.items():
            label = f"{worm_name}_{defense_name}"
            specs[label] = EnsembleSpec(
                template=RunSpec(
                    topology=TopologySpec(num_nodes=num_nodes),
                    worm=worm,
                    defense=defense,
                    scan_rate=0.8,
                    initial_infections=5,
                    lan_delivery=True,
                    max_ticks=max_ticks,
                    observe="seed_subnets",
                ),
                num_runs=num_runs,
                base_seed=base_seed,
                label=label,
            )
    return specs


def fig5_edge_localpref_simulation(
    *,
    num_nodes: int = 1000,
    num_runs: int = 10,
    max_ticks: int = 150,
) -> dict[str, Trajectory]:
    """Figure 5: edge RL vs worm strategy, measured *within subnets*.

    Per the paper's caption ("rate limiting within subnets at the edge
    router"), each curve tracks the infected fraction inside the subnets
    that held the initial seeds: the local-preferential worm saturates
    those from inside, untouched by the boundary filter, while the random
    worm must fill them through filtered links.
    """
    ensembles = fig5_ensembles(
        num_nodes=num_nodes, num_runs=num_runs, max_ticks=max_ticks
    )
    return {
        label: run_ensemble(spec).mean for label, spec in ensembles.items()
    }


# ---------------------------------------------------------------------------
# Local-preferential worm vs host/backbone RL (Figure 6)
# ---------------------------------------------------------------------------


def fig6_localpref_deployments(
    *,
    num_nodes: int = 1000,
    num_runs: int = 10,
    max_ticks: int = 400,
) -> dict[str, Trajectory]:
    """Figure 6: local-pref worm; 5%/30% host RL vs backbone RL."""
    study = QuarantineStudy(
        num_nodes, scan_rate=0.8, local_preference=0.8, seed=42
    )
    strategies = [
        DeploymentStrategy.none(),
        DeploymentStrategy.hosts(0.05, HOST_RL_RATE),
        DeploymentStrategy.hosts(0.30, HOST_RL_RATE),
        DeploymentStrategy.backbone(ROUTER_BASE_RATE),
    ]
    return study.simulate_deployments(
        strategies, max_ticks=max_ticks, num_runs=num_runs
    )


# ---------------------------------------------------------------------------
# Delayed immunization (Section 6, Figures 7 and 8)
# ---------------------------------------------------------------------------

#: Parameters shared by every immunization experiment (paper values).
IMMUNIZATION_POPULATION = 1000
IMMUNIZATION_BETA = 0.8
IMMUNIZATION_MU = 0.1
IMMUNIZATION_LEVELS = (0.2, 0.5, 0.8)

#: Scan rate used by the *simulated* immunization experiments.  The
#: delayed-immunization outcome is a race between the worm's effective
#: growth rate and the patch rate ``mu``; our simulator discounts the
#: nominal scan rate through routing latency and wasted scans, so 2.4
#: scans/tick is what makes the simulated no-RL outbreak grow like the
#: paper's analytical beta = 0.8 model (t50 ~ 7-9 ticks) — the paper's
#: ns-2 setup had no such discount.
IMMUNIZATION_SCAN_RATE = 2.4

#: Backbone base rate for the Figure 8(b) experiment.  Much lighter than
#: Figure 4's filter: the figure isolates the *incremental* benefit of
#: rate limiting on top of patching (the paper's 80% -> 72% drop).  With
#: Figure 4's heavy filter the combination drives the worm extinct
#: (~3% ever infected) — a stronger outcome than the shape being
#: reproduced; the ablation benchmark covers that regime.
FIG8B_BACKBONE_RATE = 1.0


def fig7a_immunization_analytical(
    *, t_end: float = 80.0, num_points: int = 600
) -> dict[str, Trajectory]:
    """Figure 7(a): delayed immunization, no rate limiting."""
    curves: dict[str, Trajectory] = {
        "no_immunization": HomogeneousSIModel(
            IMMUNIZATION_POPULATION, IMMUNIZATION_BETA
        ).solve(t_end, num_points=num_points)
    }
    for level in IMMUNIZATION_LEVELS:
        model = DelayedImmunizationModel.from_infection_level(
            IMMUNIZATION_POPULATION,
            IMMUNIZATION_BETA,
            IMMUNIZATION_MU,
            level,
        )
        curves[f"immunize_at_{int(level * 100)}pct"] = model.solve(
            t_end, num_points=num_points
        )
    return curves


#: Path coverage used for the analytical backbone-RL immunization model.
FIG7B_PATH_COVERAGE = 0.5


def fig7b_immunization_rl_analytical(
    *, t_end: float = 50.0, num_points: int = 600
) -> dict[str, Trajectory]:
    """Figure 7(b): immunization + backbone RL, delays at ticks 6/8/10.

    The paper anchors the start ticks to where the *unlimited* worm hits
    20%/50%/80% (ticks ~6/8/10 for beta = 0.8, N = 1000).
    """
    curves: dict[str, Trajectory] = {
        "no_immunization": BackboneRateLimitModel(
            IMMUNIZATION_POPULATION,
            IMMUNIZATION_BETA,
            FIG7B_PATH_COVERAGE,
        ).solve(t_end, num_points=num_points)
    }
    baseline = HomogeneousSIModel(IMMUNIZATION_POPULATION, IMMUNIZATION_BETA)
    for level in IMMUNIZATION_LEVELS:
        start = round(baseline.exact_time_to_fraction(level))
        model = BackboneImmunizationModel(
            IMMUNIZATION_POPULATION,
            IMMUNIZATION_BETA,
            FIG7B_PATH_COVERAGE,
            IMMUNIZATION_MU,
            float(start),
        )
        curves[f"immunize_at_tick_{start}"] = model.solve(
            t_end, num_points=num_points
        )
    return curves


def fig8a_immunization_simulation(
    *,
    num_nodes: int = 1000,
    num_runs: int = 10,
    max_ticks: int = 100,
) -> dict[str, Trajectory]:
    """Figure 8(a): simulated ever-infected under delayed immunization.

    Paper bands: ever-infected plateaus near 80% / 90% / 98% for
    immunization starting at 20% / 50% / 80% infection (beta = 0.8,
    mu = 0.1).
    """
    study = QuarantineStudy(
        num_nodes, scan_rate=IMMUNIZATION_SCAN_RATE, seed=42
    )
    curves: dict[str, Trajectory] = {}
    base = study.simulate_deployments(
        [DeploymentStrategy.none()], max_ticks=max_ticks, num_runs=num_runs
    )
    curves["no_immunization"] = base["no_rl"]
    for level in IMMUNIZATION_LEVELS:
        policy = ImmunizationPolicy.at_fraction(level, IMMUNIZATION_MU)
        result = run_ensemble(
            study.spec_for(
                DeploymentStrategy.none(),
                max_ticks=max_ticks,
                num_runs=num_runs,
                immunization=policy,
            )
        )
        curves[f"immunize_at_{int(level * 100)}pct"] = result.mean
    return curves


def fig8b_immunization_rl_simulation(
    *,
    num_nodes: int = 1000,
    num_runs: int = 10,
    max_ticks: int = 400,
) -> dict[str, Trajectory]:
    """Figure 8(b): immunization + backbone RL, starts at fixed ticks.

    Per the paper, the start ticks are where the *un-rate-limited* worm
    crossed 20%/50%/80% — the comparison against Figure 8(a) holds the
    wall-clock response fixed while rate limiting slows the worm, and the
    ever-infected total drops (~80% -> ~72% in the paper).
    """
    study = QuarantineStudy(
        num_nodes, scan_rate=IMMUNIZATION_SCAN_RATE, seed=42
    )
    backbone = DeploymentStrategy.backbone(FIG8B_BACKBONE_RATE)
    curves: dict[str, Trajectory] = {}
    base = study.simulate_deployments(
        [backbone], max_ticks=max_ticks, num_runs=num_runs
    )
    curves["no_immunization"] = base["backbone_rl"]
    # Anchor start ticks to the simulated un-rate-limited baseline.
    unlimited = study.simulate_deployments(
        [DeploymentStrategy.none()],
        max_ticks=max_ticks,
        num_runs=num_runs,
    )["no_rl"]
    for level in IMMUNIZATION_LEVELS:
        start = round(unlimited.time_to_fraction(level))
        policy = ImmunizationPolicy.at_tick(start, IMMUNIZATION_MU)
        result = run_ensemble(
            study.spec_for(
                backbone,
                max_ticks=max_ticks,
                num_runs=num_runs,
                immunization=policy,
            )
        )
        curves[f"immunize_at_tick_{start}"] = result.mean
    return curves


# ---------------------------------------------------------------------------
# Trace study (Section 7, Figures 9 and 10)
# ---------------------------------------------------------------------------

_TRACE_CACHE: dict[tuple, Trace] = {}


def shared_trace(
    *, duration: float = 600.0, seed: int = 0
) -> Trace:
    """The synthetic campus trace shared by the Section 7 experiments.

    Cached per (duration, seed): generating it is the expensive step and
    every Section 7 scenario reads from the same one, like the paper reads
    from one 23-day capture.
    """
    key = (duration, seed)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = generate_trace(
            TraceConfig(duration=duration, seed=seed)
        )
    return _TRACE_CACHE[key]


def fig9_contact_rate_cdfs(
    trace: Trace | None = None,
    *,
    window: float = 5.0,
) -> dict[str, dict[Refinement, tuple[np.ndarray, np.ndarray]]]:
    """Figure 9: contact-rate CDFs for normal vs worm-infected hosts.

    Returns ``{"normal": {refinement: (values, fractions)}, "worms": ...}``.
    """
    trace = trace or shared_trace()
    normal = set(trace.hosts_of_class(HostClass.NORMAL))
    worms = set(
        trace.hosts_of_class(HostClass.WORM_BLASTER)
        + trace.hosts_of_class(HostClass.WORM_WELCHIA)
    )
    out: dict[str, dict[Refinement, tuple[np.ndarray, np.ndarray]]] = {}
    for label, hosts in (("normal", normal), ("worms", worms)):
        out[label] = {}
        for refinement in Refinement:
            counts = count_contacts(
                trace, hosts, window=window, refinement=refinement
            )
            out[label][refinement] = empirical_cdf(counts)
    return out


def fig10_trace_rate_models(
    *,
    population: int = 1128,
    beta: float = 0.8,
    per_host_rate: float = 0.05,
    t_end: float = 10_000.0,
    num_points: int = 2000,
) -> dict[str, Trajectory]:
    """Figure 10: worm propagation under trace-derived rate limits.

    Approximates edge-router aggregate limiting with the hub model
    (Eqs. 4/5), as the paper does: ``gamma`` is the per-host link rate and
    the hub budget is the aggregate limit.  The DNS-based scheme's
    aggregate limit is ~2x the per-host rate (gamma:beta = 1:2); the IP
    throttle needs ~6x (1:6).  Host-based RL throttles every host to
    ``gamma`` but stays exponential — the worst of the defended curves.
    """
    curves = {
        "no_rl": HomogeneousSIModel(population, beta).solve(
            t_end, num_points=num_points
        ),
        "dns_scheme_1_to_2": HubRateLimitModel(
            population, per_host_rate, 2 * per_host_rate
        ).solve(t_end, num_points=num_points),
        "ip_throttle_1_to_6": HubRateLimitModel(
            population, per_host_rate, 6 * per_host_rate
        ).solve(t_end, num_points=num_points),
        "host_based_rl": LeafRateLimitModel(
            population, 1.0, beta, per_host_rate
        ).solve(t_end, num_points=num_points),
    }
    return curves


def sec7_host_census(trace: Trace | None = None) -> dict[HostClass, int]:
    """The 999 / 17 / 33 / 79 host census, via the behavioural classifier."""
    trace = trace or shared_trace()
    return census(classify_hosts(trace))


def sec7_rate_limit_tables(
    trace: Trace | None = None,
) -> dict[str, RateLimitTable]:
    """99.9%-coverage rate limits for normal and P2P hosts."""
    trace = trace or shared_trace()
    return {
        "normal": recommend_rate_limits(
            trace, trace.hosts_of_class(HostClass.NORMAL), group="normal"
        ),
        "p2p": recommend_rate_limits(
            trace, trace.hosts_of_class(HostClass.P2P), group="p2p"
        ),
    }


def sec7_window_size_study(trace: Trace | None = None) -> dict[float, int]:
    """Aggregate non-DNS limits across 1 s / 5 s / 60 s windows."""
    trace = trace or shared_trace()
    return window_size_study(
        trace, trace.hosts_of_class(HostClass.NORMAL)
    )


def sec7_worm_peak_rates(trace: Trace | None = None) -> dict[str, int]:
    """Peak distinct-hosts-per-minute for Blaster and Welchia hosts."""
    trace = trace or shared_trace()
    blaster = max(
        peak_scan_rate(trace, host)
        for host in trace.hosts_of_class(HostClass.WORM_BLASTER)
    )
    welchia = max(
        peak_scan_rate(trace, host)
        for host in trace.hosts_of_class(HostClass.WORM_WELCHIA)
    )
    return {"blaster": blaster, "welchia": welchia}


def sec7_throttle_replay(
    trace: Trace | None = None,
    *,
    normal_hosts: int = 40,
) -> dict[str, dict[str, ReplayResult | float]]:
    """Replay the trace through both throttles; summarize the tradeoff."""
    trace = trace or shared_trace()
    out: dict[str, dict[str, ReplayResult | float]] = {}
    for factory in (WilliamsonThrottle, DnsThrottle):
        name = factory().name
        normal = replay_class(
            trace, HostClass.NORMAL, factory, limit_hosts=normal_hosts
        )
        with_contacts = [r for r in normal if r.contacts]
        mean_delay = (
            float(np.mean([r.mean_delay for r in with_contacts]))
            if with_contacts
            else 0.0
        )
        blaster = replay_class(trace, HostClass.WORM_BLASTER, factory)
        welchia = replay_class(trace, HostClass.WORM_WELCHIA, factory)
        out[name] = {
            "normal_mean_delay": mean_delay,
            "blaster_slowdown": worm_slowdown(blaster),
            "welchia_slowdown": worm_slowdown(welchia),
        }
    return out
