"""Parameter sweeps: sensitivity studies over the deployment design space.

The paper fixes one operating point per figure; these utilities map out
the neighborhoods around those points — how the slowdown scales with the
filter budget, how much host coverage buys, and how detection latency
eats into dynamic-quarantine benefit.  Each sweep returns a
:class:`SweepResult` whose rows print as the fixed-width tables the rest
of the harness uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..models.base import Trajectory
from ..runner import (
    DefenseSpec,
    EnsembleSpec,
    QuarantineSpec,
    RunSpec,
    TopologySpec,
    WormSpec,
    run_ensemble,
)
from .policy import DeploymentStrategy
from .quarantine import QuarantineStudy

__all__ = [
    "SweepPoint",
    "SweepResult",
    "sweep_backbone_rate",
    "sweep_host_coverage",
    "sweep_detection_latency",
]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: the parameter value and its outcomes."""

    parameter: float
    time_to_half: float
    slowdown: float

    @property
    def contained(self) -> bool:
        """Whether the worm never reached 50% within the horizon."""
        return math.isinf(self.time_to_half)


@dataclass(frozen=True)
class SweepResult:
    """A labeled series of sweep points plus the undefended baseline."""

    parameter_name: str
    baseline_time_to_half: float
    points: tuple[SweepPoint, ...]

    def format_table(self) -> str:
        """Fixed-width table of the sweep."""
        lines = [
            f"{self.parameter_name:<22} {'t50':>10} {'slowdown':>10}",
            f"{'(no defense)':<22} {self.baseline_time_to_half:>10.2f} "
            f"{'1.00x':>10}",
        ]
        for point in self.points:
            t_text = (
                f"{point.time_to_half:10.2f}"
                if not point.contained
                else "     never"
            )
            s_text = (
                f"{point.slowdown:9.2f}x"
                if not point.contained
                else "      inf"
            )
            lines.append(
                f"{point.parameter:<22.4g} {t_text} {s_text}"
            )
        return "\n".join(lines)

    def monotone_decreasing_slowdown(self) -> bool:
        """Whether slowdown falls (weakly) as the parameter grows."""
        slowdowns = [p.slowdown for p in self.points]
        return all(a >= b - 1e-9 for a, b in zip(slowdowns, slowdowns[1:]))


def _baseline_curve(study: QuarantineStudy, *, max_ticks: int, num_runs: int) -> Trajectory:
    return study.simulate_deployments(
        [DeploymentStrategy.none()], max_ticks=max_ticks, num_runs=num_runs
    )["no_rl"]


def sweep_backbone_rate(
    rates: tuple[float, ...] = (0.01, 0.02, 0.05, 0.1, 0.5),
    *,
    num_nodes: int = 500,
    num_runs: int = 3,
    max_ticks: int = 400,
    seed: int = 42,
) -> SweepResult:
    """Slowdown vs backbone base link rate.

    Smaller budgets quarantine harder; the sweep shows the knee where the
    filter stops binding against the worm's demand.
    """
    study = QuarantineStudy(num_nodes, scan_rate=0.8, seed=seed)
    baseline = _baseline_curve(study, max_ticks=max_ticks, num_runs=num_runs)
    t_base = baseline.time_to_fraction(0.5)
    points = []
    for rate in rates:
        curve = study.simulate_deployments(
            [DeploymentStrategy.backbone(rate)],
            max_ticks=max_ticks,
            num_runs=num_runs,
        )["backbone_rl"]
        t50 = curve.time_to_fraction(0.5)
        points.append(
            SweepPoint(parameter=rate, time_to_half=t50, slowdown=t50 / t_base)
        )
    return SweepResult(
        parameter_name="backbone base rate",
        baseline_time_to_half=t_base,
        points=tuple(points),
    )


def sweep_host_coverage(
    coverages: tuple[float, ...] = (0.05, 0.25, 0.5, 0.75, 0.95),
    *,
    rate: float = 0.01,
    num_nodes: int = 500,
    num_runs: int = 3,
    max_ticks: int = 400,
    seed: int = 42,
) -> SweepResult:
    """Slowdown vs host-filter coverage ``q`` — Eq. (3)'s 1/(1-q) curve."""
    study = QuarantineStudy(num_nodes, scan_rate=0.8, seed=seed)
    baseline = _baseline_curve(study, max_ticks=max_ticks, num_runs=num_runs)
    t_base = baseline.time_to_fraction(0.5)
    points = []
    for coverage in coverages:
        curve = study.simulate_deployments(
            [DeploymentStrategy.hosts(coverage, rate)],
            max_ticks=max_ticks,
            num_runs=num_runs,
        )[DeploymentStrategy.hosts(coverage, rate).label]
        t50 = curve.time_to_fraction(0.5)
        points.append(
            SweepPoint(
                parameter=coverage, time_to_half=t50, slowdown=t50 / t_base
            )
        )
    return SweepResult(
        parameter_name="host coverage q",
        baseline_time_to_half=t_base,
        points=tuple(points),
    )


def sweep_detection_latency(
    delays: tuple[int, ...] = (0, 2, 4, 8),
    *,
    num_nodes: int = 500,
    num_runs: int = 3,
    max_ticks: int = 400,
    base_seed: int = 70,
    backbone_rate: float = 0.02,
) -> SweepResult:
    """Dynamic-quarantine slowdown vs reaction delay.

    The parameter is ticks between detection and deployment; slowdown is
    measured against an undefended outbreak of the same worm.
    """
    def run(delay: int | None) -> Trajectory:
        quarantine = None
        if delay is not None:
            quarantine = QuarantineSpec(
                response=DefenseSpec(kind="backbone", rate=backbone_rate),
                telescope_coverage=0.1,
                detector_scans_per_infected=0.8,
                reaction_delay=delay,
            )
        label = "undefended" if delay is None else f"delay_{delay}"
        spec = EnsembleSpec(
            template=RunSpec(
                topology=TopologySpec(num_nodes=num_nodes),
                worm=WormSpec(kind="random", hit_probability=0.5),
                scan_rate=1.6,
                initial_infections=5,
                quarantine=quarantine,
                lan_delivery=True,
                max_ticks=max_ticks,
            ),
            num_runs=num_runs,
            base_seed=base_seed,
            label=label,
        )
        return run_ensemble(spec).mean

    baseline = run(None)
    t_base = baseline.time_to_fraction(0.5)
    points = []
    for delay in delays:
        t50 = run(delay).time_to_fraction(0.5)
        points.append(
            SweepPoint(
                parameter=float(delay),
                time_to_half=t50,
                slowdown=t50 / t_base,
            )
        )
    return SweepResult(
        parameter_name="reaction delay (ticks)",
        baseline_time_to_half=t_base,
        points=tuple(points),
    )
