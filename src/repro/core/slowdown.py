"""Slowdown metrics: the quantities the paper's comparisons are stated in.

"It takes approximately five times as long for the worm to spread to 50%
of all susceptible hosts if rate limiting is implemented at the backbone
routers" — claims of that shape are ratios of *times to reach an infection
level*.  This module computes them from :class:`Trajectory` objects of
either origin (analytical or simulated).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..models.base import ModelError, Trajectory

__all__ = ["slowdown_factor", "SlowdownReport", "compare_times"]


def slowdown_factor(
    baseline: Trajectory, defended: Trajectory, level: float
) -> float:
    """How many times longer the defended curve takes to reach ``level``.

    Returns ``inf`` if the defended curve never gets there within its
    horizon (the defense contained the worm) and raises if the *baseline*
    never reaches the level (the comparison would be meaningless).
    """
    t_base = baseline.time_to_fraction(level)
    if math.isinf(t_base):
        raise ModelError(
            f"baseline never reaches {level:.0%}; cannot compute slowdown"
        )
    t_defended = defended.time_to_fraction(level)
    if t_base <= 0:
        raise ModelError("baseline reaches the level at t=0")
    return t_defended / t_base


@dataclass(frozen=True)
class SlowdownReport:
    """Times-to-level for a set of labeled curves, relative to a baseline."""

    level: float
    baseline_label: str
    times: dict[str, float]
    factors: dict[str, float]

    def format_table(self) -> str:
        """Fixed-width table like the ones the benchmark harness prints."""
        lines = [
            f"time to {self.level:.0%} infected "
            f"(baseline: {self.baseline_label})",
            f"{'case':<28} {'time':>10} {'slowdown':>10}",
        ]
        for label, t in self.times.items():
            factor = self.factors[label]
            t_text = f"{t:10.2f}" if math.isfinite(t) else "     never"
            f_text = f"{factor:9.2f}x" if math.isfinite(factor) else "      inf"
            lines.append(f"{label:<28} {t_text} {f_text}")
        return "\n".join(lines)


def compare_times(
    curves: dict[str, Trajectory],
    *,
    baseline: str,
    level: float = 0.5,
) -> SlowdownReport:
    """Time-to-level and slowdown factor for every labeled curve."""
    if baseline not in curves:
        raise ModelError(
            f"baseline {baseline!r} not among curves {sorted(curves)}"
        )
    times = {
        label: curve.time_to_fraction(level) for label, curve in curves.items()
    }
    t_base = times[baseline]
    if not math.isfinite(t_base) or t_base <= 0:
        raise ModelError(
            f"baseline {baseline!r} does not reach {level:.0%} at a "
            f"positive time (got {t_base})"
        )
    factors = {label: t / t_base for label, t in times.items()}
    return SlowdownReport(
        level=level, baseline_label=baseline, times=times, factors=factors
    )
