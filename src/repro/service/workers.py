"""The service's worker tier: one persistent pool, many ensembles.

``run_ensemble`` historically built a fresh ``ParallelExecutor`` — and
therefore a fresh process pool — per call (``executor_from_config``),
which a one-shot CLI invocation never notices but a server pays on
every request.  The tier instead owns a single
:class:`~repro.runner.executors.PersistentExecutor`, created once at
startup and closed on drain; every job shares it, each under its own
cancellation event (bound per-job via :class:`CancellableExecutor`).
Worker crashes are absorbed by the executor's restart path and surface
in ``/metrics`` as ``workers.restarts``.

Jobs still execute through :func:`repro.runner.run_ensemble`, so the
engine/seed semantics, the engine override, and the shared result
cache behave exactly as they do in-process — the service adds
scheduling, not a second execution path.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

from ..chaos.controller import fault_point
from ..observability.instrumentation import InstrumentationOptions
from ..runner.api import run_ensemble
from ..runner.cache import ResultCache
from ..runner.executors import (
    Executor,
    PersistentExecutor,
    ReplicaBatchExecutor,
)
from ..runner.results import RunResult
from ..runner.spec import EnsembleSpec, RunSpec
from .protocol import result_payload

__all__ = ["CancellableExecutor", "WorkerTier"]


class CancellableExecutor(Executor):
    """A per-job view of the shared pool, bound to one cancel event."""

    def __init__(
        self, handle: PersistentExecutor, cancel: threading.Event
    ) -> None:
        self._handle = handle
        self._cancel = cancel

    def run_specs(
        self,
        specs: Sequence[RunSpec],
        options: InstrumentationOptions | None = None,
    ) -> list[RunResult]:
        return self._handle.run_specs(specs, options, cancel=self._cancel)


class WorkerTier:
    """Executes admitted jobs on the persistent pool and encodes them."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        timeout: float | None = None,
        cache: ResultCache | None = None,
    ) -> None:
        self.executor = PersistentExecutor(jobs, timeout=timeout)
        self.cache = cache

    @property
    def mode(self) -> str:
        """``"pool"`` with worker processes, ``"serial"`` in-process."""
        return "pool" if self.executor.jobs > 1 else "serial"

    @property
    def restarts(self) -> int:
        """How many times a dead worker pool was replaced."""
        return self.executor.restarts

    def run(self, spec: EnsembleSpec, cancel: threading.Event) -> bytes:
        """The scheduler's runner callable: one ensemble → payload bytes.

        Runs on a worker thread (``asyncio.to_thread``); the blocking
        parts — cache probes and pool waits — happen here, never on the
        event loop.
        """
        # Chaos: ``delay`` faults stall the job past its deadline (a
        # 504); ``error`` faults fail it outright (a 500).
        fault_point("service.worker.run")
        # Replica grouping wraps the pool view: fast-batched ensembles
        # vectorize in-process (cancel checked between chunks), all
        # other specs pass through to the shared pool unchanged.
        executor = ReplicaBatchExecutor(
            CancellableExecutor(self.executor, cancel), cancel=cancel
        )
        result = run_ensemble(
            spec,
            executor=executor,
            cache=self.cache,
            use_cache=self.cache is not None,
        )
        return result_payload(result)

    def close(self) -> None:
        """Release the pool (idempotent); called on graceful drain."""
        self.executor.close()
