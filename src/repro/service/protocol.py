"""Wire protocol: specs in, results out, bytes deterministic.

The service speaks plain JSON over HTTP, validated through the existing
:mod:`repro.runner.spec` types — a POSTed ensemble is decoded with
``EnsembleSpec.from_dict``, so the server rejects exactly what
``run_ensemble`` would reject, with the same messages.

Result payloads are **canonical**: :func:`result_payload` serializes an
:class:`~repro.runner.results.EnsembleResult` to sorted-key,
no-whitespace JSON after projecting out the only nondeterministic
fields (per-run wall time and profiling seconds).  Everything that
remains — specs, trajectories, packet counters, histograms, deployment
summaries — is a pure function of (spec, seeds, engine), so a served
ensemble is *byte-identical* to an in-process ``run_ensemble`` of the
same spec, which is both the correctness contract the parity tests
assert and what makes coalesced/cached responses indistinguishable from
fresh ones.  Timings are observability, not results; they live on the
``/metrics`` endpoint instead.
"""

from __future__ import annotations

import json
from typing import Any

from ..runner.results import EnsembleResult, RunResult
from ..runner.spec import EnsembleSpec, SpecError

__all__ = [
    "SCHEMA_VERSION",
    "VOLATILE_METRIC_FIELDS",
    "ProtocolError",
    "canonical_json",
    "decode_ensemble_spec",
    "parse_run_request",
    "encode_run_result",
    "encode_ensemble_result",
    "result_payload",
    "decode_ensemble_result",
]

#: Version tag on every result payload; bump on shape changes.
SCHEMA_VERSION = 1

#: RunMetrics fields excluded from result payloads because they vary
#: between executions of the same spec (wall clock is not a result).
VOLATILE_METRIC_FIELDS = frozenset({"wall_time", "phase_seconds"})


class ProtocolError(ValueError):
    """A request the protocol cannot interpret (an HTTP 400)."""


def canonical_json(obj: Any) -> bytes:
    """The one true byte encoding of a JSON document."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def decode_ensemble_spec(data: Any) -> EnsembleSpec:
    """Validate a JSON-decoded ensemble spec through the runner types."""
    if not isinstance(data, dict):
        raise ProtocolError("spec must be a JSON object")
    try:
        return EnsembleSpec.from_dict(data)
    except (SpecError, KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid ensemble spec: {exc}") from exc


def parse_run_request(body: bytes) -> tuple[EnsembleSpec, float | None]:
    """Parse a POST ``/v1/run`` body: ``{"spec": ..., "deadline_s": ...}``.

    ``deadline_s`` is optional; when present it must be a positive
    number of seconds after which the server abandons the request.
    """
    try:
        data = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request body is not JSON: {exc}") from exc
    if not isinstance(data, dict) or "spec" not in data:
        raise ProtocolError('request body must be {"spec": {...}}')
    unknown = set(data) - {"spec", "deadline_s"}
    if unknown:
        raise ProtocolError(f"unknown request fields: {sorted(unknown)}")
    spec = decode_ensemble_spec(data["spec"])
    deadline_s = data.get("deadline_s")
    if deadline_s is not None:
        if not isinstance(deadline_s, (int, float)) or isinstance(
            deadline_s, bool
        ):
            raise ProtocolError("deadline_s must be a number")
        if deadline_s <= 0:
            raise ProtocolError(
                f"deadline_s must be positive, got {deadline_s}"
            )
        deadline_s = float(deadline_s)
    return spec, deadline_s


def encode_run_result(run: RunResult) -> dict[str, Any]:
    """JSON-ready dict of one run, volatile metrics projected out."""
    data = run.to_dict()
    data["metrics"] = {
        key: value
        for key, value in data["metrics"].items()
        if key not in VOLATILE_METRIC_FIELDS
    }
    return data


def encode_ensemble_result(result: EnsembleResult) -> dict[str, Any]:
    """JSON-ready dict of an ensemble result (deterministic fields only)."""
    return {
        "schema": SCHEMA_VERSION,
        "spec": result.spec.to_dict(),
        "runs": [encode_run_result(run) for run in result.runs],
    }


def result_payload(result: EnsembleResult) -> bytes:
    """The canonical bytes the result endpoint serves for ``result``."""
    return canonical_json(encode_ensemble_result(result))


def decode_ensemble_result(payload: bytes | dict[str, Any]) -> EnsembleResult:
    """Rebuild a full :class:`EnsembleResult` from a served payload.

    The mean trajectory and aggregate metrics are recomputed from the
    runs by ``EnsembleResult.__post_init__`` — they are derived data,
    so the wire never carries them.
    """
    data = json.loads(payload) if isinstance(payload, bytes) else payload
    try:
        if data.get("schema") != SCHEMA_VERSION:
            raise ProtocolError(
                f"unsupported result schema {data.get('schema')!r}"
            )
        spec = EnsembleSpec.from_dict(data["spec"])
        runs = [RunResult.from_dict(run) for run in data["runs"]]
    except ProtocolError:
        raise
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed result payload: {exc}") from exc
    return EnsembleResult(spec=spec, runs=runs)
