"""Front-door router: shard fan-out, supervision, and edge quotas.

``repro serve --shards N`` runs N full ``repro serve`` worker processes
(the *shards*) behind one tiny stdlib router process — the only piece a
client ever talks to.  The router owns three jobs:

* **Routing.**  ``POST /v1/run`` round-robins across healthy shards.
  ``GET /v1/result/<id>`` routes by the id's shard prefix (shard ``k``
  mints ids ``s<k>-<hex>``); when the owning shard is down the poll
  falls back to any healthy shard, which answers from the *shared*
  durable job store (journals are per-shard but readable by all).
  ``/v1/stream`` sessions are stateful and unsharded: they pin to the
  lowest-numbered healthy shard.
* **Supervision.**  :class:`ShardSupervisor` spawns the shard
  processes (each ``--port 0`` on loopback, banner-parsed), health
  checks them every tick, and restarts any that die — a SIGKILL'd
  shard is a blip, not an outage, because its journal replays on
  restart.  The ``service.shard.kill`` chaos site injects exactly that
  blip.
* **Quotas.**  The per-tenant token buckets live *here*, at the single
  entry point, so N shards never multiply a tenant's budget (shards
  run with quotas disabled in sharded mode).

The router speaks the same minimal HTTP/1.1 as the service transport
and forwards with per-request upstream connections (``Connection:
close``) — boring and allocation-heavy, but shard hops are loopback
and the simulation dominates; the bench ledger keeps us honest.

:class:`StaticShards` swaps in for the supervisor under test: routing
logic runs against in-process :class:`~repro.service.app.ServiceThread`
shards with no subprocess in sight.
"""

from __future__ import annotations

import asyncio
import json
import os
import select
import signal
import subprocess
import sys
import time
from dataclasses import dataclass

from ..chaos.controller import fault_point
from .app import ServiceConfig
from .http11 import HttpError, Request, encode_response, read_request
from .metrics import ServiceMetrics, merge_latency_tables
from .protocol import canonical_json
from .quotas import QuotaTable

__all__ = [
    "StaticShards",
    "ShardSupervisor",
    "Router",
    "run_sharded_server",
]

#: How long a forwarded request may take end to end (the shard itself
#: answers 202 instantly; only /metrics fan-in does real work).
PROXY_TIMEOUT_S = 60.0


def shard_tag(index: int) -> str:
    """The canonical tag (and job-id prefix stem) of shard ``index``."""
    return f"s{index}"


def shard_index_for_job(job_id: str) -> int | None:
    """Recover the owning shard index from a job id, if well-formed."""
    tag, sep, _ = job_id.partition("-")
    if sep and len(tag) > 1 and tag[0] == "s" and tag[1:].isdigit():
        return int(tag[1:])
    return None


class StaticShards:
    """A fixed set of already-running shard addresses (test double).

    ``addresses[i]`` is ``(host, port)`` or ``None`` for a down shard;
    tests flip entries to simulate deaths without any processes.
    """

    def __init__(
        self, addresses: list[tuple[str, int] | None]
    ) -> None:
        if not addresses:
            raise ValueError("need at least one shard address")
        self._addresses = list(addresses)

    @property
    def count(self) -> int:
        return len(self._addresses)

    def address(self, index: int) -> tuple[str, int] | None:
        return self._addresses[index]

    def set_address(
        self, index: int, address: tuple[str, int] | None
    ) -> None:
        self._addresses[index] = address

    def check(self) -> int:
        """Static shards never restart; returns restarts performed (0)."""
        return 0

    def describe(self) -> list[dict]:
        return [
            {
                "shard": shard_tag(i),
                "alive": addr is not None,
                "address": f"{addr[0]}:{addr[1]}" if addr else None,
            }
            for i, addr in enumerate(self._addresses)
        ]

    def stop(self) -> None:  # pragma: no cover - nothing to do
        pass


@dataclass
class _ShardProc:
    """One supervised shard worker process."""

    index: int
    process: subprocess.Popen
    port: int
    started_at: float


class ShardSupervisor:
    """Spawn, health-check, and restart ``repro serve`` shard processes.

    Each shard is a full single-process service on a loopback port the
    OS picks (parsed from its startup banner), tagged ``s<k>`` so its
    job ids route, sharing one durable store root, quotas off (the
    router enforces them).
    """

    def __init__(
        self,
        config: ServiceConfig,
        shards: int,
        *,
        store_dir: str | None = None,
        engine: str | None = None,
        spawn_timeout_s: float = 30.0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.config = config
        self.shards = shards
        self.engine = engine
        self.store_dir = (
            store_dir
            if store_dir is not None
            else config.resolved_store_dir()
        )
        self.spawn_timeout_s = spawn_timeout_s
        self._procs: list[_ShardProc | None] = [None] * shards
        self.restarts = 0
        self._kill_rotation = 0

    @property
    def count(self) -> int:
        return self.shards

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------

    def _shard_argv(self, index: int) -> list[str]:
        cfg = self.config
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--shard-tag",
            shard_tag(index),
            "--jobs",
            str(cfg.jobs),
            "--max-queue",
            str(cfg.max_queue),
            "--concurrency",
            str(cfg.concurrency),
            "--drain-timeout",
            str(cfg.drain_timeout_s),
            "--max-streams",
            str(cfg.max_streams),
            "--stream-ttl",
            str(cfg.stream_ttl_s),
        ]
        if cfg.deadline_s is not None:
            argv += ["--deadline", str(cfg.deadline_s)]
        if not cfg.cache_enabled:
            argv.append("--no-cache")
        elif cfg.cache_dir:
            argv += ["--cache-dir", cfg.cache_dir]
        if self.store_dir is not None:
            argv += ["--store-dir", self.store_dir]
        if self.engine is not None:
            argv += ["--engine", self.engine]
        return argv

    def _spawn_env(self) -> dict[str, str]:
        env = dict(os.environ)
        # Make ``-m repro`` importable in the child no matter how the
        # supervisor itself was launched (checkout vs installed).
        package_parent = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        existing = env.get("PYTHONPATH", "")
        paths = [package_parent] + ([existing] if existing else [])
        env["PYTHONPATH"] = os.pathsep.join(paths)
        return env

    def _read_banner_port(self, process: subprocess.Popen) -> int:
        """Block (bounded) until the shard prints its listening banner."""
        deadline = time.monotonic() + self.spawn_timeout_s
        assert process.stdout is not None
        fd = process.stdout.fileno()
        buffer = b""
        while time.monotonic() < deadline:
            if process.poll() is not None:
                raise RuntimeError(
                    f"shard exited before binding "
                    f"(rc={process.returncode})"
                )
            ready, _, _ = select.select([fd], [], [], 0.2)
            if not ready:
                continue
            chunk = os.read(fd, 4096)
            if not chunk:
                continue
            buffer += chunk
            if b"listening on http://" in buffer and b"\n" in buffer:
                for line in buffer.decode("utf-8", "replace").splitlines():
                    if "listening on http://" in line:
                        addr = line.split("http://", 1)[1].split()[0]
                        return int(addr.rsplit(":", 1)[1])
        raise RuntimeError(
            f"shard did not bind within {self.spawn_timeout_s}s"
        )

    def _spawn(self, index: int) -> _ShardProc:
        process = subprocess.Popen(
            self._shard_argv(index),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=self._spawn_env(),
        )
        try:
            port = self._read_banner_port(process)
        except Exception:
            process.kill()
            process.wait()
            raise
        return _ShardProc(
            index=index,
            process=process,
            port=port,
            started_at=time.monotonic(),
        )

    def start(self) -> None:
        """Spawn every shard and wait for each to bind."""
        for index in range(self.shards):
            self._procs[index] = self._spawn(index)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def address(self, index: int) -> tuple[str, int] | None:
        proc = self._procs[index]
        if proc is None or proc.process.poll() is not None:
            return None
        return ("127.0.0.1", proc.port)

    def check(self) -> int:
        """One health tick: restart dead shards; returns restarts done.

        The ``service.shard.kill`` chaos site fires here — an ``error``
        fault SIGKILLs one live shard (rotating through them), and the
        very same tick restarts it, turning a crash into the blip the
        recovery machinery is built for.
        """
        kill_one = False
        try:
            fault_point("service.shard.kill")
        except RuntimeError:
            # The "error" fault kind raises; here the error *is* the
            # crash we inject.
            kill_one = True
        if kill_one:
            victims = [p for p in self._procs if p is not None]
            if victims:
                victim = victims[self._kill_rotation % len(victims)]
                self._kill_rotation += 1
                if victim.process.poll() is None:
                    victim.process.kill()
                    victim.process.wait()
        restarted = 0
        for index in range(self.shards):
            proc = self._procs[index]
            if proc is not None and proc.process.poll() is None:
                continue
            if proc is not None:
                proc.process.wait()
            self._procs[index] = self._spawn(index)
            self.restarts += 1
            restarted += 1
        return restarted

    def describe(self) -> list[dict]:
        out = []
        for index in range(self.shards):
            proc = self._procs[index]
            alive = proc is not None and proc.process.poll() is None
            out.append(
                {
                    "shard": shard_tag(index),
                    "alive": alive,
                    "address": f"127.0.0.1:{proc.port}" if alive else None,
                    "pid": proc.process.pid if alive else None,
                    "uptime_s": round(
                        time.monotonic() - proc.started_at, 3
                    )
                    if alive
                    else None,
                }
            )
        return out

    def stop(self, *, grace_s: float = 30.0) -> None:
        """SIGTERM every shard (graceful drain), escalating to SIGKILL."""
        live = [p for p in self._procs if p is not None]
        for proc in live:
            if proc.process.poll() is None:
                try:
                    proc.process.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + grace_s
        for proc in live:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.process.kill()
                proc.process.wait()
        self._procs = [None] * self.shards


async def _forward(
    address: tuple[str, int], request_bytes: bytes
) -> tuple[int, dict[str, str], bytes]:
    """Send one upstream request; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection(*address)
    try:
        writer.write(request_bytes)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"bad status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return status, headers, body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _encode_upstream(request: Request) -> bytes:
    """Re-serialize a parsed request for one-shot upstream forwarding."""
    target = request.path
    if request.query:
        target = f"{target}?{request.query}"
    lines = [
        f"{request.method} {target} HTTP/1.1",
        "Host: shard",
        "Connection: close",
        f"Content-Length: {len(request.body)}",
    ]
    for name in ("content-type", "x-repro-tenant"):
        value = request.headers.get(name)
        if value:
            lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + request.body


class Router:
    """The sharded front door: one listener, N shards behind it."""

    def __init__(
        self,
        shards,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        quotas: QuotaTable | None = None,
        health_interval_s: float = 1.0,
        proxy_timeout_s: float = PROXY_TIMEOUT_S,
    ) -> None:
        self.shards = shards
        self.host = host
        self.port: int | None = port
        self.quotas = quotas
        self.health_interval_s = health_interval_s
        self.proxy_timeout_s = proxy_timeout_s
        self.metrics = ServiceMetrics()
        self.counters = {
            "forwarded": 0,
            "forward_errors": 0,
            "retried": 0,
            "no_shard": 0,
            "quota_throttled": 0,
            "restarts": 0,
        }
        self._rr = 0
        self._server: asyncio.base_events.Server | None = None
        self._health_task: asyncio.Task | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self.draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.ensure_future(self._health_loop())

    async def stop(self) -> None:
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        for writer in list(self._connections):
            writer.close()
        await asyncio.sleep(0)
        await asyncio.to_thread(self.shards.stop)

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval_s)
            try:
                restarted = await asyncio.to_thread(self.shards.check)
            except Exception:
                continue  # a failed respawn retries next tick
            if restarted:
                self.counters["restarts"] += restarted

    # ------------------------------------------------------------------
    # Shard selection
    # ------------------------------------------------------------------

    def _healthy_indices(self) -> list[int]:
        return [
            i
            for i in range(self.shards.count)
            if self.shards.address(i) is not None
        ]

    def _pick_run_order(self) -> list[int]:
        """Round-robin order for /v1/run, healthy shards only."""
        healthy = self._healthy_indices()
        if not healthy:
            return []
        start = self._rr % len(healthy)
        self._rr += 1
        return healthy[start:] + healthy[:start]

    def _pick_result_order(self, job_id: str) -> list[int]:
        """Owner-first order for /v1/result (store covers fallback)."""
        healthy = self._healthy_indices()
        owner = shard_index_for_job(job_id)
        if owner is not None and owner in healthy:
            return [owner] + [i for i in healthy if i != owner]
        return healthy

    # ------------------------------------------------------------------
    # HTTP handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        encode_response(
                            exc.status,
                            canonical_json({"error": exc.message}),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                started = asyncio.get_running_loop().time()
                endpoint, response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                self.metrics.record(
                    endpoint,
                    asyncio.get_running_loop().time() - started,
                )
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _json(
        status: int, obj, headers: dict[str, str] | None = None
    ) -> bytes:
        return encode_response(
            status, canonical_json(obj), extra_headers=headers
        )

    async def _dispatch(self, request: Request) -> tuple[str, bytes]:
        path = request.path
        if path == "/v1/run":
            return "/v1/run", await self._handle_run(request)
        if path.startswith("/v1/result/"):
            job_id = path[len("/v1/result/"):]
            return "/v1/result", await self._proxy(
                request, self._pick_result_order(job_id)
            )
        if path.startswith("/v1/stream"):
            # Streams are stateful and unsharded: pin the whole session
            # API to the lowest-numbered healthy shard.
            healthy = self._healthy_indices()
            return "/v1/stream", await self._proxy(request, healthy[:1])
        if path == "/healthz":
            return "/healthz", self._handle_healthz()
        if path == "/metrics":
            return "/metrics", await self._handle_metrics()
        return "*", self._json(
            404, {"error": f"no such endpoint: {path}"}
        )

    async def _handle_run(self, request: Request) -> bytes:
        if self.draining:
            return self._json(503, {"error": "router is draining"})
        if request.method != "POST":
            return self._json(405, {"error": "use POST"})
        if self.quotas is not None:
            decision = self.quotas.check(
                request.headers.get("x-repro-tenant")
            )
            if not decision.allowed:
                self.counters["quota_throttled"] += 1
                return self._json(
                    429,
                    {
                        "error": "tenant quota exceeded",
                        "tenant": decision.tenant,
                        "retry_after_s": round(decision.retry_after_s, 3),
                    },
                    headers={"Retry-After": decision.retry_after_header},
                )
        return await self._proxy(request, self._pick_run_order())

    async def _proxy(
        self, request: Request, order: list[int]
    ) -> bytes:
        """Forward to the first shard in ``order`` that answers."""
        upstream = _encode_upstream(request)
        for attempt, index in enumerate(order):
            address = self.shards.address(index)
            if address is None:
                continue
            try:
                status, headers, body = await asyncio.wait_for(
                    _forward(address, upstream),
                    timeout=self.proxy_timeout_s,
                )
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ):
                self.counters["forward_errors"] += 1
                if attempt + 1 < len(order):
                    self.counters["retried"] += 1
                continue
            self.counters["forwarded"] += 1
            extra = {}
            if "retry-after" in headers:
                extra["Retry-After"] = headers["retry-after"]
            return encode_response(
                status,
                body,
                content_type=headers.get(
                    "content-type", "application/json"
                ),
                extra_headers=extra or None,
                keep_alive=request.keep_alive,
            )
        self.counters["no_shard"] += 1
        return self._json(
            503,
            {"error": "no healthy shard", "retry_after_s": 1.0},
            headers={"Retry-After": "1"},
        )

    def _handle_healthz(self) -> bytes:
        shards = self.shards.describe()
        alive = sum(1 for s in shards if s["alive"])
        return self._json(
            200,
            {
                "status": "draining"
                if self.draining
                else ("ok" if alive else "degraded"),
                "router": True,
                "uptime_s": round(self.metrics.uptime_s, 3),
                "shards": shards,
                "alive": alive,
            },
        )

    async def _handle_metrics(self) -> bytes:
        """Aggregate shard /metrics into one fleet-level document."""
        async def fetch(index: int):
            address = self.shards.address(index)
            if address is None:
                return None
            probe = (
                b"GET /metrics HTTP/1.1\r\nHost: shard\r\n"
                b"Connection: close\r\n\r\n"
            )
            try:
                status, _, body = await asyncio.wait_for(
                    _forward(address, probe),
                    timeout=self.proxy_timeout_s,
                )
                if status != 200:
                    return None
                return json.loads(body)
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                ValueError,
            ):
                return None

        snapshots = [
            snap
            for snap in await asyncio.gather(
                *(fetch(i) for i in range(self.shards.count))
            )
            if snap is not None
        ]
        jobs: dict[str, int] = {}
        for snap in snapshots:
            for key, value in (snap.get("jobs") or {}).items():
                jobs[key] = jobs.get(key, 0) + int(value)
        payload = {
            "router": {
                "uptime_s": round(self.metrics.uptime_s, 3),
                "counters": dict(self.counters),
                "latency": self.metrics.snapshot(),
                "quotas": self.quotas.stats() if self.quotas else None,
            },
            "shards": self.shards.describe(),
            "jobs": jobs,
            "recovered": sum(
                int(snap.get("recovered", 0)) for snap in snapshots
            ),
            "latency": merge_latency_tables(
                [snap.get("latency") or {} for snap in snapshots]
            ),
        }
        return self._json(200, payload)


def run_sharded_server(
    config: ServiceConfig,
    shards: int,
    *,
    engine: str | None = None,
    out=sys.stdout,
) -> int:
    """Blocking entry point behind ``repro serve --shards N``.

    Spawns the shard fleet, serves the router until SIGTERM/SIGINT,
    then drains: the router stops accepting, each shard gets a SIGTERM
    and finishes its queue, and the process exits 0.
    """
    supervisor = ShardSupervisor(config, shards, engine=engine)
    try:
        supervisor.start()
    except Exception as exc:
        print(f"repro.router failed to start shards: {exc}", file=out)
        supervisor.stop(grace_s=5.0)
        return 1
    quota_config = config.quota_config()
    router = Router(
        supervisor,
        host=config.host,
        port=config.port,
        quotas=QuotaTable(quota_config) if quota_config else None,
    )

    async def _serve() -> int:
        await router.start()
        print(
            f"repro.router listening on "
            f"http://{config.host}:{router.port} "
            f"(shards={shards}, jobs={config.jobs}, "
            f"max_queue={config.max_queue}, "
            f"concurrency={config.concurrency})",
            file=out,
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        print("repro.router draining...", file=out, flush=True)
        await router.stop()
        print("repro.router stopped (clean)", file=out, flush=True)
        return 0

    return asyncio.run(_serve())
