"""Durable on-disk job store: jobs and results that survive restarts.

The scheduler's in-memory job table dies with the process and forgets
finished jobs past its retention window; the job store makes the job
lifecycle *durable* with two crash-safe pieces under one root directory
(by default ``<cache_dir>/jobs``):

* ``results/<sha256>.json`` — content-addressed canonical payload
  files, written temp-then-rename so a reader never sees a torn
  payload.  Identical payloads (coalesced duplicates, recovered reruns)
  share one file.
* ``journal-<shard>.jsonl`` — one append-only JSONL journal per shard
  process recording every job transition: a ``submit`` line (with the
  full ensemble spec, so the job is re-runnable from the journal alone)
  and exactly one terminal line (``done`` pointing at a result digest,
  or ``failed`` / ``expired`` with the error).  The result file is
  always durable *before* its ``done`` line is appended, so a journal
  that mentions a digest can always serve it.

**Recovery protocol.**  On startup a shard replays its own journal:
jobs with a terminal line are served straight from the store; jobs with
a ``submit`` line but no terminal line were in flight when the process
died and are resubmitted to the scheduler under their original ids —
payloads are pure functions of the spec (the protocol layer's
byte-identity contract), so the recovered result is byte-identical to
what the crashed run would have produced.

**Torn tails.**  A crash (or the ``service.jobstore.truncate`` chaos
fault) can leave a half-written final line.  Replay tolerates any
journal *prefix*: undecodable lines are counted and skipped, and the
surviving prefix always yields a consistent index (every id at most one
status, terminal states only with their evidence).  The hypothesis
suite in ``tests/service/test_jobstore.py`` pins exactly that.

Sibling shards share the root: journals are single-writer (one shard
appends only to its own), but any shard may *read* every journal, so
``GET /v1/result/<id>`` can be answered by whichever shard the router
picks once the job is terminal.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from ..chaos.controller import fault_point

__all__ = ["StoredJob", "JobStore", "default_job_store_dir"]

#: Journal line types.
_SUBMIT = "submit"
_TERMINAL = ("done", "failed", "expired")


def default_job_store_dir(cache_dir: str | Path) -> Path:
    """The job store root that rides along a given result-cache dir."""
    return Path(cache_dir) / "jobs"


@dataclass(frozen=True)
class StoredJob:
    """One job's durable state, as replayed from a journal."""

    id: str
    status: str  # "submitted" | "done" | "failed" | "expired"
    spec: dict[str, Any] | None = None
    digest: str | None = None
    error: str | None = None

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL


class JobStore:
    """One shard's view of the shared durable job store.

    Parameters
    ----------
    root:
        Shared store directory (journals + ``results/``).
    shard:
        This process's journal name; appends go only here.  Reads via
        :meth:`lookup_any` cover every sibling journal.
    fsync:
        Whether to fsync journal appends.  The default (False) is
        durable against process crashes (the write reaches the kernel
        before the append returns); True additionally survives the
        machine dying, at a per-append cost.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        shard: str = "s0",
        fsync: bool = False,
    ) -> None:
        self.root = Path(root)
        self.shard = shard
        self.fsync = fsync
        self._lock = threading.Lock()
        self._handle = None
        self._tail_open = False
        self.appends = 0
        self.bad_lines = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        """This shard's own append-only journal."""
        return self.root / f"journal-{self.shard}.jsonl"

    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    def result_path(self, digest: str) -> Path:
        return self.results_dir / f"{digest}.json"

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        data = (line + "\n").encode("utf-8")
        # Chaos: a ``truncate`` fault models the torn tail a crash
        # mid-append leaves behind — the journal keeps accepting later
        # appends and replay must skip exactly the damaged line.
        fault = fault_point("service.jobstore.truncate")
        if fault is not None and fault.kind == "truncate" and fault.trim:
            data = data[: -fault.trim] if fault.trim < len(data) else b""
        with self._lock:
            if self._handle is None:
                self.root.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.journal_path, "ab")
                # Seal a torn tail a crash mid-append left behind:
                # without the newline the next record would glue onto
                # the fragment and *both* lines would be lost.
                if self._handle.tell() > 0:
                    with open(self.journal_path, "rb") as probe:
                        probe.seek(-1, os.SEEK_END)
                        sealed = probe.read(1) == b"\n"
                    if not sealed:
                        self._handle.write(b"\n")
            elif self._tail_open:
                # A chaos-trimmed append left the current line open;
                # seal it so this record doesn't glue onto the fragment.
                self._handle.write(b"\n")
            self._tail_open = bool(data) and not data.endswith(b"\n")
            self._handle.write(data)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self.appends += 1

    def record_submit(self, job_id: str, spec_dict: dict[str, Any]) -> None:
        """Journal a job's admission (before it may start running)."""
        self._append(
            {
                "type": _SUBMIT,
                "id": job_id,
                "spec": spec_dict,
                "t": round(time.time(), 3),
            }
        )

    def record_done(self, job_id: str, payload: bytes) -> str:
        """Persist a payload content-addressed, then journal completion.

        Returns the payload digest.  The result file is durable before
        the ``done`` line exists — a journal never references bytes the
        store cannot serve.
        """
        digest = hashlib.sha256(payload).hexdigest()
        path = self.result_path(digest)
        if not path.exists():
            self.results_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.results_dir, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        self._append(
            {"type": "done", "id": job_id, "digest": digest,
             "size": len(payload)}
        )
        return digest

    def record_failed(self, job_id: str, status: str, error: str) -> None:
        """Journal a non-success terminal state (failed/expired)."""
        if status not in ("failed", "expired"):
            raise ValueError(f"not a failure status: {status!r}")
        self._append({"type": status, "id": job_id, "error": error})

    def close(self) -> None:
        """Close the journal handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    # Replay / lookup
    # ------------------------------------------------------------------

    def _iter_journal(self, path: Path) -> Iterator[dict[str, Any]]:
        try:
            raw = path.read_bytes()
        except OSError:
            return
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                self.bad_lines += 1
                continue
            if not isinstance(record, dict) or "id" not in record:
                self.bad_lines += 1
                continue
            yield record

    def _fold(
        self, records: Iterator[dict[str, Any]],
        index: dict[str, StoredJob],
    ) -> None:
        for record in records:
            kind = record.get("type")
            job_id = record["id"]
            known = index.get(job_id)
            if kind == _SUBMIT:
                if known is None:
                    index[job_id] = StoredJob(
                        id=job_id, status="submitted",
                        spec=record.get("spec"),
                    )
                # A submit after a terminal line (or a duplicate) never
                # regresses the job: latest *status* wins, first spec.
            elif kind == "done":
                digest = record.get("digest")
                if not isinstance(digest, str) or not digest:
                    self.bad_lines += 1
                    continue
                index[job_id] = StoredJob(
                    id=job_id, status="done", digest=digest,
                    spec=known.spec if known else None,
                )
            elif kind in ("failed", "expired"):
                index[job_id] = StoredJob(
                    id=job_id, status=kind,
                    error=record.get("error"),
                    spec=known.spec if known else None,
                )
            else:
                self.bad_lines += 1

    def replay(self) -> dict[str, StoredJob]:
        """Fold this shard's own journal into a consistent job index."""
        index: dict[str, StoredJob] = {}
        self._fold(self._iter_journal(self.journal_path), index)
        return index

    def incomplete(self) -> list[StoredJob]:
        """Own jobs submitted but not terminal — the recovery work-list."""
        return [
            job
            for job in self.replay().values()
            if job.status == "submitted" and job.spec is not None
        ]

    def lookup_any(self, job_id: str) -> StoredJob | None:
        """Find a job across *every* shard's journal (read-only).

        Own journal first (the common case — the router shards result
        polls by id prefix), then siblings.  Linear in journal size;
        only consulted when the in-memory scheduler does not know the
        id, i.e. after a restart or past the retention window.
        """
        own: dict[str, StoredJob] = {}
        self._fold(self._iter_journal(self.journal_path), own)
        if job_id in own:
            return own[job_id]
        try:
            siblings = sorted(self.root.glob("journal-*.jsonl"))
        except OSError:
            return None
        for path in siblings:
            if path == self.journal_path:
                continue
            index: dict[str, StoredJob] = {}
            self._fold(self._iter_journal(path), index)
            if job_id in index:
                return index[job_id]
        return None

    def payload_bytes(self, job: StoredJob) -> bytes | None:
        """The stored canonical payload of a ``done`` job, if readable."""
        if job.digest is None:
            return None
        try:
            return self.result_path(job.digest).read_bytes()
        except OSError:
            return None

    def stats(self) -> dict[str, Any]:
        """Store-level counters for ``/metrics``."""
        journals = 0
        entries = 0
        if self.root.is_dir():
            journals = len(list(self.root.glob("journal-*.jsonl")))
        if self.results_dir.is_dir():
            entries = len(list(self.results_dir.glob("*.json")))
        return {
            "shard": self.shard,
            "appends": self.appends,
            "bad_lines": self.bad_lines,
            "journals": journals,
            "results": entries,
        }
