"""Admission control, request coalescing, and the job lifecycle.

The scheduler is the service's queueing discipline, kept free of HTTP
and of simulation detail: it accepts :class:`~repro.runner.spec.
EnsembleSpec` jobs with opaque coalescing keys, bounds how many may
wait (explicit backpressure instead of unbounded buffering), collapses
concurrent duplicates onto one in-flight computation, enforces
per-request deadlines, and hands the survivors to a runner callable on
a worker thread.

**Coalescing.**  Two requests with the same key — the service keys on
the :func:`~repro.runner.cache.spec_digest` of every expanded run, i.e.
on the result cache's own identity — denote the same computation, so
the second *attaches* to the first job instead of queueing a duplicate
(single-flight).  Followers share the leader's job id and therefore its
payload bytes; only jobs that are queued or running coalesce, because a
finished job's cache entries already make a rerun cheap.

**Deadlines.**  A job past its deadline while queued is skipped; one
that exceeds it while running has its cancel event set, which the
worker tier honors by cancelling not-yet-started runs (runs already
executing in a worker process finish and are discarded).  Either way
the job reports ``expired`` and the client gets a 504.

**Bounded state.**  Finished jobs are retained for polling but only the
most recent :attr:`Scheduler.retain_finished` of them — a long-lived
server must bound per-request state (cf. the hyper-compact estimator
line of work in PAPERS.md), so old results age out of memory and live
on only in the result cache.

**Durability.**  With a :class:`~repro.service.jobstore.JobStore`
attached, every admission journals a ``submit`` line and every terminal
transition journals its outcome (``done`` payloads content-addressed on
disk first), so ``/v1/result/<id>`` outlives both the retention window
and the process.  Recovery resubmits journaled-but-unfinished jobs
under their *original* ids via :meth:`Scheduler.submit`'s ``job_id``
hook.  Job ids carry the shard tag as a prefix (``s0-<hex>``) so a
front-door router can route result polls by id alone.
"""

from __future__ import annotations

import asyncio
import threading
import time
import uuid
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass, field

from ..chaos.controller import fault_point
from ..runner.spec import EnsembleSpec

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "EXPIRED",
    "QueueFullError",
    "Job",
    "Scheduler",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
EXPIRED = "expired"

#: States a new request may attach to (single-flight window).
_COALESCABLE = (QUEUED, RUNNING)
_TERMINAL = (DONE, FAILED, EXPIRED)


class QueueFullError(Exception):
    """Admission refused: the queue is at capacity (an HTTP 429)."""

    def __init__(self, depth: int, retry_after: int) -> None:
        super().__init__(f"admission queue full ({depth} jobs waiting)")
        self.depth = depth
        self.retry_after = retry_after


@dataclass
class Job:
    """One admitted computation and its lifecycle state."""

    id: str
    spec: EnsembleSpec
    key: Hashable
    deadline: float | None  # monotonic-clock absolute, None = no limit
    status: str = QUEUED
    payload: bytes | None = None
    error: str | None = None
    created: float = 0.0
    started: float | None = None
    finished: float | None = None
    cancel: threading.Event = field(default_factory=threading.Event)
    done: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def terminal(self) -> bool:
        """Whether the job has reached a final state."""
        return self.status in _TERMINAL


class Scheduler:
    """Bounded FIFO admission queue with single-flight coalescing.

    Parameters
    ----------
    runner:
        Blocking callable ``(spec, cancel_event) -> payload bytes``;
        executed on a worker thread via ``asyncio.to_thread``.  It must
        honor ``cancel_event`` promptly (the persistent executor polls
        it every 50 ms).
    max_queue:
        Maximum number of jobs *waiting* (running jobs do not count);
        admission beyond that raises :class:`QueueFullError`.
    retain_finished:
        How many terminal jobs stay pollable before aging out.
    """

    def __init__(
        self,
        runner: Callable[[EnsembleSpec, threading.Event], bytes],
        *,
        max_queue: int = 64,
        retain_finished: int = 1024,
        store=None,
        id_prefix: str = "",
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._runner = runner
        self.max_queue = max_queue
        self.retain_finished = retain_finished
        #: Optional durable JobStore; terminal states are journaled.
        self.store = store
        #: Shard tag prepended to job ids (e.g. ``"s0-"``) for routing.
        self.id_prefix = id_prefix
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[Hashable, Job] = {}
        self._finished: OrderedDict[str, None] = OrderedDict()
        self._running = 0
        # Exponential moving average of job wall time, seeding the
        # Retry-After estimate before the first job completes.
        self._ema_job_seconds = 1.0
        self.counters = {
            "accepted": 0,
            "rejected": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
            "expired": 0,
        }

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for a worker slot."""
        return self._queue.qsize()

    @property
    def running(self) -> int:
        """Jobs currently executing."""
        return self._running

    def retry_after(self) -> int:
        """Seconds a 429'd client should wait before retrying."""
        backlog = self.queue_depth + self._running
        estimate = backlog * self._ema_job_seconds
        return max(1, min(60, round(estimate)))

    def submit(
        self,
        spec: EnsembleSpec,
        *,
        key: Hashable,
        deadline_s: float | None = None,
        job_id: str | None = None,
        record: bool = True,
        coalesce: bool = True,
    ) -> tuple[Job, bool]:
        """Admit (or coalesce) a request; returns ``(job, coalesced)``.

        Raises :class:`QueueFullError` when the waiting line is at
        capacity — the service maps that to 429 + ``Retry-After``.

        ``job_id`` pins the id instead of minting one: recovery replays
        a crashed shard's journal and resubmits unfinished jobs under
        their original ids (with ``record=False`` — the submit line is
        already durable), so clients polling across the restart never
        see the id change.  Recovery also passes ``coalesce=False``:
        every journaled id must reach its *own* terminal line, so two
        recovered duplicates may not share one job (the rerun is cheap
        — the result cache already holds the leader's runs).
        """
        if coalesce:
            existing = self._inflight.get(key)
            if existing is not None and existing.status in _COALESCABLE:
                self.counters["coalesced"] += 1
                return existing, True
        # Chaos: ``reject`` faults refuse admission as if the queue
        # were saturated, exercising the full 429 + Retry-After path.
        fault = fault_point("service.scheduler.admit")
        if fault is not None and fault.kind == "reject":
            self.counters["rejected"] += 1
            raise QueueFullError(self._queue.qsize(), self.retry_after())
        if self._queue.qsize() >= self.max_queue:
            self.counters["rejected"] += 1
            raise QueueFullError(self._queue.qsize(), self.retry_after())
        now = time.monotonic()
        job = Job(
            id=job_id or f"{self.id_prefix}{uuid.uuid4().hex[:16]}",
            spec=spec,
            key=key,
            deadline=(now + deadline_s) if deadline_s is not None else None,
            created=now,
        )
        if self.store is not None and record:
            # Journal *before* the job becomes runnable: a crash after
            # this point leaves a recoverable submit line, never a job
            # the store has no record of.
            self.store.record_submit(job.id, spec.to_dict())
        self._jobs[job.id] = job
        self._inflight[key] = job
        self._queue.put_nowait(job)
        self.counters["accepted"] += 1
        return job, False

    def get(self, job_id: str) -> Job | None:
        """Look a job up for polling (lazily expiring stale queued ones)."""
        job = self._jobs.get(job_id)
        if (
            job is not None
            and job.status == QUEUED
            and job.deadline is not None
            and time.monotonic() >= job.deadline
        ):
            self._expire(job)
        return job

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    async def worker_loop(self) -> None:
        """Drain the queue forever; run one of these per worker slot."""
        while True:
            job = await self._queue.get()
            try:
                await self._execute(job)
            finally:
                self._queue.task_done()

    async def _execute(self, job: Job) -> None:
        if job.terminal:
            return  # expired while queued
        now = time.monotonic()
        if job.deadline is not None and now >= job.deadline:
            self._expire(job)
            return
        job.status = RUNNING
        job.started = now
        self._running += 1
        remaining = (
            job.deadline - now if job.deadline is not None else None
        )
        task = asyncio.ensure_future(
            asyncio.to_thread(self._runner, job.spec, job.cancel)
        )
        try:
            done, pending = await asyncio.wait({task}, timeout=remaining)
            if pending:
                # Deadline hit mid-run: cancel cooperatively, then join
                # the worker thread (it unblocks within the executor's
                # 50 ms cancel-poll interval) so no thread is leaked.
                job.cancel.set()
                try:
                    await task
                except Exception:
                    pass
                self._expire(job)
                return
            try:
                job.payload = task.result()
            except Exception as exc:
                job.status = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                self.counters["failed"] += 1
            else:
                job.status = DONE
                self.counters["completed"] += 1
        finally:
            self._running -= 1
            if job.terminal:
                self._finish(job)

    def _expire(self, job: Job) -> None:
        job.status = EXPIRED
        job.error = "deadline exceeded"
        self.counters["expired"] += 1
        self._finish(job)

    def _finish(self, job: Job) -> None:
        if job.finished is not None:
            return
        job.finished = time.monotonic()
        if self.store is not None:
            # Durability before visibility: the terminal line (and for
            # DONE, the content-addressed payload file) hits disk before
            # waiters wake, so a poll that sees the state can always be
            # re-answered after a crash.
            try:
                if job.status == DONE and job.payload is not None:
                    self.store.record_done(job.id, job.payload)
                else:
                    self.store.record_failed(
                        job.id, job.status, job.error or ""
                    )
            except OSError:
                # A full/broken disk degrades durability, not service:
                # the in-memory result still serves until retention.
                pass
        if job.started is not None and job.status == DONE:
            elapsed = job.finished - job.started
            self._ema_job_seconds = (
                0.7 * self._ema_job_seconds + 0.3 * elapsed
            )
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        job.done.set()
        self._finished[job.id] = None
        while len(self._finished) > self.retain_finished:
            evicted, _ = self._finished.popitem(last=False)
            self._jobs.pop(evicted, None)

    async def join(self, timeout: float | None = None) -> bool:
        """Wait for the queue to drain; True if it emptied in time."""
        try:
            await asyncio.wait_for(self._queue.join(), timeout)
            return True
        except asyncio.TimeoutError:
            return False
