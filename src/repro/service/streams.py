"""Long-lived streaming-detection sessions behind ``/v1/stream``.

A client opens a session (naming its detectors), POSTs JSONL flow
chunks against it, and closes it for the final summary; the per-session
:class:`~repro.streaming.detectors.DetectionEngine` keeps its state
across chunks, so detection latency is identical to feeding one
unbroken stream.  Admission is bounded the same way the run queue is:
at most ``max_streams`` sessions exist at once, and an open beyond that
is refused with a 429 + ``Retry-After`` instead of letting per-session
estimator state grow without limit.  Sessions that go quiet for
``ttl_s`` seconds are evicted lazily (on the next open/chunk/stats), so
an abandoned stream cannot pin its slot forever.

Chunk ingestion shares :class:`~repro.streaming.stream.JsonlFlowStream`'s
degradation contract: malformed lines and time-regressing records are
counted and skipped, never fatal — one corrupted chunk byte costs one
record, not the session.
"""

from __future__ import annotations

import math
import threading
import time
import uuid
from typing import Callable

from ..streaming.detectors import DetectionEngine, Detector, make_detector
from ..streaming.estimators import CountMinSketch, VirtualHyperLogLog
from ..streaming.stream import private_internal, record_from_json
from ..traces.records import TraceError

__all__ = [
    "DETECTOR_KINDS",
    "StreamProtocolError",
    "StreamLimitError",
    "StreamSession",
    "StreamRegistry",
    "build_stream_engine",
]

#: Detector short names ``/v1/stream`` accepts (make_detector's kinds).
DETECTOR_KINDS = (
    "contact-rate",
    "failure-ratio",
    "williamson",
    "dns-throttle",
)


class StreamProtocolError(Exception):
    """The open request's body doesn't describe a valid engine (400)."""


class StreamLimitError(Exception):
    """Too many live sessions; try again later (429)."""

    def __init__(self, open_streams: int, retry_after_s: float) -> None:
        super().__init__(
            f"stream limit reached ({open_streams} open sessions)"
        )
        self.open_streams = open_streams
        self.retry_after_s = retry_after_s


def build_stream_engine(
    payload: dict,
    *,
    internal: Callable[[int], bool] = private_internal,
) -> DetectionEngine:
    """Build a session's engine from an open-request body.

    The body is ``{"detectors": [...], "compact_capacity": N?}``.  Each
    detectors entry is a short name (``"failure-ratio"``) or an object
    ``{"kind": ..., "params": {...}}`` whose params go straight to the
    detector's constructor.  ``compact_capacity`` switches the
    contact-rate and failure-ratio detectors to the shared-register
    estimators sized for that many hosts (unless a detector names its
    own estimators in params).
    """
    if not isinstance(payload, dict):
        raise StreamProtocolError("open body must be a JSON object")
    unknown = set(payload) - {"detectors", "compact_capacity"}
    if unknown:
        raise StreamProtocolError(
            f"unknown open-request keys: {sorted(unknown)}"
        )
    capacity = payload.get("compact_capacity")
    if capacity is not None and (
        not isinstance(capacity, int) or capacity < 1
    ):
        raise StreamProtocolError(
            f"compact_capacity must be a positive integer, got {capacity!r}"
        )
    specs = payload.get("detectors", ["failure-ratio"])
    if not isinstance(specs, list) or not specs:
        raise StreamProtocolError("detectors must be a non-empty list")
    detectors: list[Detector] = []
    for spec in specs:
        if isinstance(spec, str):
            kind, params = spec, {}
        elif isinstance(spec, dict):
            kind = spec.get("kind")
            params = dict(spec.get("params", {}))
            extra = set(spec) - {"kind", "params"}
            if extra:
                raise StreamProtocolError(
                    f"unknown detector keys: {sorted(extra)}"
                )
        else:
            raise StreamProtocolError(
                f"detector entry must be a name or object, got {spec!r}"
            )
        if kind not in DETECTOR_KINDS:
            raise StreamProtocolError(
                f"unknown detector kind {kind!r}; known: {DETECTOR_KINDS}"
            )
        if not all(isinstance(key, str) for key in params):
            raise StreamProtocolError("detector params keys must be strings")
        if capacity is not None:
            if kind == "contact-rate":
                params.setdefault(
                    "estimator", VirtualHyperLogLog(capacity)
                )
            elif kind == "failure-ratio":
                params.setdefault("failures", CountMinSketch(capacity))
                params.setdefault("attempts", CountMinSketch(capacity))
        try:
            detectors.append(make_detector(kind, internal=internal, **params))
        except (TraceError, TypeError, ValueError) as exc:
            raise StreamProtocolError(
                f"bad params for detector {kind!r}: {exc}"
            ) from exc
    return DetectionEngine(detectors)


class StreamSession:
    """One live detection session: an engine plus ingest bookkeeping."""

    __slots__ = (
        "id",
        "engine",
        "created",
        "last_seen",
        "last_time",
        "chunks",
        "bad_lines",
        "reordered",
    )

    def __init__(
        self, session_id: str, engine: DetectionEngine, *, now: float
    ) -> None:
        self.id = session_id
        self.engine = engine
        self.created = now
        self.last_seen = now
        self.last_time = float("-inf")
        self.chunks = 0
        self.bad_lines = 0
        self.reordered = 0

    def ingest(self, text: str) -> dict:
        """Feed one JSONL chunk; returns the chunk's events + counters."""
        events = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = record_from_json(line)
            except TraceError:
                self.bad_lines += 1
                continue
            if record.time < self.last_time:
                self.reordered += 1
                continue
            self.last_time = record.time
            events.extend(self.engine.feed(record))
        self.chunks += 1
        return {
            "id": self.id,
            "events": [event.to_dict() for event in events],
            "flows": self.engine.flows,
            "bad_lines": self.bad_lines,
            "reordered": self.reordered,
        }

    def summary(self) -> dict:
        """Flush the engine and report the session's final state."""
        final_events = self.engine.finish()
        return {
            "id": self.id,
            "events": [event.to_dict() for event in final_events],
            "flows": self.engine.flows,
            "chunks": self.chunks,
            "bad_lines": self.bad_lines,
            "reordered": self.reordered,
            "total_events": len(self.engine.events),
            "quarantined": {
                name: sorted(hosts)
                for name, hosts in sorted(
                    self.engine.quarantined().items()
                )
            },
        }


class StreamRegistry:
    """Bounded, TTL-evicting registry of live stream sessions."""

    def __init__(
        self,
        *,
        max_streams: int = 8,
        ttl_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {max_streams}")
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self.max_streams = max_streams
        self.ttl_s = ttl_s
        self._clock = clock
        self._sessions: dict[str, StreamSession] = {}
        self._lock = threading.Lock()
        self.opened = 0
        self.closed = 0
        self.evicted = 0
        self.rejected = 0
        self.flows_total = 0

    def _evict_expired(self, now: float) -> None:
        expired = [
            sid
            for sid, session in self._sessions.items()
            if session.last_seen + self.ttl_s < now
        ]
        for sid in expired:
            self.flows_total += self._sessions.pop(sid).engine.flows
            self.evicted += 1

    def open(self, payload: dict) -> StreamSession:
        """Admit a session or raise :class:`StreamLimitError` (429)."""
        engine = build_stream_engine(payload)
        with self._lock:
            now = self._clock()
            self._evict_expired(now)
            if len(self._sessions) >= self.max_streams:
                # The earliest slot frees when its session's TTL runs out.
                retry_after = max(
                    1.0,
                    math.ceil(
                        min(
                            session.last_seen + self.ttl_s - now
                            for session in self._sessions.values()
                        )
                    ),
                )
                self.rejected += 1
                raise StreamLimitError(len(self._sessions), retry_after)
            session = StreamSession(uuid.uuid4().hex, engine, now=now)
            self._sessions[session.id] = session
            self.opened += 1
            return session

    def chunk(self, stream_id: str, text: str) -> dict:
        """Ingest one chunk; raises :class:`KeyError` for unknown ids."""
        with self._lock:
            now = self._clock()
            self._evict_expired(now)
            session = self._sessions[stream_id]
            session.last_seen = now
        return session.ingest(text)

    def close(self, stream_id: str) -> dict:
        """Finish and remove a session; returns its summary."""
        with self._lock:
            session = self._sessions.pop(stream_id)
            self.closed += 1
            self.flows_total += session.engine.flows
        return session.summary()

    def stats(self) -> dict:
        """Live counters for ``/metrics``."""
        with self._lock:
            self._evict_expired(self._clock())
            return {
                "open": len(self._sessions),
                "max": self.max_streams,
                "ttl_s": self.ttl_s,
                "opened": self.opened,
                "closed": self.closed,
                "evicted": self.evicted,
                "rejected": self.rejected,
                "flows": self.flows_total
                + sum(s.engine.flows for s in self._sessions.values()),
            }
