"""Async quarantine-simulation service: the runner as a long-lived server.

Every experiment layer so far is a one-shot invocation that pays full
process startup and builds a fresh executor pool per ensemble.  This
package turns the existing runner + cache + engines into something that
can be *queried under load* — the online, reactive shape the paper's
dynamic quarantine itself has:

* :mod:`repro.service.http11` — a dependency-free asyncio HTTP/1.1
  transport (stdlib only);
* :mod:`repro.service.protocol` — JSON in/out, validated through the
  runner's spec types; result payloads are canonical bytes, identical
  to an in-process ``run_ensemble``;
* :mod:`repro.service.scheduler` — bounded admission queue (429 +
  ``Retry-After`` backpressure), single-flight request coalescing keyed
  on the result cache's spec digests, per-request deadlines with
  cooperative cancellation, bounded finished-job retention;
* :mod:`repro.service.workers` — one persistent process pool for the
  life of the server, with crash-restart for dead workers;
* :mod:`repro.service.metrics` — per-endpoint latency histograms on the
  observability layer's decade buckets;
* :mod:`repro.service.app` — routes, graceful SIGTERM drain, and the
  ``repro serve`` / in-thread entry points;
* :mod:`repro.service.jobstore` — durable append-only job journal +
  content-addressed results, so ``/v1/result`` survives restarts;
* :mod:`repro.service.quotas` — per-tenant token-bucket admission
  (the simulator's own bucket math at the API edge);
* :mod:`repro.service.router` — the ``--shards N`` front door: shard
  spawning/supervision, prefix routing, fleet metrics;
* :mod:`repro.service.client` — a blocking stdlib client.

Quickstart::

    repro serve --port 8321 --jobs 4 --max-queue 64

    from repro.runner import EnsembleSpec, RunSpec, TopologySpec
    from repro.service import ServiceClient

    client = ServiceClient(port=8321)
    spec = EnsembleSpec(
        template=RunSpec(topology=TopologySpec(kind="star", num_nodes=100)),
        num_runs=5, label="served",
    )
    result = client.run(spec)       # a full EnsembleResult
    print(result.time_to_fraction(0.5))
"""

from .app import ServiceConfig, ServiceThread, SimulationService, run_server
from .client import JobFailed, JobLost, QueueFull, ServiceClient, ServiceError
from .jobstore import JobStore, StoredJob, default_job_store_dir
from .protocol import (
    ProtocolError,
    canonical_json,
    decode_ensemble_result,
    encode_ensemble_result,
    result_payload,
)
from .quotas import QuotaConfig, QuotaDecision, QuotaTable
from .router import Router, ShardSupervisor, StaticShards, run_sharded_server
from .scheduler import Job, QueueFullError, Scheduler
from .workers import WorkerTier

__all__ = [
    "Job",
    "JobFailed",
    "JobLost",
    "JobStore",
    "ProtocolError",
    "QueueFull",
    "QueueFullError",
    "QuotaConfig",
    "QuotaDecision",
    "QuotaTable",
    "Router",
    "Scheduler",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceThread",
    "ShardSupervisor",
    "SimulationService",
    "StaticShards",
    "StoredJob",
    "WorkerTier",
    "canonical_json",
    "decode_ensemble_result",
    "default_job_store_dir",
    "encode_ensemble_result",
    "result_payload",
    "run_server",
    "run_sharded_server",
]
