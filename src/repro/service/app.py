"""The simulation service: routes, lifecycle, and entry points.

``SimulationService`` wires the pieces together: the asyncio HTTP
transport (:mod:`repro.service.http11`) feeds requests to a small
dispatcher; POST ``/v1/run`` validates the spec through the runner
types and admits it to the :class:`~repro.service.scheduler.Scheduler`
(429 + ``Retry-After`` when the queue is full, coalescing duplicates
onto in-flight jobs); the scheduler's worker slots execute ensembles on
the persistent :class:`~repro.service.workers.WorkerTier`; GET
``/v1/result/<id>`` serves the canonical payload bytes; ``/healthz``
and ``/metrics`` expose liveness and live counters.

Three ways to run it:

* ``repro serve`` → :func:`run_server` — blocks, installs
  SIGTERM/SIGINT handlers, drains gracefully (stop accepting, finish
  queued + running jobs, close the pool) before exiting 0;
* :class:`ServiceThread` — the same service on a private event loop in
  a daemon thread, for tests, notebooks, and the load benchmark;
* ``await SimulationService(config).start()`` — embed it in an
  existing event loop.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import threading
from dataclasses import dataclass

from ..chaos.controller import fault_point
from ..observability.hub import observability_hub
from ..runner.api import expand_runs
from ..runner.cache import ResultCache, default_cache_dir, spec_digest
from ..runner.spec import EnsembleSpec, SpecError
from .http11 import HttpError, Request, encode_response, read_request
from .jobstore import JobStore, default_job_store_dir
from .metrics import ServiceMetrics
from .protocol import ProtocolError, canonical_json, parse_run_request
from .quotas import QuotaConfig, QuotaTable
from .scheduler import (
    DONE,
    EXPIRED,
    FAILED,
    QueueFullError,
    Scheduler,
)
from .streams import StreamLimitError, StreamProtocolError, StreamRegistry
from .workers import WorkerTier

__all__ = ["ServiceConfig", "SimulationService", "ServiceThread", "run_server"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` can turn into a running service.

    Attributes
    ----------
    host, port:
        Bind address; ``port=0`` lets the OS pick (the bound port is on
        ``SimulationService.port`` after ``start()``).
    jobs:
        Worker processes in the persistent pool (1 = in-process serial).
    max_queue:
        Admission-queue capacity; beyond it requests get 429.
    concurrency:
        Ensembles executing at once (each fans its runs across the
        shared pool).
    deadline_s:
        Default per-request deadline; ``None`` means no limit unless
        the request carries its own ``deadline_s``.
    drain_timeout_s:
        How long a graceful shutdown waits for in-flight work.
    cache_enabled, cache_dir:
        The shared result cache (the coalescing digests key on it).
    max_streams, stream_ttl_s:
        Bounded admission for ``/v1/stream`` detection sessions: at
        most ``max_streams`` live at once (429 beyond), and a session
        idle for ``stream_ttl_s`` seconds is evicted.
    shard_tag:
        This process's shard name; job ids are prefixed ``<tag>-`` so a
        front-door router can route result polls by id alone.
    job_store_dir:
        Root of the durable job store.  ``None`` (the default) places
        it under the result-cache dir when the cache is enabled, and
        disables durability entirely when it is not.
    quota_rate, quota_burst, quota_tenants:
        Per-tenant token-bucket admission on ``POST /v1/run``;
        ``quota_rate=None`` (the default) disables quotas.  In sharded
        mode the front-door router owns the one quota table and shards
        run with quotas off, so N shards never multiply a budget.
    """

    host: str = "127.0.0.1"
    port: int = 8321
    jobs: int = 1
    max_queue: int = 64
    concurrency: int = 2
    deadline_s: float | None = None
    drain_timeout_s: float = 30.0
    cache_enabled: bool = True
    cache_dir: str | None = None
    max_streams: int = 8
    stream_ttl_s: float = 300.0
    shard_tag: str = "s0"
    job_store_dir: str | None = None
    quota_rate: float | None = None
    quota_burst: float | None = None
    quota_tenants: tuple[tuple[str, float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.max_streams < 1:
            raise ValueError(
                f"max_streams must be >= 1, got {self.max_streams}"
            )
        if self.stream_ttl_s <= 0:
            raise ValueError(
                f"stream_ttl_s must be positive, got {self.stream_ttl_s}"
            )
        if not self.shard_tag or "-" in self.shard_tag:
            raise ValueError(
                f"shard_tag must be non-empty and dash-free, "
                f"got {self.shard_tag!r}"
            )

    def quota_config(self) -> QuotaConfig | None:
        """The quota table this config asks for, or ``None`` (disabled)."""
        if self.quota_rate is None:
            return None
        burst = (
            self.quota_burst
            if self.quota_burst is not None
            else max(1.0, 2.0 * self.quota_rate)
        )
        return QuotaConfig(
            rate=self.quota_rate,
            burst=burst,
            tenants={
                name: (rate, b) for name, rate, b in self.quota_tenants
            },
        )

    def resolved_store_dir(self) -> str | None:
        """Where the durable job store lives, or ``None`` (no store)."""
        if self.job_store_dir is not None:
            return self.job_store_dir
        if not self.cache_enabled:
            return None
        cache_root = (
            self.cache_dir if self.cache_dir else str(default_cache_dir())
        )
        return str(default_job_store_dir(cache_root))


def coalesce_key(spec) -> tuple:
    """The single-flight identity of an ensemble request.

    Keyed on the result cache's own digests of every expanded run (so
    two requests coalesce exactly when they denote the same cached
    computation, engine override included) plus the display label,
    which is part of the payload bytes.
    """
    return (
        spec.label,
        tuple(spec_digest(run) for run in expand_runs(spec)),
    )


class SimulationService:
    """One running quarantine-simulation server."""

    def __init__(
        self, config: ServiceConfig, *, runner=None
    ) -> None:
        self.config = config
        cache = (
            ResultCache(config.cache_dir) if config.cache_enabled else None
        )
        self.workers = WorkerTier(jobs=config.jobs, cache=cache)
        self.cache = cache
        store_dir = config.resolved_store_dir()
        self.store = (
            JobStore(store_dir, shard=config.shard_tag)
            if store_dir is not None
            else None
        )
        # ``runner`` injection lets tests drive the scheduler with a
        # gate-controlled function instead of real simulations.
        self.scheduler = Scheduler(
            runner if runner is not None else self.workers.run,
            max_queue=config.max_queue,
            store=self.store,
            id_prefix=f"{config.shard_tag}-",
        )
        quota_config = config.quota_config()
        self.quotas = (
            QuotaTable(quota_config) if quota_config is not None else None
        )
        self.recovered = 0
        self.metrics = ServiceMetrics()
        self.streams = StreamRegistry(
            max_streams=config.max_streams, ttl_s=config.stream_ttl_s
        )
        self.port: int | None = None
        self.draining = False
        self._server: asyncio.base_events.Server | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._connections: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and spawn the worker slots."""
        self._recover()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [
            asyncio.ensure_future(self.scheduler.worker_loop())
            for _ in range(self.config.concurrency)
        ]

    def _recover(self) -> None:
        """Resubmit journaled-but-unfinished jobs under their own ids.

        Runs before the listener binds, so a poll that reaches the
        restarted shard either finds the job queued (202) or already
        terminal — never unknown.  Payloads are pure functions of the
        spec, so the recovered result is byte-identical to what the
        crashed run would have produced.
        """
        if self.store is None:
            return
        for stored in self.store.incomplete():
            try:
                spec = EnsembleSpec.from_dict(stored.spec)
            except (SpecError, TypeError, KeyError, ValueError):
                # A journal written by a newer/older spec schema: leave
                # the line for operators, don't wedge startup.
                continue
            try:
                self.scheduler.submit(
                    spec,
                    key=coalesce_key(spec),
                    deadline_s=None,
                    job_id=stored.id,
                    record=False,
                    coalesce=False,
                )
            except QueueFullError:
                break  # admission bound still applies during recovery
            self.recovered += 1

    async def stop(self, *, drain: bool = True) -> bool:
        """Stop accepting, optionally drain, release the pool.

        Returns True when every in-flight job finished inside the drain
        timeout.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = True
        if drain:
            drained = await self.scheduler.join(
                self.config.drain_timeout_s
            )
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        # Hang up idle keep-alive connections so their handler tasks
        # see EOF and exit before the loop tears down.
        for writer in list(self._connections):
            writer.close()
        await asyncio.sleep(0)
        self.workers.close()
        if self.store is not None:
            self.store.close()
        return drained

    # ------------------------------------------------------------------
    # HTTP handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        encode_response(
                            exc.status,
                            canonical_json({"error": exc.message}),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                started = asyncio.get_running_loop().time()
                endpoint, response = self._dispatch(request)
                writer.write(response)
                await writer.drain()
                self.metrics.record(
                    endpoint,
                    asyncio.get_running_loop().time() - started,
                )
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to salvage
        except asyncio.CancelledError:
            pass  # loop shutting down; the connection dies with it
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, request: Request) -> tuple[str, bytes]:
        """Route one request; returns (endpoint template, response bytes)."""
        path = request.path
        if path == "/v1/run":
            if request.method != "POST":
                return "/v1/run", self._error(405, "use POST")
            return "/v1/run", self._handle_run(request)
        if path.startswith("/v1/result/"):
            if request.method != "GET":
                return "/v1/result", self._error(405, "use GET")
            job_id = path[len("/v1/result/"):]
            return "/v1/result", self._handle_result(job_id)
        if path == "/v1/stream":
            if request.method != "POST":
                return "/v1/stream", self._error(405, "use POST")
            return "/v1/stream", self._handle_stream_open(request)
        if path.startswith("/v1/stream/"):
            rest = path[len("/v1/stream/"):]
            if rest.endswith("/close"):
                if request.method != "POST":
                    return "/v1/stream/close", self._error(405, "use POST")
                stream_id = rest[: -len("/close")]
                return (
                    "/v1/stream/close",
                    self._handle_stream_close(stream_id),
                )
            if request.method != "POST":
                return "/v1/stream/chunk", self._error(405, "use POST")
            return (
                "/v1/stream/chunk",
                self._handle_stream_chunk(request, rest),
            )
        if path == "/healthz":
            if request.method != "GET":
                return "/healthz", self._error(405, "use GET")
            return "/healthz", self._handle_healthz()
        if path == "/metrics":
            if request.method != "GET":
                return "/metrics", self._error(405, "use GET")
            return "/metrics", self._handle_metrics()
        return "*", self._error(404, f"no such endpoint: {path}")

    @staticmethod
    def _error(status: int, message: str, **extra) -> bytes:
        return encode_response(
            status, canonical_json({"error": message, **extra})
        )

    @staticmethod
    def _json(status: int, obj, headers: dict[str, str] | None = None) -> bytes:
        return encode_response(
            status, canonical_json(obj), extra_headers=headers
        )

    def _handle_run(self, request: Request) -> bytes:
        if self.draining:
            return self._error(503, "service is draining")
        if self.quotas is not None:
            decision = self.quotas.check(
                request.headers.get("x-repro-tenant")
            )
            if not decision.allowed:
                return self._json(
                    429,
                    {
                        "error": "tenant quota exceeded",
                        "tenant": decision.tenant,
                        "retry_after_s": round(decision.retry_after_s, 3),
                    },
                    headers={"Retry-After": decision.retry_after_header},
                )
        try:
            spec, deadline_s = parse_run_request(request.body)
        except ProtocolError as exc:
            return self._error(400, str(exc))
        if deadline_s is None:
            deadline_s = self.config.deadline_s
        try:
            job, coalesced = self.scheduler.submit(
                spec, key=coalesce_key(spec), deadline_s=deadline_s
            )
        except QueueFullError as exc:
            return self._json(
                429,
                {
                    "error": "admission queue full",
                    "queue_depth": exc.depth,
                    "retry_after_s": exc.retry_after,
                },
                headers={"Retry-After": str(exc.retry_after)},
            )
        return self._json(
            202,
            {
                "id": job.id,
                "status": job.status,
                "coalesced": coalesced,
                "queue_depth": self.scheduler.queue_depth,
            },
        )

    def _handle_result(self, job_id: str) -> bytes:
        job = self.scheduler.get(job_id)
        if job is None:
            return self._stored_result(job_id)
        if job.status == DONE:
            assert job.payload is not None
            return encode_response(200, job.payload)
        if job.status == FAILED:
            return self._json(
                500, {"id": job.id, "status": FAILED, "error": job.error}
            )
        if job.status == EXPIRED:
            return self._json(
                504,
                {"id": job.id, "status": EXPIRED, "error": job.error},
            )
        return self._json(202, {"id": job.id, "status": job.status})

    def _stored_result(self, job_id: str) -> bytes:
        """Serve an id the scheduler forgot from the durable store.

        Covers two lives the in-memory table cannot: jobs finished
        before a restart, and jobs aged past the retention window —
        plus *any* shard's terminal jobs, since journals are shared.
        """
        if self.store is None:
            return self._error(404, f"unknown job id: {job_id}")
        stored = self.store.lookup_any(job_id)
        if stored is None:
            return self._error(404, f"unknown job id: {job_id}")
        if stored.status == "done":
            payload = self.store.payload_bytes(stored)
            if payload is not None:
                return encode_response(200, payload)
            return self._error(
                404, f"stored result missing for job id: {job_id}"
            )
        if stored.status == "failed":
            return self._json(
                500,
                {"id": job_id, "status": FAILED, "error": stored.error},
            )
        if stored.status == "expired":
            return self._json(
                504,
                {"id": job_id, "status": EXPIRED, "error": stored.error},
            )
        # Submitted on some shard but not terminal yet: tell the client
        # to keep polling (it is queued or running over there, or about
        # to be recovered by that shard's restart).
        return self._json(202, {"id": job_id, "status": "queued"})

    def _handle_stream_open(self, request: Request) -> bytes:
        if self.draining:
            return self._error(503, "service is draining")
        body = request.body.strip()
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, ValueError) as exc:
            return self._error(400, f"bad JSON body: {exc}")
        try:
            session = self.streams.open(payload)
        except StreamProtocolError as exc:
            return self._error(400, str(exc))
        except StreamLimitError as exc:
            return self._json(
                429,
                {
                    "error": "stream limit reached",
                    "open_streams": exc.open_streams,
                    "retry_after_s": exc.retry_after_s,
                },
                headers={"Retry-After": str(int(exc.retry_after_s))},
            )
        return self._json(
            201,
            {
                "id": session.id,
                "detectors": [d.name for d in session.engine.detectors],
                "max_streams": self.streams.max_streams,
            },
        )

    def _handle_stream_chunk(
        self, request: Request, stream_id: str
    ) -> bytes:
        # Chaos seam: a mid-stream fault degrades this one chunk, never
        # the session — the client replays it after Retry-After.
        try:
            fault = fault_point("service.stream.chunk")
        except RuntimeError:
            return self._json(
                503,
                {"error": "transient stream fault", "retry_after_s": 1.0},
                headers={"Retry-After": "1"},
            )
        if fault is not None and fault.kind == "reject":
            return self._json(
                429,
                {"error": "stream chunk rejected", "retry_after_s": 1.0},
                headers={"Retry-After": "1"},
            )
        try:
            result = self.streams.chunk(
                stream_id, request.body.decode("utf-8", "replace")
            )
        except KeyError:
            return self._error(404, f"unknown stream id: {stream_id}")
        return self._json(200, result)

    def _handle_stream_close(self, stream_id: str) -> bytes:
        try:
            summary = self.streams.close(stream_id)
        except KeyError:
            return self._error(404, f"unknown stream id: {stream_id}")
        return self._json(200, summary)

    def _handle_healthz(self) -> bytes:
        return self._json(
            200,
            {
                "status": "draining" if self.draining else "ok",
                "uptime_s": round(self.metrics.uptime_s, 3),
                "shard": self.config.shard_tag,
                "pid": os.getpid(),
            },
        )

    def _handle_metrics(self) -> bytes:
        hub = observability_hub()
        cache_stats = None
        if self.cache is not None:
            probes = self.cache.hits + self.cache.misses
            cache_stats = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "hit_rate": round(self.cache.hits / probes, 4)
                if probes
                else 0.0,
            }
        payload = {
            "uptime_s": round(self.metrics.uptime_s, 3),
            "shard": self.config.shard_tag,
            "recovered": self.recovered,
            "queue": {
                "depth": self.scheduler.queue_depth,
                "running": self.scheduler.running,
                "max": self.scheduler.max_queue,
                "concurrency": self.config.concurrency,
            },
            "jobs": dict(self.scheduler.counters),
            "jobstore": self.store.stats() if self.store else None,
            "quotas": self.quotas.stats() if self.quotas else None,
            "cache": cache_stats,
            "streams": self.streams.stats(),
            "workers": {
                "jobs": self.workers.executor.jobs,
                "mode": self.workers.mode,
                "restarts": self.workers.restarts,
            },
            "observability": {
                "counters": dict(hub.counters),
                "phase_seconds": {
                    phase: round(seconds, 6)
                    for phase, seconds in hub.phase_seconds.items()
                },
                "runs_recorded": hub.runs_recorded,
            },
            "latency": self.metrics.snapshot(),
        }
        return self._json(200, payload)


def run_server(config: ServiceConfig, out=sys.stdout) -> int:
    """Blocking entry point behind ``repro serve``.

    Serves until SIGTERM/SIGINT, then drains gracefully: the listener
    closes first (new connections refused), queued and running jobs
    finish within ``drain_timeout_s``, the worker pool shuts down, and
    the process exits 0.
    """

    async def _serve() -> int:
        service = SimulationService(config)
        await service.start()
        print(
            f"repro.service listening on "
            f"http://{config.host}:{service.port} "
            f"(jobs={config.jobs}, max_queue={config.max_queue}, "
            f"concurrency={config.concurrency})",
            file=out,
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread or exotic platform
        await stop.wait()
        print("repro.service draining...", file=out, flush=True)
        drained = await service.stop(drain=True)
        print(
            "repro.service stopped "
            f"({'clean' if drained else 'drain timeout'})",
            file=out,
            flush=True,
        )
        return 0 if drained else 1

    return asyncio.run(_serve())


class ServiceThread:
    """The service on a private event loop in a daemon thread.

    The shape tests and benchmarks want: ``with ServiceThread(config)
    as service:`` yields a started service whose ``port`` is bound;
    exit drains and joins.
    """

    def __init__(self, config: ServiceConfig, *, runner=None) -> None:
        self.config = config
        self.service: SimulationService | None = None
        self.port: int | None = None
        self._runner = runner
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    def start(self) -> "ServiceThread":
        """Spawn the loop thread and wait for the listener to bind."""
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.service = SimulationService(
                self.config, runner=self._runner
            )
            await self.service.start()
            self.port = self.service.port
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.service.stop(drain=True)

    def stop(self) -> None:
        """Drain the service and join the loop thread (idempotent)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=60)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
