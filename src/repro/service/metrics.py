"""Live service metrics: endpoint latencies and counter plumbing.

Latencies reuse the observability layer's decade bucketing
(:func:`repro.observability.stats.bucket_label`) so a service histogram
reads exactly like a simulator queue histogram: stable string-labeled
buckets that serialize as plain JSON and merge with ``merge_counts``.
The full ``/metrics`` document is assembled by the application from
these snapshots plus the scheduler counters, the result-cache hit
counters, and the process-wide observability hub.
"""

from __future__ import annotations

import time

from ..observability.stats import bucket_label, merge_counts

__all__ = ["EndpointLatency", "ServiceMetrics", "merge_latency_tables"]


class EndpointLatency:
    """Latency accounting for one endpoint, decade-bucketed in ms."""

    def __init__(self) -> None:
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self.histogram: dict[str, int] = {}

    def record(self, seconds: float) -> None:
        """Fold one request's wall time into the aggregate."""
        ms = seconds * 1000.0
        self.count += 1
        self.total_ms += ms
        self.max_ms = max(self.max_ms, ms)
        label = bucket_label(int(ms))
        self.histogram[label] = self.histogram.get(label, 0) + 1

    def snapshot(self) -> dict:
        """JSON-ready summary."""
        return {
            "count": self.count,
            "total_ms": round(self.total_ms, 3),
            "mean_ms": round(self.total_ms / self.count, 3)
            if self.count
            else 0.0,
            "max_ms": round(self.max_ms, 3),
            "histogram_ms": dict(self.histogram),
        }


class ServiceMetrics:
    """Per-endpoint latency table plus service uptime.

    Mutated only from the event loop (the connection handler records
    after each response), so no locking is needed.
    """

    def __init__(self) -> None:
        self.started_at = time.monotonic()
        self.endpoints: dict[str, EndpointLatency] = {}

    def record(self, endpoint: str, seconds: float) -> None:
        """Record one served request against its endpoint template."""
        latency = self.endpoints.get(endpoint)
        if latency is None:
            latency = self.endpoints[endpoint] = EndpointLatency()
        latency.record(seconds)

    @property
    def uptime_s(self) -> float:
        """Seconds since the service started."""
        return time.monotonic() - self.started_at

    def snapshot(self) -> dict:
        """JSON-ready per-endpoint latency table."""
        return {
            endpoint: latency.snapshot()
            for endpoint, latency in sorted(self.endpoints.items())
        }


def merge_latency_tables(tables: list[dict]) -> dict:
    """Fold several ``ServiceMetrics.snapshot()`` tables into one.

    The router's ``/metrics`` aggregates its shards' per-endpoint
    latency tables: counts and totals add, maxima take the max, and
    the decade histograms merge with the observability layer's
    ``merge_counts`` (same bucket labels on every shard, so the merge
    is exact, not approximate).
    """
    merged: dict[str, dict] = {}
    for table in tables:
        if not isinstance(table, dict):
            continue
        for endpoint, stats in table.items():
            if not isinstance(stats, dict):
                continue
            into = merged.setdefault(
                endpoint,
                {
                    "count": 0,
                    "total_ms": 0.0,
                    "max_ms": 0.0,
                    "histogram_ms": {},
                },
            )
            into["count"] += int(stats.get("count", 0))
            into["total_ms"] += float(stats.get("total_ms", 0.0))
            into["max_ms"] = max(
                into["max_ms"], float(stats.get("max_ms", 0.0))
            )
            into["histogram_ms"] = merge_counts(
                [into["histogram_ms"], stats.get("histogram_ms", {})]
            )
    for stats in merged.values():
        stats["total_ms"] = round(stats["total_ms"], 3)
        stats["mean_ms"] = (
            round(stats["total_ms"] / stats["count"], 3)
            if stats["count"]
            else 0.0
        )
    return {endpoint: merged[endpoint] for endpoint in sorted(merged)}
