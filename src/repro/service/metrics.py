"""Live service metrics: endpoint latencies and counter plumbing.

Latencies reuse the observability layer's decade bucketing
(:func:`repro.observability.stats.bucket_label`) so a service histogram
reads exactly like a simulator queue histogram: stable string-labeled
buckets that serialize as plain JSON and merge with ``merge_counts``.
The full ``/metrics`` document is assembled by the application from
these snapshots plus the scheduler counters, the result-cache hit
counters, and the process-wide observability hub.
"""

from __future__ import annotations

import time

from ..observability.stats import bucket_label

__all__ = ["EndpointLatency", "ServiceMetrics"]


class EndpointLatency:
    """Latency accounting for one endpoint, decade-bucketed in ms."""

    def __init__(self) -> None:
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self.histogram: dict[str, int] = {}

    def record(self, seconds: float) -> None:
        """Fold one request's wall time into the aggregate."""
        ms = seconds * 1000.0
        self.count += 1
        self.total_ms += ms
        self.max_ms = max(self.max_ms, ms)
        label = bucket_label(int(ms))
        self.histogram[label] = self.histogram.get(label, 0) + 1

    def snapshot(self) -> dict:
        """JSON-ready summary."""
        return {
            "count": self.count,
            "total_ms": round(self.total_ms, 3),
            "mean_ms": round(self.total_ms / self.count, 3)
            if self.count
            else 0.0,
            "max_ms": round(self.max_ms, 3),
            "histogram_ms": dict(self.histogram),
        }


class ServiceMetrics:
    """Per-endpoint latency table plus service uptime.

    Mutated only from the event loop (the connection handler records
    after each response), so no locking is needed.
    """

    def __init__(self) -> None:
        self.started_at = time.monotonic()
        self.endpoints: dict[str, EndpointLatency] = {}

    def record(self, endpoint: str, seconds: float) -> None:
        """Record one served request against its endpoint template."""
        latency = self.endpoints.get(endpoint)
        if latency is None:
            latency = self.endpoints[endpoint] = EndpointLatency()
        latency.record(seconds)

    @property
    def uptime_s(self) -> float:
        """Seconds since the service started."""
        return time.monotonic() - self.started_at

    def snapshot(self) -> dict:
        """JSON-ready per-endpoint latency table."""
        return {
            endpoint: latency.snapshot()
            for endpoint, latency in sorted(self.endpoints.items())
        }
