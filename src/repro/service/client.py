"""Blocking stdlib client for the simulation service.

``ServiceClient`` speaks the protocol over one keep-alive
``http.client`` connection (reconnecting transparently when the server
side closes): submit a spec, poll its job, decode the payload back
into a full :class:`~repro.runner.results.EnsembleResult`.  Intended
users are the load generator, the CI smoke script, the test suite, and
anyone driving experiments from a separate process — the decoded
result is indistinguishable from a local ``run_ensemble`` return.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

from ..runner.results import EnsembleResult
from ..runner.spec import EnsembleSpec
from .protocol import decode_ensemble_result

__all__ = [
    "ServiceError",
    "QueueFull",
    "JobFailed",
    "JobLost",
    "ServiceClient",
]


class ServiceError(RuntimeError):
    """An unexpected response from the service."""

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class QueueFull(ServiceError):
    """Admission refused (HTTP 429); honor :attr:`retry_after_s`."""

    def __init__(self, status: int, payload: Any, retry_after_s: int) -> None:
        super().__init__(status, payload)
        self.retry_after_s = retry_after_s


class JobFailed(ServiceError):
    """The job reached a terminal non-success state (failed/expired)."""


class JobLost(ServiceError):
    """A previously-accepted job id now 404s: the server *lost* it.

    Distinct from the generic :class:`ServiceError` a never-submitted
    id gets — a 404 for an id this client saw 202-accepted means the
    job fell out of every table (no in-memory record, no journal line),
    which the durable job store exists to prevent.  Tests and callers
    use this to tell recovered-after-crash jobs (202/200 across the
    restart) from genuinely lost ones.
    """

    def __init__(self, status: int, payload: Any, job_id: str) -> None:
        super().__init__(status, payload)
        self.job_id = job_id


class ServiceClient:
    """One connection to one service instance.

    ``tenant`` stamps every submit with an ``X-Repro-Tenant`` header so
    per-tenant quotas at the service (or the sharded router) bill the
    right bucket.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        *,
        timeout: float = 60.0,
        tenant: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.tenant = tenant
        self._connection: http.client.HTTPConnection | None = None
        # Ids this client saw 202-accepted and has not yet seen reach a
        # terminal state — the set a 404 is checked against to raise
        # JobLost instead of a generic error.
        self._accepted: set[str] = set()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        """Drop the connection (reopened automatically on next use)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        headers = {}
        if body is not None:
            headers["Content-Type"] = "application/json"
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        for attempt in (1, 2):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                payload = response.read()
                return (
                    response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    payload,
                )
            except (ConnectionError, http.client.HTTPException, OSError):
                # Keep-alive connection went stale; reconnect once.
                self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _decode(payload: bytes) -> Any:
        try:
            return json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return payload.decode("utf-8", errors="replace")

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def submit(
        self, spec: EnsembleSpec, *, deadline_s: float | None = None
    ) -> dict[str, Any]:
        """POST the spec; returns the 202 admission body.

        Raises :class:`QueueFull` on 429 (with the server's suggested
        ``retry_after_s``) and :class:`ServiceError` otherwise.
        """
        request: dict[str, Any] = {"spec": spec.to_dict()}
        if deadline_s is not None:
            request["deadline_s"] = deadline_s
        status, headers, payload = self._request(
            "POST", "/v1/run", json.dumps(request).encode("utf-8")
        )
        body = self._decode(payload)
        if status == 429:
            raise QueueFull(
                status, body, int(headers.get("retry-after", "1"))
            )
        if status != 202:
            raise ServiceError(status, body)
        if isinstance(body, dict) and isinstance(body.get("id"), str):
            self._accepted.add(body["id"])
        return body

    def poll(self, job_id: str) -> dict[str, Any]:
        """GET the job once; ``{"status": ..., "payload": bytes?}``.

        Raises :class:`JobLost` when an id this client saw accepted now
        404s (the server forgot a job it had admitted); other 404s stay
        generic :class:`ServiceError`.
        """
        status, _headers, payload = self._request(
            "GET", f"/v1/result/{job_id}"
        )
        if status == 200:
            self._accepted.discard(job_id)
            return {"status": "done", "payload": payload}
        body = self._decode(payload)
        if status in (500, 504):
            self._accepted.discard(job_id)
            return body
        if status == 202:
            return body
        if status == 404 and job_id in self._accepted:
            raise JobLost(status, body, job_id)
        raise ServiceError(status, body)

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        interval: float = 0.05,
    ) -> bytes:
        """Poll until the job is terminal; returns the payload bytes.

        Raises :class:`JobFailed` for failed/expired jobs and
        :class:`TimeoutError` when the wait budget runs out.
        """
        deadline = time.monotonic() + timeout
        while True:
            state = self.poll(job_id)
            if state["status"] == "done":
                return state["payload"]
            if state["status"] in ("failed", "expired"):
                raise JobFailed(500, state)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state['status']} "
                    f"after {timeout}s"
                )
            time.sleep(interval)

    def run_bytes(
        self,
        spec: EnsembleSpec,
        *,
        deadline_s: float | None = None,
        timeout: float = 300.0,
    ) -> bytes:
        """Submit and wait; returns the canonical payload bytes."""
        job = self.submit(spec, deadline_s=deadline_s)
        return self.wait(job["id"], timeout=timeout)

    def run(
        self,
        spec: EnsembleSpec,
        *,
        deadline_s: float | None = None,
        timeout: float = 300.0,
    ) -> EnsembleResult:
        """Submit, wait, and decode into a full :class:`EnsembleResult`."""
        return decode_ensemble_result(
            self.run_bytes(spec, deadline_s=deadline_s, timeout=timeout)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        """The liveness document."""
        status, _headers, payload = self._request("GET", "/healthz")
        body = self._decode(payload)
        if status != 200:
            raise ServiceError(status, body)
        return body

    def metrics(self) -> dict[str, Any]:
        """The live metrics document."""
        status, _headers, payload = self._request("GET", "/metrics")
        body = self._decode(payload)
        if status != 200:
            raise ServiceError(status, body)
        return body
