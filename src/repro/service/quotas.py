"""Per-tenant admission quotas: the paper's token bucket at the API edge.

The paper's host- and edge-level defenses cap a source's contact rate
with token buckets (``repro.simulator.links.TokenBucket``); this module
applies the *same* bucket — not a reimplementation — as per-tenant
admission control on ``POST /v1/run``.  Each tenant (named by the
``X-Repro-Tenant`` request header) owns one bucket that accrues
``rate`` tokens per second up to ``burst``; admitting a request costs
one token, and a tenant whose bucket is empty gets a 429 whose
``Retry-After`` is computed from the bucket's *deficit*: the seconds of
refill needed before the next token exists.

The bucket invariants the property suite pins are inherited from the
simulator's bucket: tokens never go negative (``try_consume`` is
all-or-nothing) and long-run admitted throughput is bounded by
``rate * elapsed + burst`` (the burst is the only credit a quiet tenant
can save up).

Clock discipline: elapsed time is measured per tenant from the last
refill, clamped at zero, so a clock that stalls or skews backwards
(exercised by the ``service.quota.clock`` chaos site) can never mint
tokens or push a bucket negative — the quota degrades toward *stricter*
admission, never toward over-admission.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..chaos.controller import fault_point
from ..simulator.links import TokenBucket

__all__ = [
    "DEFAULT_TENANT",
    "QuotaConfig",
    "QuotaDecision",
    "TenantBucket",
    "QuotaTable",
]

#: The tenant requests without an ``X-Repro-Tenant`` header bill to.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class QuotaConfig:
    """Admission budget for tenants.

    Attributes
    ----------
    rate:
        Requests per second a tenant accrues (may be fractional; 0.5
        means one request every two seconds).
    burst:
        Bucket ceiling — the most requests a quiet tenant can save up
        and spend at once.  Buckets start *full* (a fresh tenant gets
        its burst immediately; the simulator's links start empty
        because tick 0 is inside the epidemic, but an API tenant's
        history before its first request is all idle time).
    tenants:
        Per-tenant ``(rate, burst)`` overrides.
    """

    rate: float = 10.0
    burst: float = 20.0
    tenants: dict[str, tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, (rate, burst) in (("", (self.rate, self.burst)),) + tuple(
            self.tenants.items()
        ):
            label = f"tenant {name!r} " if name else ""
            if rate <= 0:
                raise ValueError(f"{label}rate must be positive, got {rate}")
            if burst < 1:
                raise ValueError(f"{label}burst must be >= 1, got {burst}")

    def limits_for(self, tenant: str) -> tuple[float, float]:
        """The ``(rate, burst)`` pair governing one tenant."""
        return self.tenants.get(tenant, (self.rate, self.burst))


@dataclass(frozen=True)
class QuotaDecision:
    """Outcome of offering one request to a tenant's bucket."""

    tenant: str
    allowed: bool
    tokens: float
    #: Seconds of refill until the next whole token (0 when admitted).
    retry_after_s: float = 0.0

    @property
    def retry_after_header(self) -> str:
        """``Retry-After`` value: the deficit rounded up to whole seconds."""
        return str(max(1, int(-(-self.retry_after_s // 1))))


class TenantBucket:
    """One tenant's admission bucket on a wall clock.

    Wraps the simulator's :class:`TokenBucket` — same accrual and
    all-or-nothing consume — driving it with fractional elapsed-second
    "ticks" instead of the simulator's discrete clock.
    """

    __slots__ = ("tenant", "_bucket", "_last_refill", "admitted", "throttled")

    def __init__(
        self, tenant: str, rate: float, burst: float, *, now: float
    ) -> None:
        self.tenant = tenant
        self._bucket = TokenBucket(rate, burst)
        # Start full: an API tenant's pre-history is idle time.  Refill
        # double the needed span so the ceiling clamp lands the level at
        # exactly ``burst`` — ``rate * (burst / rate)`` alone can round
        # a hair below it.
        self._bucket.refill(2.0 * burst / rate)
        self._last_refill = now
        self.admitted = 0
        self.throttled = 0

    @property
    def tokens(self) -> float:
        """Currently available tokens (never negative).

        The simulator bucket's consume carries a 1e-12 float tolerance,
        so its internal level can sit an epsilon below zero after an
        admission; clamp it out of the quota-facing view.
        """
        return max(0.0, self._bucket.tokens)

    @property
    def rate(self) -> float:
        return self._bucket.rate

    def offer(self, now: float, cost: float = 1.0) -> QuotaDecision:
        """Refill by wall-clock elapsed time, then try to spend ``cost``."""
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._bucket.refill(elapsed)
            self._last_refill = now
        else:
            # Clock stalled or skewed backwards: accrue nothing, and
            # re-anchor so the skew is not refunded when time recovers.
            self._last_refill = max(self._last_refill, now)
        if self._bucket.try_consume(cost):
            self.admitted += 1
            return QuotaDecision(
                tenant=self.tenant, allowed=True, tokens=self.tokens
            )
        self.throttled += 1
        deficit = cost - self._bucket.tokens
        return QuotaDecision(
            tenant=self.tenant,
            allowed=False,
            tokens=self.tokens,
            retry_after_s=deficit / self._bucket.rate,
        )


class QuotaTable:
    """Thread-safe per-tenant bucket registry for the admission edge.

    Lives either in the front-door router (sharded mode — one table
    governs the whole fleet, so N shards never multiply a tenant's
    budget) or in a single-process service.  Buckets are created on a
    tenant's first request and kept forever; the table is bounded by
    the number of distinct tenants, which is operator-controlled.
    """

    def __init__(
        self,
        config: QuotaConfig,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        self._buckets: dict[str, TenantBucket] = {}
        self._lock = threading.Lock()

    def _now(self) -> float:
        now = self._clock()
        # Chaos: a ``delay`` fault at ``service.quota.clock`` skews the
        # observed clock backwards by its delay — the bucket contract
        # (never negative, never over-credited) must hold regardless.
        fault = fault_point("service.quota.clock")
        if fault is not None and fault.kind == "delay":
            now -= fault.delay_s
        return now

    def check(self, tenant: str | None, cost: float = 1.0) -> QuotaDecision:
        """Offer one request against the tenant's bucket."""
        name = tenant or DEFAULT_TENANT
        now = self._now()
        with self._lock:
            bucket = self._buckets.get(name)
            if bucket is None:
                rate, burst = self.config.limits_for(name)
                bucket = self._buckets[name] = TenantBucket(
                    name, rate, burst, now=now
                )
            return bucket.offer(now, cost)

    def stats(self) -> dict:
        """Per-tenant counters for ``/metrics``."""
        with self._lock:
            return {
                "rate": self.config.rate,
                "burst": self.config.burst,
                "tenants": {
                    name: {
                        "admitted": bucket.admitted,
                        "throttled": bucket.throttled,
                        "tokens": round(bucket.tokens, 4),
                    }
                    for name, bucket in sorted(self._buckets.items())
                },
            }
