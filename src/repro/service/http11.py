"""A deliberately small asyncio HTTP/1.1 layer for the service.

Only what the simulation protocol needs: request line + headers +
``Content-Length`` bodies, keep-alive connections, and response
encoding.  No routing framework, no TLS, no chunked transfer — POSTed
specs and polled results are small JSON documents, and keeping the
transport this thin means the scheduler, not the plumbing, is the part
of the service worth reading.  The server stays dependency-free:
``asyncio.start_server`` plus this module is the whole stack.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from ..chaos.controller import corrupt

__all__ = [
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
    "STATUS_REASONS",
    "HttpError",
    "Request",
    "read_request",
    "encode_response",
]

#: Hard limits on request size; both are far above anything the
#: protocol legitimately produces, so exceeding them is a client bug.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed request; ``status`` is what the client should see."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for anything malformed or oversized —
    the connection handler answers with the error's status and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HttpError(411, "chunked bodies are not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc

    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    return Request(
        method=method,
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


def encode_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response, Content-Length framed."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    # Chaos: ``truncate``/``garble`` faults ship a damaged frame so
    # client-resilience tests see real short reads and bad status lines.
    return corrupt("service.http.response", head.encode("latin-1") + body)
