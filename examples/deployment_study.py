#!/usr/bin/env python3
"""Model-vs-simulation deployment study (the paper's core method).

For each deployment strategy this script solves the matching analytical
ODE model *and* runs the packet-level simulation, then prints the two
times-to-50% side by side — the validation loop Sections 4-5 perform for
every figure.

Run:  python examples/deployment_study.py
"""

from __future__ import annotations

import math

from repro import DeploymentStrategy, QuarantineStudy


def fmt(t: float) -> str:
    return f"{t:8.1f}" if math.isfinite(t) else "   never"


def main() -> None:
    study = QuarantineStudy(
        num_nodes=1000, scan_rate=0.8, initial_infections=5, seed=11
    )

    strategies = [
        DeploymentStrategy.none(),
        DeploymentStrategy.hosts(coverage=0.50, rate=0.01),
        DeploymentStrategy.hosts(coverage=1.00, rate=0.01),
        DeploymentStrategy.backbone(base_rate=0.02),
    ]

    print("running simulations (4 strategies x 5 runs) ...\n")
    simulated = study.simulate_deployments(
        strategies, max_ticks=500, num_runs=5
    )

    print(f"{'strategy':<18} {'model t50':>10} {'sim t50':>10}")
    for strategy in strategies:
        model = study.analytical_model(strategy)
        model_t50 = model.solve(3000, num_points=3000).time_to_fraction(0.5)
        sim_t50 = simulated[strategy.label].time_to_fraction(0.5)
        print(f"{strategy.label:<18} {fmt(model_t50)} {fmt(sim_t50)}")

    print(
        "\nNotes: the analytical models are mean-field (no routing\n"
        "latency, no queueing), so absolute times differ; the *ordering*\n"
        "and the gaps between strategies are what the paper predicts.\n"
        "Full host deployment changes the regime entirely (Figure 2's\n"
        "cliff); backbone filters get most of that benefit with a\n"
        "handful of filter locations."
    )


if __name__ == "__main__":
    main()
