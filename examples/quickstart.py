#!/usr/bin/env python3
"""Quickstart: where should worm rate-limiting filters go?

Builds the paper's 1,000-node power-law internet, releases a random
scanning worm (beta = 0.8), and compares four deployment strategies —
none, 5% of hosts, edge routers, backbone routers — exactly like
Figure 4 of "Dynamic Quarantine of Internet Worms" (DSN 2004).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DeploymentStrategy, QuarantineStudy


def main() -> None:
    study = QuarantineStudy(
        num_nodes=1000,
        scan_rate=0.8,        # worm scans per infected host per tick
        initial_infections=5,
        seed=7,
    )

    strategies = [
        DeploymentStrategy.none(),
        DeploymentStrategy.hosts(coverage=0.05, rate=0.01),
        DeploymentStrategy.edge(base_rate=0.02),
        DeploymentStrategy.backbone(base_rate=0.02),
    ]

    print("simulating 4 deployment strategies x 5 runs ...")
    curves = study.simulate_deployments(
        strategies, max_ticks=400, num_runs=5
    )

    report = study.slowdown_report(curves, level=0.5)
    print()
    print(report.format_table())
    print()
    print(
        "The paper's conclusion, reproduced: host filters barely help at\n"
        "partial coverage, edge filters help a little, and backbone\n"
        "filters delay 50% infection by roughly 5x."
    )


if __name__ == "__main__":
    main()
