#!/usr/bin/env python3
"""Outbreak response what-if: how fast must patching start?

Section 6 of the paper shows that the *total damage* (hosts ever
infected) depends sharply on when patching begins, and that backbone rate
limiting buys the responders time.  This script sweeps response
thresholds with and without backbone filters and prints the damage table
(the Figure 8 experiment as a decision aid).

Run:  python examples/outbreak_response.py
"""

from __future__ import annotations

from repro import DeploymentStrategy, QuarantineStudy
from repro.models.homogeneous import HomogeneousSIModel
from repro.simulator.immunization import ImmunizationPolicy


def main() -> None:
    num_nodes = 1000
    beta, mu = 0.8, 0.1
    study = QuarantineStudy(
        num_nodes, scan_rate=beta, initial_infections=5, seed=3
    )
    baseline_model = HomogeneousSIModel(num_nodes, beta)

    print(
        f"worm beta={beta}, patch rate mu={mu}, {num_nodes}-node "
        "power-law internet, 5-run averages\n"
    )
    print(
        f"{'response at':<14} {'start tick':>10} "
        f"{'damage, no RL':>15} {'damage, backbone RL':>21}"
    )

    for level in (0.1, 0.2, 0.5, 0.8):
        start_tick = round(baseline_model.exact_time_to_fraction(level))
        policy = ImmunizationPolicy.at_tick(start_tick, mu)

        undefended = study.simulate_deployments(
            [DeploymentStrategy.none()],
            max_ticks=200,
            num_runs=5,
            immunization=policy,
        )["no_rl"]
        defended = study.simulate_deployments(
            [DeploymentStrategy.backbone(0.02)],
            max_ticks=400,
            num_runs=5,
            immunization=policy,
        )["backbone_rl"]

        print(
            f"{level:>10.0%}    {start_tick:>10d} "
            f"{undefended.final_fraction_ever_infected():>14.1%} "
            f"{defended.final_fraction_ever_infected():>20.1%}"
        )

    print(
        "\nReading the table: every row holds the wall-clock response\n"
        "time fixed; the backbone filters slow the worm so the same\n"
        "response patches more hosts before they are hit — the paper's\n"
        "'rate limiting buys time for system administrators' conclusion."
    )


if __name__ == "__main__":
    main()
