#!/usr/bin/env python3
"""The paper's title, end to end: DYNAMIC quarantine of an internet worm.

A random-scanning worm probes mostly unused address space; a network
telescope watching a slice of that dark space notices the scan spike; an
anomaly detector declares an outbreak; and — after a configurable human/
operational reaction delay — backbone rate-limiting filters deploy
mid-outbreak.  The sweep below shows what every tick of hesitation costs.

Run:  python examples/dynamic_quarantine.py
"""

from __future__ import annotations

from repro.simulator import (
    DynamicQuarantine,
    Network,
    RandomScanWorm,
    ScanDetector,
    Telescope,
    WormSimulation,
    average_trajectories,
    deploy_backbone_rate_limit,
)


def run(reaction_delay: int | None, num_runs: int = 5):
    runs, quarantines = [], []
    for i in range(num_runs):
        seed = 500 + i
        quarantine = None
        if reaction_delay is not None:
            quarantine = DynamicQuarantine(
                lambda net: deploy_backbone_rate_limit(net, 0.02),
                telescope=Telescope(coverage=0.1),
                detector=ScanDetector(scans_per_infected=0.8),
                reaction_delay=reaction_delay,
            )
        sim = WormSimulation(
            Network.from_powerlaw(1000, seed=seed),
            RandomScanWorm(hit_probability=0.5),
            scan_rate=1.6,
            initial_infections=5,
            lan_delivery=True,
            quarantine=quarantine,
            seed=seed,
        )
        runs.append(sim.run(400))
        quarantines.append(quarantine)
    return average_trajectories(runs), quarantines


def main() -> None:
    print("worm: random scanning, 50% of probes hit dark space")
    print("telescope: 10% of dark-space probes observed\n")

    baseline, _ = run(None)
    base_t50 = baseline.time_to_fraction(0.5)
    print(f"{'response policy':<24} {'t50':>7} {'slowdown':>9}  detection")
    print(f"{'no quarantine':<24} {base_t50:7.1f} {'1.0x':>9}")

    for delay in (0, 2, 5, 10):
        curve, quarantines = run(delay)
        t50 = curve.time_to_fraction(0.5)
        detections = [
            q.detected_at for q in quarantines if q and q.detected_at is not None
        ]
        mean_detect = sum(detections) / len(detections)
        print(
            f"{'react after +' + str(delay) + ' ticks':<24} {t50:7.1f} "
            f"{t50 / base_t50:8.1f}x  tick {mean_detect:.0f} "
            f"(est. {quarantines[0].detector.report.estimated_infected:.0f} "
            "infected)"
        )

    print(
        "\nThe telescope spots the worm while <5% of hosts are infected.\n"
        "Reacting immediately buys the full backbone-RL slowdown; every\n"
        "tick of delay hands the worm another doubling — the quantified\n"
        "version of 'containment must be initiated within minutes'."
    )


if __name__ == "__main__":
    main()
