#!/usr/bin/env python3
"""Extending the simulator: a custom hit-list worm vs the defenses.

The library's worm strategies are pluggable.  This example implements a
*hit-list* worm (Staniford et al.'s "Warhol worm" idea, cited by the
paper): it spreads through a precomputed list of known-vulnerable hosts
before falling back to random scanning — and we ask whether the paper's
backbone rate limiting still holds up against it.

Run:  python examples/custom_worm.py
"""

from __future__ import annotations

import random

from repro import DeploymentStrategy
from repro.models.base import Trajectory
from repro.simulator import (
    Network,
    RandomScanWorm,
    WormSimulation,
    WormStrategy,
    average_trajectories,
    deploy_backbone_rate_limit,
)


class HitListWorm(WormStrategy):
    """Scans a shared hit list first, then falls back to random scanning.

    ``hit_list`` is global worm knowledge (distributed with the payload):
    every instance works through the same list, so early spread wastes no
    scans on immune or fictitious addresses.
    """

    def __init__(self, hit_list: list[int]) -> None:
        self._hit_list = list(hit_list)
        self._cursor = 0
        self._fallback = RandomScanWorm()

    @property
    def name(self) -> str:
        return "hit_list"

    def pick_target(
        self, rng: random.Random, origin: int, network: Network
    ) -> int | None:
        while self._cursor < len(self._hit_list):
            target = self._hit_list[self._cursor]
            self._cursor += 1
            if target != origin:
                return target
        return self._fallback.pick_target(rng, origin, network)


def run_case(defended: bool, worm_kind: str, num_runs: int = 5) -> Trajectory:
    runs = []
    for i in range(num_runs):
        seed = 100 + i
        network = Network.from_powerlaw(1000, seed=seed)
        if defended:
            deploy_backbone_rate_limit(network, 0.02)
        if worm_kind == "hit_list":
            rng = random.Random(seed)
            hit_list = rng.sample(
                list(network.infectable), k=len(network.infectable) // 2
            )
            worm: WormStrategy = HitListWorm(hit_list)
        else:
            worm = RandomScanWorm()
        simulation = WormSimulation(
            network,
            worm,
            scan_rate=0.8,
            initial_infections=5,
            lan_delivery=True,
            seed=seed,
        )
        runs.append(simulation.run(400))
    return average_trajectories(runs)


def main() -> None:
    print("comparing random-scan vs hit-list worms, 5-run averages ...\n")
    print(f"{'case':<34} {'t50':>8}")
    for worm_kind in ("random", "hit_list"):
        for defended in (False, True):
            curve = run_case(defended, worm_kind)
            label = (
                f"{worm_kind} worm, "
                f"{'backbone RL' if defended else 'no defense'}"
            )
            print(f"{label:<34} {curve.time_to_fraction(0.5):>8.1f}")

    print(
        "\nThe hit list accelerates the undefended worm (no wasted\n"
        "scans), but its packets still cross the backbone — the filters'\n"
        "advantage is positional, not informational, so the slowdown\n"
        "factor survives even a smarter worm.  DeploymentStrategy: "
        f"{DeploymentStrategy.backbone(0.02).label}"
    )


if __name__ == "__main__":
    main()
