#!/usr/bin/env python3
"""The Section 7 trace study, end to end, on synthetic campus traffic.

Generates a calibrated campus trace (999 normal clients, 17 servers, 33
P2P clients, 79 worm-infected hosts), then:

1. classifies every host from behaviour alone and checks the census;
2. derives practical 99.9%-coverage rate limits per host class;
3. measures the worms' peak scanning rates;
4. replays the traffic through the Williamson IP throttle and the
   DNS-based throttle to quantify the protection/pain tradeoff.

Run:  python examples/campus_traffic_study.py
"""

from __future__ import annotations

import statistics

from repro.traces import (
    HostClass,
    TraceConfig,
    census,
    classify_hosts,
    generate_trace,
    peak_scan_rate,
    recommend_rate_limits,
    window_size_study,
)
from repro.throttle import (
    DnsThrottle,
    WilliamsonThrottle,
    replay_class,
    worm_slowdown,
)


def main() -> None:
    print("generating 10 minutes of campus traffic (1,128 hosts) ...")
    trace = generate_trace(TraceConfig(duration=600.0, seed=0))
    print(f"  {len(trace):,} flow records\n")

    # 1. Behavioural census ------------------------------------------------
    classes = classify_hosts(trace)
    counts = census(classes)
    errors = sum(
        1 for host, truth in trace.labels.items() if classes[host] is not truth
    )
    print("host census (paper found 999 / 17 / 33 / 79):")
    for host_class in HostClass:
        print(f"  {host_class.value:<16} {counts.get(host_class, 0):>5}")
    print(f"  misclassified vs ground truth: {errors}\n")

    # 2. Practical rate limits ----------------------------------------------
    for group in (HostClass.NORMAL, HostClass.P2P):
        table = recommend_rate_limits(
            trace, trace.hosts_of_class(group), group=group.value
        )
        print(f"99.9% rate limits, {group.value} hosts (per 5 s window):")
        for label, limit in table.as_rows():
            print(f"  {label:<44} {limit:>4}")
    windows = window_size_study(trace, trace.hosts_of_class(HostClass.NORMAL))
    formatted = ", ".join(
        f"{limit} per {int(w)} s" for w, limit in sorted(windows.items())
    )
    print(f"window-size study (non-DNS aggregate): {formatted}\n")

    # 3. Worm peaks ----------------------------------------------------------
    blaster = max(
        peak_scan_rate(trace, h)
        for h in trace.hosts_of_class(HostClass.WORM_BLASTER)
    )
    welchia = max(
        peak_scan_rate(trace, h)
        for h in trace.hosts_of_class(HostClass.WORM_WELCHIA)
    )
    print(
        f"worm peak scan rates: Blaster {blaster}/min, Welchia "
        f"{welchia}/min (paper: 671 and 7,068)\n"
    )

    # 4. Throttle replay -----------------------------------------------------
    print("replaying traffic through the proposed throttles:")
    for factory in (WilliamsonThrottle, DnsThrottle):
        name = factory().name
        normal = [
            r
            for r in replay_class(
                trace, HostClass.NORMAL, factory, limit_hosts=40
            )
            if r.contacts
        ]
        mean_delay = statistics.mean(r.mean_delay for r in normal)
        blaster_slow = worm_slowdown(
            replay_class(trace, HostClass.WORM_BLASTER, factory)
        )
        welchia_slow = worm_slowdown(
            replay_class(trace, HostClass.WORM_WELCHIA, factory)
        )
        print(
            f"  {name:<24} normal delay {mean_delay:6.3f} s | "
            f"Blaster {blaster_slow:5.1f}x | Welchia {welchia_slow:6.1f}x"
        )

    print(
        "\nThe DNS-based scheme never touches resolved traffic, yet slows\n"
        "the scanners an order of magnitude harder — the paper's case for\n"
        "DNS-aware rate limiting."
    )


if __name__ == "__main__":
    main()
