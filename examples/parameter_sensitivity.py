#!/usr/bin/env python3
"""Sensitivity study: how robust are the paper's operating points?

The paper reports single operating points (one backbone budget, a few
host coverages).  This script sweeps around them with
:mod:`repro.core.sweeps` and prints the resulting response surfaces —
useful before trusting any single number from a simulation study.

Run:  python examples/parameter_sensitivity.py
"""

from __future__ import annotations

from repro.core.sweeps import (
    sweep_backbone_rate,
    sweep_detection_latency,
    sweep_host_coverage,
)


def main() -> None:
    print("1) Backbone filter budget (smaller = tighter quarantine)\n")
    print(sweep_backbone_rate(num_nodes=500, num_runs=3).format_table())

    print("\n2) Host-filter coverage q (Eq. 3 predicts 1/(1-q))\n")
    print(sweep_host_coverage(num_nodes=500, num_runs=3).format_table())

    print("\n3) Dynamic quarantine: reaction delay after detection\n")
    print(sweep_detection_latency(num_nodes=500, num_runs=3).format_table())

    print(
        "\nTakeaways: the backbone result is robust across an order of\n"
        "magnitude of budget; host coverage only pays near totality; and\n"
        "detection is worthless without a fast deployment path."
    )


if __name__ == "__main__":
    main()
