"""E18 — Section 7 throttles in action: replay the campus trace.

Closes the loop on the paper's premise: the two proposed rate-limiting
mechanisms, implemented for real and fed the same traffic, barely touch
legitimate hosts while collapsing worm scan rates — and the DNS-based
scheme hits the worms harder.
"""

from __future__ import annotations

from conftest import print_rows

from repro.core.scenarios import sec7_throttle_replay


def test_sec7_throttle_replay(benchmark, campus_trace):
    replay = benchmark.pedantic(
        lambda: sec7_throttle_replay(campus_trace, normal_hosts=40),
        rounds=1,
        iterations=1,
    )
    rows = []
    for scheme, stats in replay.items():
        rows.append((f"{scheme}: normal mean delay (s)",
                     round(stats["normal_mean_delay"], 4)))
        rows.append((f"{scheme}: Blaster slowdown",
                     f"{stats['blaster_slowdown']:.1f}x"))
        rows.append((f"{scheme}: Welchia slowdown",
                     f"{stats['welchia_slowdown']:.1f}x"))
    print_rows("Section 7 throttle replay", rows)

    ip = replay["williamson_ip_throttle"]
    dns = replay["dns_based_throttle"]
    # Legitimate traffic: the IP throttle imposes only sub-second mean
    # delays (bursty page loads miss the 5-entry working set); the DNS
    # scheme leaves resolved traffic completely untouched.
    assert ip["normal_mean_delay"] < 1.5
    assert dns["normal_mean_delay"] < 0.1
    # Worms: dramatic slowdowns; Welchia (faster scanner) hit harder.
    assert ip["blaster_slowdown"] > 1.5
    assert ip["welchia_slowdown"] > ip["blaster_slowdown"]
    # The DNS-based scheme beats the plain IP throttle on worms.
    assert dns["blaster_slowdown"] > ip["blaster_slowdown"]
    assert dns["welchia_slowdown"] > ip["welchia_slowdown"]
