"""E07 — Figure 5: edge-router RL vs worm strategy (simulated).

Paper shape: edge RL yields ~50% slowdown against random-propagation
worms but "very little perceivable benefit" against local-preferential
worms.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.scenarios import fig5_edge_localpref_simulation


def test_fig5_edge_local_pref(benchmark):
    curves = benchmark.pedantic(
        lambda: fig5_edge_localpref_simulation(
            num_nodes=1000, num_runs=10, max_ticks=150
        ),
        rounds=1,
        iterations=1,
    )
    print_series("Figure 5: edge RL, random vs local-preferential", curves)

    random_slowdown = curves["random_edge_rl"].time_to_fraction(
        0.5
    ) / curves["random_no_rl"].time_to_fraction(0.5)
    local_slowdown = curves["local_pref_edge_rl"].time_to_fraction(
        0.5
    ) / curves["local_pref_no_rl"].time_to_fraction(0.5)
    print(
        f"\nslowdown to 50%: random={random_slowdown:.2f}x "
        f"local_pref={local_slowdown:.2f}x"
    )

    # ~50% slowdown for random worms (band: 1.2x - 3x).
    assert 1.2 < random_slowdown < 3.5
    # "Very little perceivable benefit" against local-pref worms: their
    # within-subnet spread is essentially untouched by the edge filter.
    assert local_slowdown < 1.15
    assert local_slowdown < random_slowdown - 0.1
