"""Ablation — sensitivity of Eq. (6) to the routers' residual rate r.

The backbone model's leak term ``delta = min(I*beta*alpha, r*N/2^32)``
is what keeps covered paths from being a perfect quarantine.  The paper
assumes "r is relatively small" and drops the term; this ablation sweeps
``r`` to show where that approximation holds and where it visibly bends
the curve.
"""

from __future__ import annotations

from conftest import print_rows

from repro.models.backbone import ADDRESS_SPACE, BackboneRateLimitModel

POPULATION = 1000
BETA = 0.8
COVERAGE = 0.95  # alpha: most paths filtered


def sweep() -> dict[str, float]:
    times: dict[str, float] = {}
    for label, r in (
        ("r=0 (paper's approximation)", 0.0),
        ("r -> leak cap 0.01/tick", 0.01 * ADDRESS_SPACE / POPULATION),
        ("r -> leak cap 1/tick", ADDRESS_SPACE / POPULATION),
    ):
        model = BackboneRateLimitModel(
            POPULATION, BETA, COVERAGE, residual_rate=r
        )
        times[label] = model.solve(600).time_to_fraction(0.5)
    return times


def test_ablation_residual_rate(benchmark):
    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_rows(
        "Ablation: Eq. (6) leak-term sensitivity (time to 50%)",
        [(label, f"{value:.1f}" if value != float("inf") else "never")
         for label, value in times.items()],
    )
    values = list(times.values())
    # More leakage -> strictly faster infection.
    assert values[0] > values[1] > values[2]
    # A genuinely small residual (leak << uncovered spread) barely moves
    # t50 — the regime where the paper's approximation is justified.
    assert (values[0] - values[1]) / values[0] < 0.25
    # But even one leaked infection per tick erodes a 95%-coverage
    # quarantine badly: at alpha near 1 the leak term dominates.
    assert values[2] < 0.7 * values[0]
