"""Engine benchmarks: the ``engines`` matrix through ``repro.bench``.

Runs ``benchmarks/matrices/engines.json`` — the scenarios the
differential harness anchors on:

* **fig 1b star** — small enough that the fast engine runs in mirror
  mode; a direct pair run here asserts the trajectories are
  bit-identical, and the timing shows what exact RNG replay costs;
* **fig 4 power law** (1,000 nodes, the paper's scale) across the
  figure's deployment strategies — the fast engine runs in batch mode;
  final sizes must agree statistically while the wall clock drops by
  the documented ~5x;
* a 10,000-node power-law run on the fast engine only, demonstrating a
  scale the reference engine is too slow to sweep (the matrix excludes
  the reference arm).

The matrix runs once per module; every test reads its cases out of the
resulting ledger, which the session fixture merges into ``--bench-json``
(the unified schema-v1 ledger ``repro bench compare`` consumes).  The
speedup assertions are deliberately loose floors that only catch
catastrophic regressions — the variance-gated comparison against a
checked-in baseline (``repro bench compare``) carries the real numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import load_matrix, run_matrix
from repro.simulator import (
    FastWormSimulation,
    Network,
    RandomScanWorm,
    WormSimulation,
)

#: fig-4 deployment strategies measured by the matrix.
FIG4_STRATEGIES = ("none", "hosts", "edge", "backbone")


@pytest.fixture(scope="module")
def engines_ledger(bench_ledger):
    """Run the ``engines`` matrix once; register it with the session."""
    ledger = run_matrix(
        load_matrix("engines"),
        progress=lambda line: print(f"[bench] {line}"),
    )
    bench_ledger.add(ledger)
    return ledger


def _case(ledger, scenario, **axes):
    """The unique case matching ``scenario`` and the given axis values."""
    matches = [
        case
        for case in ledger.cases
        if case.scenario == scenario
        and all(case.axes.get(key) == value for key, value in axes.items())
    ]
    assert len(matches) == 1, (
        f"expected one {scenario} case with {axes}, found "
        f"{[case.id for case in matches]}"
    )
    return matches[0]


def test_fig1b_star_mirror_identity():
    """Mirror-mode regime: fast and reference must be bit-identical."""
    trajectories = []
    for engine_cls in (WormSimulation, FastWormSimulation):
        simulation = engine_cls(
            Network.from_star(200),
            RandomScanWorm(),
            scan_rate=0.8,
            initial_infections=2,
            seed=42,
        )
        trajectories.append(simulation.run(60))
    reference, fast = trajectories
    np.testing.assert_array_equal(reference.infected, fast.infected)
    np.testing.assert_array_equal(
        reference.ever_infected, fast.ever_infected
    )


def test_fig1b_star_engines(engines_ledger):
    """200-leaf star: both engines measured, mirror-mode cost visible."""
    reference = _case(engines_ledger, "fig1b_star", engine="reference")
    fast = _case(engines_ledger, "fig1b_star", engine="fast")
    print(
        f"\nfig1b star: ref {reference.stats.mean:.3f}s "
        f"fast {fast.stats.mean:.3f}s "
        f"({reference.stats.mean / fast.stats.mean:.2f}x)"
    )
    # Mirror mode replays the reference RNG exactly, so there is no
    # speedup floor here — only agreement (asserted above) and timing.
    assert reference.stats.n >= 3 and fast.stats.n >= 3


@pytest.mark.parametrize("strategy", FIG4_STRATEGIES)
def test_fig4_powerlaw_engines(engines_ledger, strategy):
    """1,000-node power law: batch mode at the paper's figure-4 scale."""
    reference = _case(
        engines_ledger, "fig4_powerlaw", engine="reference",
        strategy=strategy,
    )
    fast = _case(
        engines_ledger, "fig4_powerlaw", engine="fast", strategy=strategy
    )
    speedup = reference.stats.mean / fast.stats.mean
    ref_final = reference.metrics["mean_final_size"]
    fast_final = fast.metrics["mean_final_size"]
    print(
        f"\nfig4/{strategy}: ref {reference.stats.mean:.3f}s "
        f"fast {fast.stats.mean:.3f}s ({speedup:.2f}x) "
        f"final {ref_final:.1f} vs {fast_final:.1f}"
    )
    # Statistical agreement: mean final sizes within 5% of the
    # population (3 seeds is a smoke check; the 20-seed comparison
    # lives in tests/test_engine_equivalence.py).
    assert abs(ref_final - fast_final) <= 0.05 * 1000
    # Loose wall-clock floor; the target (>=5x) is read off the ledger.
    assert speedup >= 1.5, f"fast engine regressed: {speedup:.2f}x"


def test_powerlaw_10k_fast_only(engines_ledger):
    """10,000-node power law on the fast engine: scale headroom demo."""
    case = _case(engines_ledger, "powerlaw_10k", engine="fast")
    final = case.metrics["mean_final_size"]
    infectable = Network.from_powerlaw(10_000, seed=42).num_infectable
    print(
        f"\n10k power law: fast {case.stats.mean:.3f}s, "
        f"final {final:.0f}/{infectable}"
    )
    assert final > 0.9 * infectable
    # The reference arm is excluded by the matrix, not just slow.
    assert not any(
        case.scenario == "powerlaw_10k"
        and case.axes.get("engine") == "reference"
        for case in engines_ledger.cases
    )
