"""Engine benchmarks: reference vs fast wall-clock on the paper scenarios.

Measures the two scenarios the differential harness anchors on:

* **fig 1b star** — small enough that the fast engine runs in mirror
  mode; the trajectories must be bit-identical, and the timing shows
  what exact RNG replay costs;
* **fig 4 power law** (1,000 nodes, the paper's scale) — the fast
  engine runs in batch mode across the figure's deployment strategies;
  final sizes must agree statistically while the wall clock drops by
  the documented ~5x;

plus a 10,000-node power-law run on the fast engine only, demonstrating
a scale the reference engine is too slow to sweep.

Run with ``--bench-json BENCH_pr3.json`` to write the regression ledger
(wall-clock seconds, ticks/sec, speedups per scenario).  The speedup
assertions here are deliberately loose floors that only catch
catastrophic regressions; the ledger carries the real numbers.
"""

from __future__ import annotations

import statistics
import time

import numpy as np
import pytest

from repro.simulator import (
    FastWormSimulation,
    Network,
    RandomScanWorm,
    WormSimulation,
    deploy_backbone_rate_limit,
    deploy_edge_rate_limit,
    deploy_host_rate_limit,
)

#: fig 4 deployment strategies (mirrors repro.core.scenarios.fig4).
FIG4_STRATEGIES = {
    "none": None,
    "hosts": lambda net: deploy_host_rate_limit(net, 0.05, 0.01, seed=7),
    "edge": lambda net: deploy_edge_rate_limit(net, 0.02),
    "backbone": lambda net: deploy_backbone_rate_limit(net, 0.02),
}

FIG4_SEEDS = (42, 43, 44)


def _timed_run(engine_cls, network, *, seed, scan_rate, max_ticks,
               initial_infections=2):
    """Run one seeded simulation; only the tick loop is timed."""
    simulation = engine_cls(
        network,
        RandomScanWorm(),
        scan_rate=scan_rate,
        initial_infections=initial_infections,
        seed=seed,
    )
    start = time.perf_counter()
    trajectory = simulation.run(max_ticks)
    elapsed = time.perf_counter() - start
    return elapsed, trajectory


def test_fig1b_star_engines(bench_recorder):
    """200-leaf star: mirror mode, bit-identical, timed on both engines."""
    results = {}
    for label, engine_cls in (
        ("reference", WormSimulation),
        ("fast", FastWormSimulation),
    ):
        times, trajectories = [], []
        for seed in FIG4_SEEDS:
            network = Network.from_star(200)
            elapsed, trajectory = _timed_run(
                engine_cls, network, seed=seed, scan_rate=0.8, max_ticks=60
            )
            times.append(elapsed)
            trajectories.append(trajectory)
        results[label] = (times, trajectories)

    for traj_ref, traj_fast in zip(results["reference"][1], results["fast"][1]):
        np.testing.assert_array_equal(traj_ref.infected, traj_fast.infected)
        np.testing.assert_array_equal(
            traj_ref.ever_infected, traj_fast.ever_infected
        )

    ref_median = statistics.median(results["reference"][0])
    fast_median = statistics.median(results["fast"][0])
    ticks = len(results["fast"][1][0].times)
    bench_recorder.record(
        "fig1b_star_200",
        engine_mode="mirror",
        ticks=ticks,
        reference_seconds=round(ref_median, 4),
        fast_seconds=round(fast_median, 4),
        speedup=round(ref_median / fast_median, 2),
        fast_ticks_per_second=round(ticks / fast_median, 1),
        bit_identical=True,
    )
    print(
        f"\nfig1b star: ref {ref_median:.3f}s fast {fast_median:.3f}s "
        f"({ref_median / fast_median:.2f}x, bit-identical)"
    )


@pytest.mark.parametrize("strategy", FIG4_STRATEGIES, ids=FIG4_STRATEGIES)
def test_fig4_powerlaw_engines(bench_recorder, strategy):
    """1,000-node power law: batch mode at the paper's figure-4 scale."""
    deploy = FIG4_STRATEGIES[strategy]
    results = {}
    for label, engine_cls in (
        ("reference", WormSimulation),
        ("fast", FastWormSimulation),
    ):
        times, finals, ticks_run = [], [], []
        for seed in FIG4_SEEDS:
            network = Network.from_powerlaw(1000, seed=42)
            if deploy is not None:
                deploy(network)
            elapsed, trajectory = _timed_run(
                engine_cls, network, seed=seed, scan_rate=0.8, max_ticks=400
            )
            times.append(elapsed)
            finals.append(float(trajectory.ever_infected[-1]))
            ticks_run.append(len(trajectory.times))
        results[label] = (times, finals, ticks_run)

    ref_median = statistics.median(results["reference"][0])
    fast_median = statistics.median(results["fast"][0])
    speedup = ref_median / fast_median
    ref_final = statistics.mean(results["reference"][1])
    fast_final = statistics.mean(results["fast"][1])
    ticks = statistics.median(results["fast"][2])

    bench_recorder.record(
        f"fig4_powerlaw_1000_{strategy}",
        engine_mode="batch",
        ticks=int(ticks),
        reference_seconds=round(ref_median, 4),
        fast_seconds=round(fast_median, 4),
        speedup=round(speedup, 2),
        fast_ticks_per_second=round(ticks / fast_median, 1),
        reference_mean_final_size=round(ref_final, 1),
        fast_mean_final_size=round(fast_final, 1),
    )
    print(
        f"\nfig4/{strategy}: ref {ref_median:.3f}s fast {fast_median:.3f}s "
        f"({speedup:.2f}x) final {ref_final:.1f} vs {fast_final:.1f}"
    )

    # Statistical agreement: mean final sizes within 5% of the
    # population (3 seeds is a smoke check; the 20-seed comparison
    # lives in tests/test_engine_equivalence.py).
    assert abs(ref_final - fast_final) <= 0.05 * 1000
    # Loose wall-clock floor; the target (>=5x) is read off the ledger.
    assert speedup >= 1.5, f"fast engine regressed: {speedup:.2f}x"


def test_powerlaw_10k_fast_only(bench_recorder):
    """10,000-node power law on the fast engine: the scale headroom demo."""
    network = Network.from_powerlaw(10_000, seed=42)
    elapsed, trajectory = _timed_run(
        FastWormSimulation,
        network,
        seed=42,
        scan_rate=0.8,
        max_ticks=400,
        initial_infections=10,
    )
    ticks = len(trajectory.times)
    final = float(trajectory.ever_infected[-1])
    bench_recorder.record(
        "powerlaw_10k_fast",
        engine_mode="batch",
        ticks=ticks,
        fast_seconds=round(elapsed, 4),
        fast_ticks_per_second=round(ticks / elapsed, 1),
        final_size=final,
        num_infectable=network.num_infectable,
    )
    print(
        f"\n10k power law: fast {elapsed:.3f}s over {ticks} ticks "
        f"({ticks / elapsed:.0f} ticks/s), final {final:.0f}"
        f"/{network.num_infectable}"
    )
    assert final > 0.9 * network.num_infectable
