"""E02 — Figure 1(b): simulated rate limiting on a 200-node star.

Paper protocol: 10-run averages; links through the hub limited, hub node
budget capped.  Shape: the simulation confirms the analytical ordering,
with hub RL roughly 3x slower than 30% leaf RL to the 60% level.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.scenarios import fig1b_star_simulation
from repro.core.slowdown import compare_times


def test_fig1b_star_simulation(benchmark):
    curves = benchmark.pedantic(
        lambda: fig1b_star_simulation(num_runs=10, max_ticks=60),
        rounds=1,
        iterations=1,
    )
    report = compare_times(curves, baseline="no_rl", level=0.6)
    print_series("Figure 1(b): star graph, simulated (10-run mean)", curves)
    print(report.format_table())

    factors = report.factors
    assert factors["leaf_rl_10pct"] < 2.0
    assert factors["leaf_rl_10pct"] <= factors["leaf_rl_30pct"]
    assert factors["hub_rl"] > 2.0 * factors["leaf_rl_30pct"]
