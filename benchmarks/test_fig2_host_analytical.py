"""E03 — Figure 2: analytical host-based rate limiting.

Paper shape: the slowdown is linear in deployed fraction q (lambda =
q*beta2 + (1-q)*beta1), so partial deployment barely helps, and only the
jump from 80% to 100% coverage changes the regime.
"""

from __future__ import annotations

import pytest
from conftest import print_series

from repro.core.scenarios import fig2_host_analytical
from repro.core.slowdown import compare_times


def test_fig2_host_analytical(benchmark):
    curves = benchmark.pedantic(fig2_host_analytical, rounds=1, iterations=1)
    report = compare_times(curves, baseline="no_rl", level=0.5)
    print_series("Figure 2: host-based RL, analytical", curves)
    print(report.format_table())

    factors = report.factors
    # Early-phase slowdown follows 1/(1-q): 5% ~ 1.05x, 50% ~ 2x, 80% ~ 5x.
    assert factors["host_rl_5pct"] == pytest.approx(1 / 0.95, rel=0.05)
    assert factors["host_rl_50pct"] == pytest.approx(2.0, rel=0.10)
    assert factors["host_rl_80pct"] == pytest.approx(5.0, rel=0.15)
    # The 100% cliff: full deployment runs at beta2, ~80x slower.
    assert factors["host_rl_100pct"] > 10 * factors["host_rl_80pct"]
