"""E11a — Figure 8(a): simulated ever-infected under delayed immunization.

Paper shape (beta = 0.8, mu = 0.1, 1,000-node power-law graph): total
ever-infected plateaus near 80% / 90% / 98% for immunization starting at
20% / 50% / 80% infection.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.scenarios import fig8a_immunization_simulation


def test_fig8a_immunization_sim(benchmark):
    curves = benchmark.pedantic(
        lambda: fig8a_immunization_simulation(
            num_nodes=1000, num_runs=10, max_ticks=120
        ),
        rounds=1,
        iterations=1,
    )
    print_series(
        "Figure 8(a): ever-infected, delayed immunization (sim)",
        curves,
        of_ever=True,
    )

    finals = {
        label: curve.final_fraction_ever_infected()
        for label, curve in curves.items()
    }
    print("\nfinal ever-infected:", {k: round(v, 3) for k, v in finals.items()})

    # Paper bands: ~80% / ~90% / ~98%.
    assert 0.60 <= finals["immunize_at_20pct"] <= 0.92
    assert 0.80 <= finals["immunize_at_50pct"] <= 0.97
    assert 0.90 <= finals["immunize_at_80pct"] <= 1.00
    assert (
        finals["immunize_at_20pct"]
        < finals["immunize_at_50pct"]
        < finals["immunize_at_80pct"]
    )
