"""E11b — Figure 8(b): simulated immunization + backbone rate limiting.

Paper headline: immunization starting at the 20%-equivalent tick yields
~80% ever-infected without rate limiting but ~72% with backbone RL — a
~10-point drop at identical wall-clock response time.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.scenarios import (
    fig8a_immunization_simulation,
    fig8b_immunization_rl_simulation,
)


def test_fig8b_immunization_rl_sim(benchmark):
    with_rl = benchmark.pedantic(
        lambda: fig8b_immunization_rl_simulation(
            num_nodes=1000, num_runs=10, max_ticks=300
        ),
        rounds=1,
        iterations=1,
    )
    print_series(
        "Figure 8(b): ever-infected, immunization + backbone RL (sim)",
        with_rl,
        of_ever=True,
    )

    without = fig8a_immunization_simulation(
        num_nodes=1000, num_runs=10, max_ticks=120
    )
    earliest_label = sorted(
        (label for label in with_rl if label.startswith("immunize_at_tick_")),
        key=lambda s: int(s.rsplit("_", 1)[1]),
    )[0]
    damage_without = without["immunize_at_20pct"].final_fraction_ever_infected()
    damage_with = with_rl[earliest_label].final_fraction_ever_infected()
    drop = damage_without - damage_with
    print(
        f"\never-infected at 20%-equivalent start: "
        f"no RL={damage_without:.3f}  backbone RL={damage_with:.3f} "
        f"(drop {drop:.3f})"
    )

    # The paper reports ~0.10; accept a meaningful drop band.
    assert drop > 0.04
    # Ordering across start ticks still holds under rate limiting.
    tick_labels = sorted(
        (label for label in with_rl if label.startswith("immunize_at_tick_")),
        key=lambda s: int(s.rsplit("_", 1)[1]),
    )
    finals = [
        with_rl[label].final_fraction_ever_infected() for label in tick_labels
    ]
    assert finals == sorted(finals)
