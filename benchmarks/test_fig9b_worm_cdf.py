"""E13 — Figure 9(b): contact-rate CDFs for worm-infected hosts.

Paper shape: worm traffic spikes all three contact metrics, so the three
refinement lines nearly coincide, and the whole distribution sits one to
two orders of magnitude right of the normal clients'.
"""

from __future__ import annotations

import numpy as np
from conftest import print_rows

from repro.core.scenarios import fig9_contact_rate_cdfs
from repro.traces.records import HostClass
from repro.traces.windows import Refinement, count_contacts


def test_fig9b_worm_cdf(benchmark, campus_trace):
    cdfs = benchmark.pedantic(
        lambda: fig9_contact_rate_cdfs(campus_trace),
        rounds=1,
        iterations=1,
    )

    worm_hosts = set(
        campus_trace.hosts_of_class(HostClass.WORM_BLASTER)
        + campus_trace.hosts_of_class(HostClass.WORM_WELCHIA)
    )
    normal_hosts = set(campus_trace.hosts_of_class(HostClass.NORMAL))

    worm_all = count_contacts(campus_trace, worm_hosts,
                              refinement=Refinement.ALL)
    worm_nodns = count_contacts(campus_trace, worm_hosts,
                                refinement=Refinement.NO_DNS)
    normal_all = count_contacts(campus_trace, normal_hosts,
                                refinement=Refinement.ALL)

    rows = [
        ("worm median contacts / 5 s", int(np.median(worm_all.counts))),
        ("worm no-DNS / all ratio",
         round(sum(worm_nodns.counts) / max(sum(worm_all.counts), 1), 4)),
        ("normal median contacts / 5 s", int(np.median(normal_all.counts))),
    ]
    print_rows("Figure 9(b): worm-infected hosts, 5 s windows", rows)

    # Lines nearly coincide: refinements remove almost nothing.
    assert sum(worm_nodns.counts) > 0.95 * sum(worm_all.counts)
    # Worm rates sit 1-2 orders of magnitude right of normal rates.
    assert np.median(worm_all.counts) > 20 * max(
        np.median(normal_all.counts), 1
    )
    assert set(cdfs["worms"]) == set(Refinement)
