"""E16 — Section 7 practical rate limits.

Paper numbers at 99.9% coverage, 5-second windows:
  normal clients (aggregate): 16 / 14 / 9   (all / no-prior / no-DNS)
  P2P clients   (aggregate): 89 / 61 / 26
  per normal host:            ~4 all, ~1 non-DNS
  window study (non-DNS):     5 per 1 s, 12 per 5 s, 50 per 60 s
"""

from __future__ import annotations

import math

from conftest import print_rows

from repro.core.scenarios import (
    sec7_rate_limit_tables,
    sec7_window_size_study,
)
from repro.traces.records import HostClass
from repro.traces.windows import Refinement, per_host_counts


def _pooled_percentile(per_host: dict, q: float) -> int:
    pooled = sorted(c for wc in per_host.values() for c in wc.counts)
    index = min(math.ceil(q * len(pooled)) - 1, len(pooled) - 1)
    return pooled[max(index, 0)]


def test_sec7_rate_limits(benchmark, campus_trace):
    tables = benchmark.pedantic(
        lambda: sec7_rate_limit_tables(campus_trace), rounds=1, iterations=1
    )
    normal_hosts = campus_trace.hosts_of_class(HostClass.NORMAL)
    per_host_all = per_host_counts(
        campus_trace, normal_hosts[:300], refinement=Refinement.ALL
    )
    per_host_nodns = per_host_counts(
        campus_trace, normal_hosts[:300], refinement=Refinement.NO_DNS
    )
    host_all = _pooled_percentile(per_host_all, 0.999)
    host_nodns = _pooled_percentile(per_host_nodns, 0.999)
    windows = sec7_window_size_study(campus_trace)

    normal, p2p = tables["normal"], tables["p2p"]
    rows = [
        ("normal aggregate all/no-prior/no-DNS (paper 16/14/9)",
         f"{normal.all_contacts}/{normal.no_prior_contact}/{normal.no_dns}"),
        ("p2p aggregate all/no-prior/no-DNS (paper 89/61/26)",
         f"{p2p.all_contacts}/{p2p.no_prior_contact}/{p2p.no_dns}"),
        ("per-host all / non-DNS (paper ~4 / ~1)",
         f"{host_all} / {host_nodns}"),
        ("window study 1s/5s/60s non-DNS (paper 5/12/50)",
         "/".join(str(windows[w]) for w in sorted(windows))),
    ]
    print_rows("Section 7 practical rate limits", rows)

    # Normal aggregate bands around 16 / 14 / 9.
    assert 8 <= normal.all_contacts <= 32
    assert normal.no_prior_contact <= normal.all_contacts
    assert 3 <= normal.no_dns <= 16
    # P2P limits several times the normal limits (paper: 89 vs 16).
    assert p2p.all_contacts > 2.5 * normal.all_contacts
    assert p2p.no_dns > normal.no_dns
    # Per-host limits: a handful of contacts, ~1 non-DNS.
    assert 1 <= host_all <= 8
    assert host_nodns <= 3
    # Window sizes: sublinear growth of the admitted budget.
    assert windows[1.0] <= windows[5.0] <= windows[60.0]
    assert windows[60.0] < 60 * max(windows[1.0], 1)
