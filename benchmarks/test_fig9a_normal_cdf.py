"""E12 — Figure 9(a): contact-rate CDFs for normal desktop clients.

Paper shape: in 5-second windows, the three contact classifications
separate — all distinct IPs > no-prior-contact > no-DNS — and the 99.9%
point sits near 16 / 14 / 9 contacts.
"""

from __future__ import annotations

from conftest import print_rows

from repro.core.scenarios import fig9_contact_rate_cdfs
from repro.traces.records import HostClass
from repro.traces.windows import Refinement, count_contacts


def test_fig9a_normal_cdf(benchmark, campus_trace):
    cdfs = benchmark.pedantic(
        lambda: fig9_contact_rate_cdfs(campus_trace),
        rounds=1,
        iterations=1,
    )
    normal = cdfs["normal"]

    rows = []
    hosts = set(campus_trace.hosts_of_class(HostClass.NORMAL))
    limits = {}
    for refinement in Refinement:
        counts = count_contacts(campus_trace, hosts, refinement=refinement)
        limits[refinement] = counts.percentile(0.999)
        rows.append((f"99.9% limit, {refinement.value}", limits[refinement]))
        rows.append((f"max window,  {refinement.value}", counts.max()))
    print_rows("Figure 9(a): normal clients, 5 s windows", rows)

    # Refinements nest and the 99.9% limits land in the paper's bands
    # (paper: 16 / 14 / 9).
    assert limits[Refinement.ALL] >= limits[Refinement.NO_PRIOR]
    assert limits[Refinement.NO_PRIOR] >= limits[Refinement.NO_DNS]
    assert 8 <= limits[Refinement.ALL] <= 30
    assert 3 <= limits[Refinement.NO_DNS] <= 16
    # CDF sanity: fractions reach 1.0.
    for refinement, (values, fractions) in normal.items():
        assert fractions[-1] == 1.0
