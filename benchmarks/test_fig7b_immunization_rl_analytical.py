"""E10 — Figure 7(b): analytical delayed immunization + backbone RL.

Paper protocol: immunization starts at the ticks where the *unlimited*
worm hit 20%/50%/80% (≈ ticks 6/8/10 for beta = 0.8, N = 1000), while the
worm itself is slowed by backbone filters — so every curve sits below its
Figure 7(a) counterpart.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.scenarios import (
    fig7a_immunization_analytical,
    fig7b_immunization_rl_analytical,
)


def test_fig7b_immunization_rl_analytical(benchmark):
    curves = benchmark.pedantic(
        fig7b_immunization_rl_analytical, rounds=1, iterations=1
    )
    print_series(
        "Figure 7(b): delayed immunization + backbone RL, analytical",
        curves,
    )

    # The start ticks anchor to the unlimited model: ~6 / 8 / 10.
    tick_labels = sorted(
        label for label in curves if label.startswith("immunize_at_tick_")
    )
    ticks = sorted(int(label.rsplit("_", 1)[1]) for label in tick_labels)
    assert ticks[0] in (6, 7)
    assert ticks[-1] in (9, 10, 11)

    # With rate limiting, peak infection is lower than without, case by
    # case (compare against Figure 7(a) at the same wall clock).
    without = fig7a_immunization_analytical()
    peak_without = float(
        without["immunize_at_20pct"].fraction_infected.max()
    )
    earliest = curves[f"immunize_at_tick_{ticks[0]}"]
    peak_with = float(earliest.fraction_infected.max())
    assert peak_with < peak_without
