"""E05 — Figure 3(b): analytical worm spread WITHIN a subnet, edge RL.

Paper shape: the edge filter never sees intra-subnet traffic, so the
local-preferential worm blazes inside a subnet (large beta1) while the
random worm's within-subnet growth is much slower — which is why edge RL
loses its value against local-preferential propagation.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.scenarios import fig3_edge_analytical


def test_fig3b_edge_within_subnet(benchmark):
    result = benchmark.pedantic(fig3_edge_analytical, rounds=1, iterations=1)
    within = result["within"]
    print_series("Figure 3(b): fraction of subnet hosts infected", within)

    t_local = within["local_pref_rl"].time_to_fraction(0.5)
    t_random = within["random_rl"].time_to_fraction(0.5)
    # Local-pref spreads within the subnet far faster than random.
    assert t_random > 10 * t_local
    # The filter leaves intra-subnet spread untouched: with and without
    # RL, the local-pref within-subnet curves coincide.
    no_rl = within["local_pref_no_rl"].fraction_infected
    with_rl = within["local_pref_rl"].fraction_infected
    assert abs(float(no_rl[-1] - with_rl[-1])) < 1e-9
