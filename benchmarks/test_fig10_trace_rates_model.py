"""E14 — Figure 10: propagation under trace-derived rate limits (log-t).

Paper shape, on a log time axis: no RL saturates almost immediately;
host-based RL (every host throttled) is exponential but slower; the
aggregate edge-router schemes flatten the curve by orders of magnitude,
with the DNS-based scheme (gamma:beta = 1:2) beating the plain IP
throttle (1:6) because the traces admit a lower aggregate budget for
non-DNS contacts.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.scenarios import fig10_trace_rate_models
from repro.core.slowdown import compare_times


def test_fig10_trace_rates_model(benchmark):
    curves = benchmark.pedantic(
        fig10_trace_rate_models, rounds=1, iterations=1
    )
    report = compare_times(curves, baseline="no_rl", level=0.5)
    print_series("Figure 10: trace-derived rate limits (note: log-t in paper)",
                 curves)
    print(report.format_table())

    t = report.times
    # Ordering on the log-time axis: no RL < host RL < IP 1:6 < DNS 1:2.
    assert t["no_rl"] < t["host_based_rl"]
    assert t["host_based_rl"] < t["ip_throttle_1_to_6"]
    assert t["ip_throttle_1_to_6"] < t["dns_scheme_1_to_2"]
    # Aggregate schemes beat per-host limits by an order of magnitude.
    assert t["ip_throttle_1_to_6"] > 10 * t["host_based_rl"]
