"""E15 — Section 7 census: 999 normal / 17 servers / 33 P2P / 79 infected.

The behavioural classifier must recover the generator's ground truth the
way the paper's analysts partitioned the ECE subnet.
"""

from __future__ import annotations

from conftest import print_rows

from repro.core.scenarios import sec7_host_census
from repro.traces.classify import classify_hosts
from repro.traces.records import HostClass


def test_sec7_host_census(benchmark, campus_trace):
    counts = benchmark.pedantic(
        lambda: sec7_host_census(campus_trace), rounds=1, iterations=1
    )
    classes = classify_hosts(campus_trace)
    errors = sum(
        1
        for host, truth in campus_trace.labels.items()
        if classes[host] is not truth
    )
    rows = [(cls.value, counts.get(cls, 0)) for cls in HostClass]
    rows.append(("total", sum(counts.values())))
    rows.append(("misclassified vs ground truth", errors))
    print_rows("Section 7 census (paper: 999 / 17 / 33 / 79)", rows)

    assert sum(counts.values()) == 1128
    assert abs(counts.get(HostClass.NORMAL, 0) - 999) <= 10
    assert abs(counts.get(HostClass.SERVER, 0) - 17) <= 3
    assert abs(counts.get(HostClass.P2P, 0) - 33) <= 6
    infected = counts.get(HostClass.WORM_BLASTER, 0) + counts.get(
        HostClass.WORM_WELCHIA, 0
    )
    assert abs(infected - 79) <= 4
    assert errors <= 0.02 * 1128
