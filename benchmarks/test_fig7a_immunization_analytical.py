"""E09 — Figure 7(a): analytical delayed immunization (no rate limiting).

Paper shape: with beta = 0.8 and mu = 0.1, starting immunization when the
worm reaches 20% / 50% / 80% produces successively worse outbreaks, each
peaking and then declining as patching outpaces infection.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.core.scenarios import fig7a_immunization_analytical


def test_fig7a_immunization_analytical(benchmark):
    curves = benchmark.pedantic(
        fig7a_immunization_analytical, rounds=1, iterations=1
    )
    print_series("Figure 7(a): delayed immunization, analytical", curves)

    peaks = {
        label: float(curve.fraction_infected.max())
        for label, curve in curves.items()
    }
    finals = {
        label: float(curve.fraction_infected[-1])
        for label, curve in curves.items()
    }
    # Earlier immunization caps the peak lower.
    assert (
        peaks["immunize_at_20pct"]
        < peaks["immunize_at_50pct"]
        < peaks["immunize_at_80pct"]
    )
    # Every immunized curve eventually declines toward extinction.
    for label, curve in curves.items():
        if label == "no_immunization":
            assert finals[label] > 0.99
        else:
            assert finals[label] < 0.5 * peaks[label]
            # Declining tail.
            tail = curve.fraction_infected[-50:]
            assert np.all(np.diff(tail) <= 1e-9)
