"""E06 — Figure 4: simulated deployments on the 1,000-node power-law graph.

Paper shape: no RL ≈ 5% host RL; edge RL a slight improvement; backbone
RL takes ~5x as long to reach 50% infection as the host/edge cases.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.scenarios import fig4_powerlaw_simulation
from repro.core.slowdown import compare_times


def test_fig4_powerlaw_deployments(benchmark):
    curves = benchmark.pedantic(
        lambda: fig4_powerlaw_simulation(
            num_nodes=1000, num_runs=10, max_ticks=400
        ),
        rounds=1,
        iterations=1,
    )
    report = compare_times(curves, baseline="no_rl", level=0.5)
    print_series("Figure 4: power-law 1000 nodes, simulated", curves)
    print(report.format_table())

    factors = report.factors
    # 5% host deployment is negligible.
    assert factors["host_rl_5pct"] < 1.3
    # Edge RL: slight improvement.
    assert 1.05 < factors["edge_rl"] < 3.0
    # Backbone RL: the headline ~5x over the host/edge cases.
    assert factors["backbone_rl"] > 3.0 * factors["edge_rl"]
    assert factors["backbone_rl"] > 3.0 * factors["host_rl_5pct"]
