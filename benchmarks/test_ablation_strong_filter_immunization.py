"""Ablation — Figure 4's heavy backbone filter combined with patching.

Figure 8(b) uses a light-touch filter to isolate the incremental benefit
of rate limiting (~10-point drop in ever-infected).  This ablation runs
the *strong* filter from Figure 4 (base rate 0.02, ~5x slowdown) with the
same delayed patching: the worm's effective growth rate falls below the
patch rate and the outbreak goes extinct — the strongest version of the
paper's "rate limiting buys time" conclusion.
"""

from __future__ import annotations

from conftest import print_rows

from repro.core.policy import DeploymentStrategy
from repro.core.quarantine import QuarantineStudy
from repro.core.scenarios import (
    IMMUNIZATION_MU,
    IMMUNIZATION_SCAN_RATE,
    ROUTER_BASE_RATE,
)
from repro.runner import run_ensemble
from repro.simulator.immunization import ImmunizationPolicy


def run_cases(num_runs: int = 5) -> dict[str, float]:
    study = QuarantineStudy(
        1000, scan_rate=IMMUNIZATION_SCAN_RATE, seed=42
    )
    unlimited = study.simulate_deployments(
        [DeploymentStrategy.none()], max_ticks=60, num_runs=num_runs
    )["no_rl"]
    start = round(unlimited.time_to_fraction(0.2))
    policy = ImmunizationPolicy.at_tick(start, IMMUNIZATION_MU)

    finals: dict[str, float] = {
        "patching_only": run_ensemble(
            study.spec_for(
                DeploymentStrategy.none(),
                max_ticks=200,
                num_runs=num_runs,
                immunization=policy,
            )
        ).final_ever_infected()
    }
    finals["patching_plus_strong_backbone"] = run_ensemble(
        study.spec_for(
            DeploymentStrategy.backbone(ROUTER_BASE_RATE),
            max_ticks=400,
            num_runs=num_runs,
            immunization=policy,
        )
    ).final_ever_infected()
    return finals


def test_ablation_strong_filter_immunization(benchmark):
    finals = benchmark.pedantic(run_cases, rounds=1, iterations=1)
    print_rows(
        "Ablation: strong backbone filter + patching (ever-infected)",
        [(label, f"{value:.1%}") for label, value in finals.items()],
    )

    # Patching alone leaves most hosts hit (the Figure 8(a) regime) ...
    assert finals["patching_only"] > 0.6
    # ... but the strong filter drops the worm's growth rate below mu:
    # extinction instead of a 10-point dent.
    assert finals["patching_plus_strong_backbone"] < 0.15
