"""Ablation — constant mu vs the paper's conjectured bell-curve mu(t).

Section 6.1 admits that a constant patch probability is unrealistic
("the rate of immunization observes a bell curve") but uses it for lack
of data.  This ablation quantifies how much that simplification matters:
a bell curve with the same *peak area positioning* patches slower at
first, so the worm gets further before patching bites — the constant-mu
model is the *optimistic* choice.
"""

from __future__ import annotations

from conftest import print_rows

from repro.models.immunization import (
    BellCurveImmunizationModel,
    DelayedImmunizationModel,
)

POPULATION = 1000
BETA = 0.8
START = 7.0


def run_models() -> dict[str, float]:
    constant = DelayedImmunizationModel(POPULATION, BETA, 0.1, START)
    # Bell curve peaking at 2x the constant rate ~10 ticks after start.
    bell = BellCurveImmunizationModel(
        POPULATION, BETA, 0.2, START, peak_offset=10.0, width=8.0
    )
    slow_ramp = BellCurveImmunizationModel(
        POPULATION, BETA, 0.2, START, peak_offset=25.0, width=8.0
    )
    return {
        "constant_mu_0.1": constant.solve(200).final_fraction_ever_infected(),
        "bell_peak_0.2_at_+10": bell.solve(200).final_fraction_ever_infected(),
        "bell_peak_0.2_at_+25": (
            slow_ramp.solve(200).final_fraction_ever_infected()
        ),
    }


def test_ablation_immunization_curve(benchmark):
    finals = benchmark.pedantic(run_models, rounds=1, iterations=1)
    print_rows(
        "Ablation: immunization-rate curve shape (final ever-infected)",
        [(label, f"{value:.1%}") for label, value in finals.items()],
    )

    # Every curve still contains the outbreak below 100%.
    assert all(value < 0.999 for value in finals.values())
    # A later patching peak means more damage: ramp position matters more
    # than peak height.
    assert finals["bell_peak_0.2_at_+25"] > finals["bell_peak_0.2_at_+10"]
    # The paper's constant-mu assumption is on the optimistic side
    # compared to a slow real-world ramp.
    assert finals["constant_mu_0.1"] < finals["bell_peak_0.2_at_+25"]
