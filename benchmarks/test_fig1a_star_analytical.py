"""E01 — Figure 1(a): analytical rate limiting on a 200-node star.

Paper shape: hub RL ≫ 30% leaf RL > 10% leaf RL ≈ no RL; reaching 60%
infection under hub RL takes roughly 3x the 30%-leaf time.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.scenarios import fig1a_star_analytical
from repro.core.slowdown import compare_times


def test_fig1a_star_analytical(benchmark):
    curves = benchmark.pedantic(
        fig1a_star_analytical, rounds=1, iterations=1
    )
    report = compare_times(curves, baseline="no_rl", level=0.6)
    print_series("Figure 1(a): star graph, analytical", curves)
    print(report.format_table())

    factors = report.factors
    assert factors["leaf_rl_10pct"] < 1.5
    assert factors["leaf_rl_10pct"] < factors["leaf_rl_30pct"]
    assert factors["hub_rl"] > 2.5 * factors["leaf_rl_30pct"]
