"""Extension E20 — topological worms evade dark-space detection.

Staniford et al. (cited in the paper's related work) warn that worms
harvesting targets from their victims never probe unused address space.
This experiment releases our :class:`TopologicalWorm` against the full
dynamic-quarantine stack: the telescope stays silent, the filters never
deploy, and only *pre-deployed* backbone rate limiting slows the spread —
a limits-of-the-defense result the paper's framework makes easy to state.
"""

from __future__ import annotations

from conftest import print_rows

from repro.simulator.defense import deploy_backbone_rate_limit
from repro.simulator.dynamic import DynamicQuarantine
from repro.simulator.network import Network
from repro.simulator.observers import average_trajectories
from repro.simulator.simulation import WormSimulation
from repro.simulator.telescope import ScanDetector, Telescope
from repro.simulator.worms import RandomScanWorm, TopologicalWorm, WormStrategy


def run_case(worm_factory, *, dynamic: bool, predeploy: bool, num_runs: int = 5):
    runs = []
    detected = 0
    for i in range(num_runs):
        seed = 90 + i
        network = Network.from_powerlaw(1000, seed=seed)
        if predeploy:
            deploy_backbone_rate_limit(network, 0.02)
        quarantine = None
        if dynamic:
            quarantine = DynamicQuarantine(
                lambda n: deploy_backbone_rate_limit(n, 0.02),
                telescope=Telescope(coverage=0.1),
                detector=ScanDetector(scans_per_infected=0.8),
            )
        simulation = WormSimulation(
            network,
            worm_factory(),
            scan_rate=1.6,
            initial_infections=5,
            lan_delivery=True,
            quarantine=quarantine,
            seed=seed,
        )
        runs.append(simulation.run(400))
        if quarantine is not None and quarantine.detector.has_detected:
            detected += 1
    mean = average_trajectories(runs)
    return mean.time_to_fraction(0.5), detected


def random_worm() -> WormStrategy:
    return RandomScanWorm(hit_probability=0.5)


def topological_worm() -> WormStrategy:
    return TopologicalWorm(radius=2, exploration=0.02)


def test_ext_topological_evasion(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "random, dynamic quarantine": run_case(
                random_worm, dynamic=True, predeploy=False
            ),
            "topological, dynamic quarantine": run_case(
                topological_worm, dynamic=True, predeploy=False
            ),
            "topological, pre-deployed filters": run_case(
                topological_worm, dynamic=False, predeploy=True
            ),
            "topological, undefended": run_case(
                topological_worm, dynamic=False, predeploy=False
            ),
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (label, f"t50={t50:6.1f}  detected in {hits}/5 runs")
        for label, (t50, hits) in results.items()
    ]
    print_rows("Extension: telescope evasion by topological worms", rows)

    random_t50, random_detected = results["random, dynamic quarantine"]
    topo_t50, topo_detected = results["topological, dynamic quarantine"]
    undefended_t50, _ = results["topological, undefended"]
    predeployed_t50, _ = results["topological, pre-deployed filters"]

    # The scanner gets caught every run; the topological worm never does.
    assert random_detected == 5
    assert topo_detected == 0
    # Undetected means unthrottled: same speed as no defense at all.
    assert abs(topo_t50 - undefended_t50) < 0.25 * undefended_t50
    # Static (pre-deployed) filters still work — worm packets must cross
    # the backbone no matter how targets were chosen.
    assert predeployed_t50 > 1.5 * undefended_t50
