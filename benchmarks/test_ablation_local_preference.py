"""Ablation — how local-preference strength erodes edge-router filters.

The paper contrasts only "random" and "local preferential"; this ablation
sweeps the preference probability to show the *transition*: the more a
worm biases toward its own subnet, the less of its traffic an edge filter
ever sees, and the smaller the global slowdown the filter buys.
"""

from __future__ import annotations

from conftest import print_rows

from repro.core.policy import DeploymentStrategy
from repro.core.quarantine import QuarantineStudy


def edge_slowdown(preference: float | None, *, num_runs: int = 5) -> float:
    study = QuarantineStudy(
        1000,
        scan_rate=0.8,
        local_preference=preference,
        seed=42,
    )
    base = study.simulate_deployments(
        [DeploymentStrategy.none()], max_ticks=200, num_runs=num_runs
    )["no_rl"]
    defended = study.simulate_deployments(
        [DeploymentStrategy.edge(0.02)], max_ticks=200, num_runs=num_runs
    )["edge_rl"]
    return defended.time_to_fraction(0.5) / base.time_to_fraction(0.5)


def test_ablation_local_preference(benchmark):
    sweep = benchmark.pedantic(
        lambda: {
            "random": edge_slowdown(None),
            "preference_0.5": edge_slowdown(0.5),
            "preference_0.9": edge_slowdown(0.9),
        },
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Ablation: edge-RL slowdown vs worm local preference",
        [(label, f"{value:.2f}x") for label, value in sweep.items()],
    )

    # Edge RL helps the random worm measurably ...
    assert sweep["random"] > 1.15
    # ... and its benefit decays as the worm turns local.
    assert sweep["preference_0.9"] < sweep["random"]
    assert sweep["preference_0.9"] < 1.4
