"""Replica-path benchmarks: the ``replica`` matrix through ``repro.bench``.

Runs ``benchmarks/matrices/replica.json`` — the grouped-vs-solo arms of
a fig-4 die-out sweep, the regime replica batching is for: single-seed
outbreaks under near-critical immunization (``mu=0.07`` from tick 1)
die out in a handful of ticks for a sizable fraction of replicas, so
per-run scenario setup is a real share of the wall clock — exactly the
cost the grouped path amortizes (measured ~1.4-1.7x per replica).

Saturating, loop-dominated sweeps see *no* win from grouping (0.7-0.8x
at wide resident chunks or 10k-node state); rather than re-measure that
boundary here, the ledger carries a ``replica_limits`` informational
case recording the structural ceilings, never gated.

The assertions are deliberately loose floors that only catch
catastrophic regressions; the variance-gated comparison against a
checked-in baseline (``repro bench compare``) carries the real numbers.
"""

from __future__ import annotations

import pytest

from repro.bench import CaseResult, load_matrix, run_matrix


@pytest.fixture(scope="module")
def replica_ledger(bench_ledger):
    """Run the ``replica`` matrix once; register it with the session."""
    ledger = run_matrix(
        load_matrix("replica"),
        progress=lambda line: print(f"[bench] {line}"),
    )
    bench_ledger.add(ledger)
    return ledger


def _arm(ledger, arm):
    matches = [case for case in ledger.cases if case.axes.get("arm") == arm]
    assert len(matches) == 1, f"expected one {arm!r} arm case"
    return matches[0]


@pytest.mark.timeout(600)
def test_fig4_dieout_replica_sweep(replica_ledger):
    """Grouped must beat solo per replica in the die-out regime."""
    grouped = _arm(replica_ledger, "grouped")
    solo = _arm(replica_ledger, "solo")
    speedup = solo.stats.mean / grouped.stats.mean
    dieout = grouped.metrics["dieout_fraction"]
    print(
        f"\nfig4 die-out sweep: grouped {grouped.stats.mean:.3f}s vs "
        f"solo {solo.stats.mean:.3f}s ({speedup:.2f}x), "
        f"die-out fraction {dieout:.3f}"
    )
    # Both regimes must occur or the sweep degenerated.
    assert 0.0 < dieout < 1.0
    assert grouped.metrics["dieout_fraction"] == solo.metrics[
        "dieout_fraction"
    ], "arms ran different ensembles"
    # Loose floor: grouping must not regress below solo parity here,
    # and must never collapse past 2x even in an adverse regime.
    assert speedup >= 1.05, f"replica grouping regressed: {speedup:.2f}x"
    assert grouped.stats.mean <= 2.0 * solo.stats.mean


def test_replica_scale_limits(bench_ledger):
    """Record the structural ceilings of the replica path (no timing).

    Two acceptance targets are *not* met, by design rather than by
    accident, and the ledger says so:

    * 100k-node topologies: shortest-path routing materializes an
      ``(N, N)`` parent matrix, ~40 GB at 100k nodes — the scenario
      cannot be built at all, with or without replicas.
    * >=5x per-replica speedup on loop-dominated fig-4 sweeps: the tick
      loop is interleaved per replica (per-replica ``FastTransport``
      queues cannot be advanced as one array op), so grouping only
      amortizes scenario setup.  Measured on this machine: die-out
      sweeps ~1.6x, saturating 1000-node ~0.75x, 10k-node x16 ~0.7x.
    """
    nodes = 100_000
    routing_gb = nodes * nodes * 4 / 1e9
    bench_ledger.add(CaseResult(
        id="replica_limits",
        scenario="replica_limits",
        gate=False,
        metrics={
            "routing_matrix_gb_at_100k_nodes": round(routing_gb, 1),
            "loop_vectorization": (
                "per-replica interleaved (not cross-replica)"
            ),
            "speedup_regime": (
                "wins come from amortizing scenario setup: "
                "extinction-prone sweeps ~1.4-1.7x, narrow saturating "
                "sweeps ~1.3x; wide (128) resident chunks and 10k-node "
                "runs fall to 0.7-0.8x"
            ),
            "measured_10k_x16_speedup": 0.71,
        },
        notes=(
            "100k-node x 100-replica under 60s and >=5x on saturating "
            "fig-4 sweeps are structurally out of reach for this "
            "design; the replica path's value is one shared scenario "
            "build, bit-identical per-replica results, and cacheable "
            "records at 1000-replica ensemble scale"
        ),
    ))
    assert routing_gb > 32, "routing matrix estimate went stale"
