"""Replica-path benchmarks: grouped ensembles vs independent batch runs.

Measures what the replica-batched execution path actually buys.  The
grouped engine amortizes the *scenario* work — network construction,
defense deployment, engine setup — across every replica of an ensemble,
but the tick loop itself stays interleaved per replica (each replica
advances through its own ``FastTransport``), so loop-dominated runs see
no speedup from grouping.  Concretely:

* **die-out sweeps** (short, extinction-prone runs where setup rivals
  the loop) are where grouping wins — measured ~1.4-1.7x per replica;
* **saturating epidemics** (long loops) keep a modest build-amortization
  win at narrow widths (~1.3x at 32 resident replicas) but fall to
  0.7-0.8x at 128-wide chunks or 10k-node state: keeping many live
  transports resident costs cache locality that a run-at-a-time loop
  never pays.

Run with ``--bench-json BENCH_pr6.json`` to write the regression
ledger.  The assertions are deliberately loose floors that only catch
catastrophic regressions; the honest numbers — including the regimes
where grouping does **not** help — live in the ledger, alongside a
``replica_limits`` entry recording the structural ceilings (the 100k-node
routing matrix does not fit in memory; no cross-replica vectorization of
the transport loop).
"""

from __future__ import annotations

import dataclasses
import statistics
import time

import pytest

from repro.core.policy import DeploymentStrategy
from repro.core.quarantine import QuarantineStudy
from repro.runner.build import execute_run
from repro.runner.executors import ReplicaBatchExecutor, SerialExecutor
from repro.runner.spec import EnsembleSpec
from repro.simulator import ImmunizationPolicy

#: Replicas in the grouped fig-4 die-out sweep (the acceptance scale).
GROUPED_REPLICAS = 1000

#: Independent solo-batch runs timed for the per-replica baseline; the
#: ledger labels the solo arm as a subset extrapolation.
SOLO_RUNS = 100


def _fig4_template(**overrides):
    """The undefended 1000-node fig-4 scenario as a replica template.

    The topology seed is pinned so every replica attacks the same
    network — the precondition for the runner to group them at all.
    """
    study = QuarantineStudy(1000, scan_rate=0.8, seed=42)
    spec = study.spec_for(DeploymentStrategy.none(), max_ticks=150)
    return dataclasses.replace(
        spec.template,
        topology=dataclasses.replace(spec.template.topology, seed=42),
        engine="fast-batched",
        **overrides,
    )


def _timed_grouped(specs):
    executor = ReplicaBatchExecutor(SerialExecutor(), chunk_size=128)
    start = time.perf_counter()
    results = executor.run_specs(specs)
    return time.perf_counter() - start, results


def _timed_solo(specs):
    start = time.perf_counter()
    results = [execute_run(spec) for spec in specs]
    return time.perf_counter() - start, results


@pytest.mark.timeout(600)
def test_fig4_dieout_replica_sweep(bench_recorder):
    """1000-replica die-out sweep: the regime replica grouping is for.

    Single-seed outbreaks under near-critical immunization (``mu=0.07``
    from tick 1) die out in a handful of ticks for a sizable fraction
    of replicas, so per-run scenario setup is a real share of the wall
    clock — exactly the cost the grouped path amortizes.
    """
    template = _fig4_template(
        initial_infections=1,
        immunization=ImmunizationPolicy.at_tick(1, 0.07),
    )
    ensemble = EnsembleSpec(
        template=template, num_runs=GROUPED_REPLICAS, base_seed=42
    )
    specs = list(ensemble.expand())

    # Warm the topology/routing cache so neither arm pays the cold build.
    execute_run(specs[0])

    grouped_elapsed, grouped = _timed_grouped(specs)
    solo_elapsed, solo = _timed_solo(specs[:SOLO_RUNS])

    grouped_ms = 1000.0 * grouped_elapsed / len(specs)
    solo_ms = 1000.0 * solo_elapsed / SOLO_RUNS
    speedup = solo_ms / grouped_ms
    # Extinctions stall at a handful of hosts; take-offs clear 50 by a
    # wide gap at mu=0.07 (1000 nodes), so the threshold is absolute.
    dieout = statistics.fmean(
        float(r.trajectory.ever_infected[-1]) < 50.0 for r in grouped
    )

    bench_recorder.record(
        "fig4_dieout_1000x1000_replicas",
        engine_mode="replica-batched",
        replicas=len(specs),
        solo_runs_timed=SOLO_RUNS,
        solo_arm="subset of the same seeds, extrapolated per replica",
        grouped_ms_per_replica=round(grouped_ms, 2),
        solo_ms_per_replica=round(solo_ms, 2),
        speedup_per_replica=round(speedup, 2),
        dieout_fraction=round(dieout, 3),
    )
    print(
        f"\nfig4 die-out sweep: grouped {grouped_ms:.1f} ms/rep vs "
        f"solo {solo_ms:.1f} ms/rep ({speedup:.2f}x), "
        f"die-out fraction {dieout:.3f}"
    )
    # Both regimes must occur or the sweep degenerated.
    assert 0.0 < dieout < 1.0
    # Loose floor: grouping must not regress below solo parity here.
    assert speedup >= 1.05, f"replica grouping regressed: {speedup:.2f}x"


@pytest.mark.timeout(600)
def test_fig4_saturating_replica_parity(bench_recorder):
    """Saturating fig-4 epidemics: the loop-dominated regime boundary.

    With five initial infections and no removal the epidemic saturates
    and the tick loop dominates, so grouping's win shrinks to the
    amortized scenario build (~1.3x at this 32-replica width) and
    inverts to 0.7-0.8x once 128 replicas' transports stay resident or
    the state grows to 10k nodes.  Recorded so the ledger states the
    boundary instead of hiding it.
    """
    template = _fig4_template(initial_infections=5, max_ticks=400)
    ensemble = EnsembleSpec(template=template, num_runs=32, base_seed=42)
    specs = list(ensemble.expand())
    execute_run(specs[0])

    grouped_elapsed, grouped = _timed_grouped(specs)
    solo_elapsed, _ = _timed_solo(specs[:16])

    grouped_ms = 1000.0 * grouped_elapsed / len(specs)
    solo_ms = 1000.0 * solo_elapsed / 16
    ratio = solo_ms / grouped_ms
    finals = [float(r.trajectory.ever_infected[-1]) for r in grouped]

    bench_recorder.record(
        "fig4_saturating_1000x32_replicas",
        engine_mode="replica-batched",
        replicas=len(specs),
        solo_runs_timed=16,
        grouped_ms_per_replica=round(grouped_ms, 2),
        solo_ms_per_replica=round(solo_ms, 2),
        speedup_per_replica=round(ratio, 2),
        mean_final_size=round(statistics.fmean(finals), 1),
    )
    print(
        f"\nfig4 saturating: grouped {grouped_ms:.1f} ms/rep vs "
        f"solo {solo_ms:.1f} ms/rep ({ratio:.2f}x)"
    )
    # Loose ceiling on the locality penalty: grouped must stay within
    # 2x of solo even in its worst regime.
    assert grouped_ms <= 2.0 * solo_ms, (
        f"grouped path collapsed: {grouped_ms:.1f} vs {solo_ms:.1f} ms/rep"
    )


def test_replica_scale_limits(bench_recorder):
    """Record the structural ceilings of the replica path (no timing).

    Two acceptance targets are *not* met, by design rather than by
    accident, and the ledger says so:

    * 100k-node topologies: shortest-path routing materializes an
      ``(N, N)`` parent matrix, ~40 GB at 100k nodes — the scenario
      cannot be built at all, with or without replicas.
    * >=5x per-replica speedup on loop-dominated fig-4 sweeps: the tick
      loop is interleaved per replica (per-replica ``FastTransport``
      queues cannot be advanced as one array op), so grouping only
      amortizes scenario setup.  Measured on this machine: die-out
      sweeps ~1.6x, saturating 1000-node ~0.75x, 10k-node x16 ~0.7x.
    """
    nodes = 100_000
    routing_gb = nodes * nodes * 4 / 1e9
    bench_recorder.record(
        "replica_limits",
        routing_matrix_gb_at_100k_nodes=round(routing_gb, 1),
        loop_vectorization="per-replica interleaved (not cross-replica)",
        speedup_regime=(
            "wins come from amortizing scenario setup: extinction-prone "
            "sweeps ~1.4-1.7x, narrow saturating sweeps ~1.3x; wide "
            "(128) resident chunks and 10k-node runs fall to 0.7-0.8x"
        ),
        measured_10k_x16_speedup=0.71,
        note=(
            "100k-node x 100-replica under 60s and >=5x on saturating "
            "fig-4 sweeps are structurally out of reach for this "
            "design; the replica path's value is one shared scenario "
            "build, bit-identical per-replica results, and cacheable "
            "records at 1000-replica ensemble scale"
        ),
    )
    assert routing_gb > 32, "routing matrix estimate went stale"
