"""Load benchmark for the simulation service.

Drives a :class:`~repro.service.app.ServiceThread` with a thread pool
of blocking clients and records throughput and latency percentiles
into the benchmark ledger (``--bench-json``, e.g. ``BENCH_pr4.json``).

Not collected by the default suite (the filename carries no ``test_``
prefix); run it explicitly::

    PYTHONPATH=src python -m pytest benchmarks/load_service.py \
        -q -s --bench-json BENCH_pr4.json

Three scenarios:

* ``service_load_unique`` — every request distinct: pure scheduling +
  simulation throughput;
* ``service_load_duplicates`` — 4 clients ask for each spec: measures
  single-flight coalescing under contention;
* ``service_load_hot_cache`` — distinct requests over a warmed result
  cache: the serving floor (no simulation at all).
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import ThreadPoolExecutor

from repro.runner import EnsembleSpec, RunSpec, TopologySpec
from repro.service import ServiceClient, ServiceConfig, ServiceThread

#: Worker threads issuing requests concurrently.
CLIENTS = 8


def bench_spec(index: int) -> EnsembleSpec:
    return EnsembleSpec(
        template=RunSpec(
            topology=TopologySpec(kind="powerlaw", num_nodes=200),
            max_ticks=60,
            engine="fast",
        ),
        num_runs=2,
        base_seed=1000 + index,
        label=f"load-{index}",
    )


def drive(config: ServiceConfig, specs: list[EnsembleSpec]) -> dict:
    """Serve ``specs`` from ``CLIENTS`` concurrent clients; measure."""
    with ServiceThread(config) as thread:

        def one_request(spec: EnsembleSpec) -> float:
            with ServiceClient(port=thread.port, timeout=120) as client:
                started = time.perf_counter()
                payload = client.run_bytes(spec, timeout=120)
                elapsed = time.perf_counter() - started
            assert payload  # every request must round-trip
            return elapsed * 1000.0

        wall_started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            latencies = list(pool.map(one_request, specs))
        wall = time.perf_counter() - wall_started

        with ServiceClient(port=thread.port) as client:
            metrics = client.metrics()

    latencies.sort()
    quantiles = statistics.quantiles(latencies, n=100)
    return {
        "requests": len(specs),
        "clients": CLIENTS,
        "wall_s": round(wall, 3),
        "throughput_rps": round(len(specs) / wall, 2),
        "p50_ms": round(quantiles[49], 2),
        "p99_ms": round(quantiles[98], 2),
        "max_ms": round(latencies[-1], 2),
        "coalesced": metrics["jobs"]["coalesced"],
        "completed": metrics["jobs"]["completed"],
        "cache": metrics["cache"],
    }


def test_service_load_unique(bench_recorder):
    config = ServiceConfig(
        port=0, jobs=1, max_queue=64, concurrency=4, cache_enabled=False
    )
    record = bench_recorder.record(
        "service_load_unique",
        **drive(config, [bench_spec(index) for index in range(24)]),
    )
    print(f"\n[service] unique: {record}")
    assert record["completed"] == 24
    assert record["coalesced"] == 0
    assert record["throughput_rps"] > 0


def test_service_load_duplicates(bench_recorder):
    config = ServiceConfig(
        port=0, jobs=1, max_queue=64, concurrency=4, cache_enabled=False
    )
    # 4 clients per spec: most should attach to an in-flight job.
    specs = [bench_spec(index % 6) for index in range(24)]
    record = bench_recorder.record(
        "service_load_duplicates", **drive(config, specs)
    )
    print(f"\n[service] duplicates: {record}")
    assert record["coalesced"] > 0
    assert record["completed"] + record["coalesced"] >= 24
    # Coalescing must make duplicates cheaper than unique load: far
    # fewer computations than requests.
    assert record["completed"] < 24


def test_service_load_hot_cache(bench_recorder, tmp_path):
    config = ServiceConfig(
        port=0,
        jobs=1,
        max_queue=64,
        concurrency=4,
        cache_dir=str(tmp_path),
    )
    specs = [bench_spec(index) for index in range(12)]
    drive(config, specs)  # warm the shared cache
    record = bench_recorder.record(
        "service_load_hot_cache", **drive(config, specs)
    )
    print(f"\n[service] hot cache: {record}")
    assert record["cache"]["hits"] == sum(s.num_runs for s in specs)
    assert record["completed"] == 12
