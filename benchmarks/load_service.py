"""Load benchmark for the simulation service: the ``service`` matrix.

Runs ``benchmarks/matrices/service.json`` through ``repro.bench`` — a
live :class:`~repro.service.app.ServiceThread` driven by a thread pool
of blocking clients in three modes:

* ``unique`` — every request distinct: pure scheduling + simulation
  throughput;
* ``duplicates`` — several clients ask for each spec: measures
  single-flight coalescing under contention;
* ``hot_cache`` — distinct requests over a warmed result cache: the
  serving floor (no simulation at all).

Not collected by the default suite (the filename carries no ``test_``
prefix); run it explicitly::

    PYTHONPATH=src python -m pytest benchmarks/load_service.py \
        -q -s --bench-json bench-ledger.json

The service metrics asserted here (coalescing and cache counters) are
cumulative over the workload's whole life — setup warm drive, warmup
repeats, and measured repeats all hit the same server — so the
assertions account for the total number of drives.
"""

from __future__ import annotations

import pytest

from repro.bench import load_matrix, run_matrix

MATRIX = load_matrix("service")

#: Drives per case: the timed repeats plus the discarded warmup runs
#: (the hot_cache arm adds one more warm drive inside setup()).
DRIVES = MATRIX.repeats + MATRIX.warmup


@pytest.fixture(scope="module")
def service_ledger(bench_ledger):
    """Run the ``service`` matrix once; register it with the session."""
    ledger = run_matrix(
        MATRIX, progress=lambda line: print(f"[bench] {line}")
    )
    bench_ledger.add(ledger)
    return ledger


def _mode(ledger, mode):
    matches = [
        case for case in ledger.cases if case.axes.get("mode") == mode
    ]
    assert len(matches) == 1, f"expected one {mode!r} case"
    return matches[0]


def test_service_load_unique(service_ledger):
    case = _mode(service_ledger, "unique")
    requests = case.metrics["requests"]
    print(f"\n[service] unique: {case.metrics}")
    # No duplicates and no cache: every drive computes every request.
    assert case.metrics["coalesced"] == 0
    assert case.metrics["completed"] == DRIVES * requests
    assert case.stats.mean > 0


def test_service_load_duplicates(service_ledger):
    case = _mode(service_ledger, "duplicates")
    requests = case.metrics["requests"]
    print(f"\n[service] duplicates: {case.metrics}")
    # Several clients per spec: some must attach to in-flight jobs,
    # and coalescing must make duplicates cheaper than unique load.
    assert case.metrics["coalesced"] > 0
    assert case.metrics["completed"] < DRIVES * requests
    assert (
        case.metrics["completed"] + case.metrics["coalesced"]
        >= DRIVES * requests
    )


def test_service_load_hot_cache(service_ledger):
    case = _mode(service_ledger, "hot_cache")
    requests = case.metrics["requests"]
    print(f"\n[service] hot cache: {case.metrics}")
    # setup() warms the cache with one extra drive; cache-served jobs
    # still count as completed, but only the warm drive may miss and
    # store — every later drive serves its runs from the cache.
    assert case.metrics["completed"] == (DRIVES + 1) * requests
    cache = case.metrics["cache"]
    assert cache["stores"] == cache["misses"]
    assert cache["misses"] <= 2 * requests  # warm drive only
    assert cache["hits"] >= DRIVES * requests
