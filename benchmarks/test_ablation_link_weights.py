"""Ablation — occupancy-weighted vs uniform link budgets.

The paper sizes each rate-limited link as ``base_rate x weight`` with the
weight proportional to routing-table occupancy, "so that the most
utilized links will have a higher throughput [and] most normal traffic
will be routed through".  This ablation checks both halves of that claim
by injecting legitimate background traffic alongside the worm:

* worm containment is similar either way (the worm's aggregate demand
  dwarfs any static budget), but
* legitimate traffic suffers far more drops/queueing under *uniform*
  budgets, because trunk links get starved.
"""

from __future__ import annotations

import random

from conftest import print_rows

from repro.simulator.defense import deploy_backbone_rate_limit
from repro.simulator.network import Network
from repro.simulator.packet import Packet, PacketKind


def run_mixed_load(weighted: bool, *, ticks: int = 60, seed: int = 5):
    """Drive worm-scale load plus legitimate pairs; return delivery stats."""
    network = Network.from_powerlaw(1000, seed=seed)
    deploy_backbone_rate_limit(network, 0.05, weighted=weighted)
    rng = random.Random(seed)
    hosts = network.infectable
    legit_sent = legit_arrived = 0
    legit_latency = 0
    for tick in range(ticks):
        # Worm-like bulk load: 200 scans per tick across random pairs.
        for _ in range(200):
            src, dst = rng.sample(hosts, 2)
            network.inject(Packet(src=src, dst=dst,
                                  kind=PacketKind.INFECTION,
                                  created_tick=tick))
        # Legitimate trickle: 5 flows per tick.
        for _ in range(5):
            src, dst = rng.sample(hosts, 2)
            network.inject(Packet(src=src, dst=dst,
                                  kind=PacketKind.LEGITIMATE,
                                  created_tick=tick))
            legit_sent += 1
        for packet in network.transmit_tick():
            if packet.kind is PacketKind.LEGITIMATE:
                legit_arrived += 1
                legit_latency += tick - packet.created_tick
    delivered_fraction = legit_arrived / max(legit_sent, 1)
    mean_latency = legit_latency / max(legit_arrived, 1)
    return delivered_fraction, mean_latency, network.stats.packets_dropped


def test_ablation_link_weights(benchmark):
    (weighted_frac, weighted_lat, weighted_drops) = benchmark.pedantic(
        lambda: run_mixed_load(True), rounds=1, iterations=1
    )
    uniform_frac, uniform_lat, uniform_drops = run_mixed_load(False)

    print_rows(
        "Ablation: occupancy-weighted vs uniform link budgets",
        [
            ("weighted: legit delivered fraction", round(weighted_frac, 3)),
            ("weighted: legit mean latency (ticks)", round(weighted_lat, 2)),
            ("uniform:  legit delivered fraction", round(uniform_frac, 3)),
            ("uniform:  legit mean latency (ticks)", round(uniform_lat, 2)),
        ],
    )

    # Weighted budgets deliver meaningfully more legitimate traffic.
    # (Latency is not compared: under uniform budgets only short-path
    # packets survive at all, which biases their mean latency down.)
    assert weighted_frac > 1.2 * uniform_frac
