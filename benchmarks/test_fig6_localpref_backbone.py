"""E08 — Figure 6: local-preferential worm vs host and backbone RL.

Paper shape: even 30% host deployment is close to no RL for a
local-preferential worm; backbone deployment is substantially better.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.scenarios import fig6_localpref_deployments
from repro.core.slowdown import compare_times


def test_fig6_localpref_backbone(benchmark):
    curves = benchmark.pedantic(
        lambda: fig6_localpref_deployments(
            num_nodes=1000, num_runs=10, max_ticks=400
        ),
        rounds=1,
        iterations=1,
    )
    report = compare_times(curves, baseline="no_rl", level=0.5)
    print_series("Figure 6: local-pref worm, host vs backbone RL", curves)
    print(report.format_table())

    factors = report.factors
    # Host RL: near-negligible even at 30% coverage.
    assert factors["host_rl_5pct"] < 1.4
    assert factors["host_rl_30pct"] < 2.2
    # Backbone RL: substantially more effective.
    assert factors["backbone_rl"] > 1.8 * factors["host_rl_30pct"]
