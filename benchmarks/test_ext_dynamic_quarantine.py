"""Extension E19 — the full dynamic-quarantine loop: detect, then deploy.

The paper's title scenario, assembled from its own ingredients plus the
telescope detection its related-work section points to (Zou et al.):
a random worm probes mostly dark address space, a /8-scale telescope
notices the scan spike, and backbone rate limiting deploys after a
configurable reaction delay.  The sweep quantifies the cost of latency —
the quantitative version of Moore et al.'s "containment must be
initiated within minutes", which the paper cites as motivation.
"""

from __future__ import annotations

from conftest import print_rows

from repro.simulator.defense import deploy_backbone_rate_limit
from repro.simulator.dynamic import DynamicQuarantine
from repro.simulator.network import Network
from repro.simulator.observers import average_trajectories
from repro.simulator.simulation import WormSimulation
from repro.simulator.telescope import ScanDetector, Telescope
from repro.simulator.worms import RandomScanWorm


def run_case(reaction_delay: int | None, *, num_runs: int = 5):
    """Mean t50 and detection tick; ``None`` delay = no quarantine."""
    runs = []
    detections = []
    for i in range(num_runs):
        seed = 70 + i
        quarantine = None
        if reaction_delay is not None:
            quarantine = DynamicQuarantine(
                lambda network: deploy_backbone_rate_limit(network, 0.02),
                telescope=Telescope(coverage=0.1),
                detector=ScanDetector(scans_per_infected=0.8),
                reaction_delay=reaction_delay,
            )
        simulation = WormSimulation(
            Network.from_powerlaw(1000, seed=seed),
            RandomScanWorm(hit_probability=0.5),
            scan_rate=1.6,
            initial_infections=5,
            lan_delivery=True,
            quarantine=quarantine,
            seed=seed,
        )
        runs.append(simulation.run(400))
        if quarantine is not None and quarantine.detected_at is not None:
            detections.append(quarantine.detected_at)
    mean = average_trajectories(runs)
    detected = sum(detections) / len(detections) if detections else None
    return mean.time_to_fraction(0.5), detected


def test_ext_dynamic_quarantine(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "no quarantine": run_case(None),
            "react instantly": run_case(0),
            "react +3 ticks": run_case(3),
            "react +8 ticks": run_case(8),
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for label, (t50, detected) in results.items():
        detail = f"t50={t50:6.1f}"
        if detected is not None:
            detail += f"  (mean detection tick {detected:.1f})"
        rows.append((label, detail))
    print_rows("Extension: dynamic quarantine vs reaction delay", rows)

    base_t50, _ = results["no quarantine"]
    instant_t50, detected = results["react instantly"]
    slow_t50, _ = results["react +8 ticks"]

    # Detection happens early (single-digit infected percentage).
    assert detected is not None and detected < base_t50
    # Instant reaction buys a large slowdown ...
    assert instant_t50 > 2.0 * base_t50
    # ... and most of it evaporates if the response dawdles.
    assert slow_t50 < 0.7 * instant_t50
