"""E04 — Figure 3(a): analytical worm spread ACROSS subnets, edge RL.

Paper shape: edge-router filters cap the cross-subnet rate, slowing the
across-subnet curve relative to the unthrottled local-pref baseline; the
two throttled worms (random and local-pref) cross subnets at the same
capped rate.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.core.scenarios import fig3_edge_analytical


def test_fig3a_edge_across_subnets(benchmark):
    result = benchmark.pedantic(fig3_edge_analytical, rounds=1, iterations=1)
    across = result["across"]
    print_series("Figure 3(a): fraction of subnets infected", across)

    t_no_rl = across["local_pref_no_rl"].time_to_fraction(0.5)
    t_rl = across["local_pref_rl"].time_to_fraction(0.5)
    assert t_rl > 2 * t_no_rl
    np.testing.assert_allclose(
        across["local_pref_rl"].fraction_infected,
        across["random_rl"].fraction_infected,
        atol=1e-9,
    )
