"""Ablation — scan hit probability vs effective growth rate.

The homogeneous model folds address-space density into ``beta``: a worm
scanning 2^32 addresses with N real hosts has a tiny per-scan hit
probability.  Our simulator exposes the two factors separately
(``scan_rate`` x ``hit_probability``); this ablation verifies they
compose the way Eq. (1) assumes.  In discrete time with delivery latency
the fitted rate is ``lambda ~ ln(1 + beta*p) / (1 + latency_correction)``
rather than ``beta*p`` itself, so halving the hit probability divides the
rate by a factor somewhat *below* the mean-field 2 — the assertion bands
account for that.
"""

from __future__ import annotations

from conftest import print_rows

from repro.models.fitting import fit_logistic
from repro.simulator.network import Network
from repro.simulator.observers import average_trajectories
from repro.simulator.simulation import WormSimulation
from repro.simulator.worms import RandomScanWorm


def fitted_rate(hit_probability: float, *, num_runs: int = 5) -> float:
    runs = []
    for i in range(num_runs):
        seed = 50 + i
        simulation = WormSimulation(
            Network.from_powerlaw(1000, seed=seed),
            RandomScanWorm(hit_probability=hit_probability),
            scan_rate=2.0,
            initial_infections=5,
            lan_delivery=True,
            seed=seed,
        )
        runs.append(simulation.run(600))
    return fit_logistic(average_trajectories(runs)).rate


def test_ablation_scan_model(benchmark):
    rates = benchmark.pedantic(
        lambda: {p: fitted_rate(p) for p in (1.0, 0.5, 0.25)},
        rounds=1,
        iterations=1,
    )
    rows = [(f"hit_probability={p}", f"lambda={rate:.3f}")
            for p, rate in rates.items()]
    rows.append(
        ("ratio 1.0/0.5 (mean-field 2)", f"{rates[1.0] / rates[0.5]:.2f}")
    )
    rows.append(
        ("ratio 0.5/0.25 (mean-field 2)", f"{rates[0.5] / rates[0.25]:.2f}")
    )
    print_rows("Ablation: scan hit probability vs growth rate", rows)

    assert rates[1.0] > rates[0.5] > rates[0.25]
    # Below the mean-field 2 (discrete compounding + delivery latency),
    # but the scaling direction and rough magnitude must hold.
    assert 1.3 < rates[1.0] / rates[0.5] < 2.3
    assert 1.3 < rates[0.5] / rates[0.25] < 2.3
