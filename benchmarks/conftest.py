"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one figure or Section 7 statistic at paper
scale, prints the rows/series the paper reports, and asserts the shape
criteria from DESIGN.md.  Timings come from pytest-benchmark
(``--benchmark-only``); each experiment runs once via
``benchmark.pedantic(..., rounds=1, iterations=1)`` because a 10-run
averaged simulation is already its own repetition protocol.

All simulated figures execute through :mod:`repro.runner`, so the
harness honors its environment knobs:

* ``REPRO_JOBS=8`` — fan each ensemble's seeded runs across 8 worker
  processes (bit-identical curves, less wall clock);
* ``REPRO_CACHE=1`` — reuse cached run results across invocations;
* ``REPRO_CACHE_DIR=...`` — where those results live.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np
import pytest

from repro.core.scenarios import shared_trace
from repro.models.base import Trajectory
from repro.runner import configure, current_config


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        metavar="PATH",
        default=None,
        help=(
            "write the records benchmarks register with the "
            "bench_recorder fixture to PATH as JSON (the regression "
            "ledger the engine benchmarks feed, e.g. BENCH_pr3.json)"
        ),
    )


class BenchRecorder:
    """Collects per-scenario benchmark records for the JSON ledger.

    Benchmarks call :meth:`record` with whatever scalars describe one
    measured scenario (wall-clock seconds, ticks/sec, speedups); the
    session teardown writes them, plus machine metadata, to the path
    given by ``--bench-json``.  Without the option the recorder still
    collects — the records just go nowhere — so benchmarks never need
    to branch on whether a ledger was requested.
    """

    def __init__(self) -> None:
        self.records: list[dict] = []

    def record(self, scenario: str, **fields) -> dict:
        entry = {"scenario": scenario, **fields}
        self.records.append(entry)
        return entry

    def dump(self, path: str) -> None:
        payload = {
            "meta": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "cpu_count": os.cpu_count(),
                "recorded_at": time.strftime(
                    "%Y-%m-%dT%H:%M:%S", time.gmtime()
                ),
            },
            "benchmarks": self.records,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")


@pytest.fixture(scope="session")
def bench_recorder(request):
    """Session-wide benchmark ledger; written on teardown if requested."""
    recorder = BenchRecorder()
    yield recorder
    path = request.config.getoption("--bench-json")
    if path and recorder.records:
        recorder.dump(path)
        print(f"\n[bench] wrote {len(recorder.records)} records to {path}")


@pytest.fixture(scope="session", autouse=True)
def runner_configuration():
    """Apply REPRO_* execution knobs and report them once per session."""
    configure(
        jobs=max(int(os.environ.get("REPRO_JOBS", "1") or "1"), 1),
        cache_enabled=os.environ.get("REPRO_CACHE", "0")
        not in ("", "0", "off"),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
    )
    config = current_config()
    print(
        f"\n[repro.runner] jobs={config.jobs} "
        f"cache={'on' if config.cache_enabled else 'off'}"
    )
    return config


@pytest.fixture(scope="session")
def campus_trace():
    """The Section 7 synthetic campus trace (1,128 hosts, 600 s)."""
    return shared_trace(duration=600.0, seed=0)


def print_series(
    title: str,
    curves: dict[str, Trajectory],
    *,
    num_samples: int = 9,
    of_ever: bool = False,
) -> None:
    """Print each curve as a compact row of (time: fraction) samples."""
    print(f"\n=== {title} ===")
    t_max = max(float(c.times[-1]) for c in curves.values())
    sample_times = np.linspace(0.0, t_max, num_samples)
    header = "  ".join(f"t={t:8.1f}" for t in sample_times)
    print(f"{'case':<26} {header}")
    for label, curve in curves.items():
        series = (
            curve.fraction_ever_infected if of_ever else curve.fraction_infected
        )
        values = np.interp(
            sample_times,
            curve.times,
            series,
            right=float(series[-1]),
        )
        row = "  ".join(f"{v:10.3f}" for v in values)
        print(f"{label:<26} {row}")


def print_rows(title: str, rows: list[tuple[str, object]]) -> None:
    """Print labeled scalar results (the in-text statistics)."""
    print(f"\n=== {title} ===")
    for label, value in rows:
        print(f"{label:<52} {value}")
