"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one figure or Section 7 statistic at paper
scale, prints the rows/series the paper reports, and asserts the shape
criteria from DESIGN.md.  Timings come from pytest-benchmark
(``--benchmark-only``); each experiment runs once via
``benchmark.pedantic(..., rounds=1, iterations=1)`` because a 10-run
averaged simulation is already its own repetition protocol.

All simulated figures execute through :mod:`repro.runner`, so the
harness honors its environment knobs:

* ``REPRO_JOBS=8`` — fan each ensemble's seeded runs across 8 worker
  processes (bit-identical curves, less wall clock);
* ``REPRO_CACHE=1`` — reuse cached run results across invocations;
* ``REPRO_CACHE_DIR=...`` — where those results live.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.scenarios import shared_trace
from repro.models.base import Trajectory
from repro.runner import configure, current_config


@pytest.fixture(scope="session", autouse=True)
def runner_configuration():
    """Apply REPRO_* execution knobs and report them once per session."""
    configure(
        jobs=max(int(os.environ.get("REPRO_JOBS", "1") or "1"), 1),
        cache_enabled=os.environ.get("REPRO_CACHE", "0")
        not in ("", "0", "off"),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
    )
    config = current_config()
    print(
        f"\n[repro.runner] jobs={config.jobs} "
        f"cache={'on' if config.cache_enabled else 'off'}"
    )
    return config


@pytest.fixture(scope="session")
def campus_trace():
    """The Section 7 synthetic campus trace (1,128 hosts, 600 s)."""
    return shared_trace(duration=600.0, seed=0)


def print_series(
    title: str,
    curves: dict[str, Trajectory],
    *,
    num_samples: int = 9,
    of_ever: bool = False,
) -> None:
    """Print each curve as a compact row of (time: fraction) samples."""
    print(f"\n=== {title} ===")
    t_max = max(float(c.times[-1]) for c in curves.values())
    sample_times = np.linspace(0.0, t_max, num_samples)
    header = "  ".join(f"t={t:8.1f}" for t in sample_times)
    print(f"{'case':<26} {header}")
    for label, curve in curves.items():
        series = (
            curve.fraction_ever_infected if of_ever else curve.fraction_infected
        )
        values = np.interp(
            sample_times,
            curve.times,
            series,
            right=float(series[-1]),
        )
        row = "  ".join(f"{v:10.3f}" for v in values)
        print(f"{label:<26} {row}")


def print_rows(title: str, rows: list[tuple[str, object]]) -> None:
    """Print labeled scalar results (the in-text statistics)."""
    print(f"\n=== {title} ===")
    for label, value in rows:
        print(f"{label:<52} {value}")
