"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one figure or Section 7 statistic at paper
scale, prints the rows/series the paper reports, and asserts the shape
criteria from DESIGN.md.  Timings come from pytest-benchmark
(``--benchmark-only``); each experiment runs once via
``benchmark.pedantic(..., rounds=1, iterations=1)`` because a 10-run
averaged simulation is already its own repetition protocol.

The perf benchmarks (``test_perf_engines``, ``test_perf_replica``,
``load_service``) instead run matrices from ``benchmarks/matrices/``
through :mod:`repro.bench` and register the resulting cases with the
session-wide :func:`bench_ledger` fixture; ``--bench-json PATH`` writes
the merged unified ledger (schema v1, the format ``repro bench``
reads) on teardown.

Everything collected under ``benchmarks/`` is automatically marked
``bench`` **and** ``slow``: these are paper-scale measurements, not
tier-1 tests, and ``tests/bench/test_collection.py`` asserts the
tier never leaks.

All simulated figures execute through :mod:`repro.runner`, so the
harness honors its environment knobs:

* ``REPRO_JOBS=8`` — fan each ensemble's seeded runs across 8 worker
  processes (bit-identical curves, less wall clock);
* ``REPRO_CACHE=1`` — reuse cached run results across invocations;
* ``REPRO_CACHE_DIR=...`` — where those results live.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench import CaseResult, Ledger
from repro.core.scenarios import shared_trace
from repro.models.base import Trajectory
from repro.runner import configure, current_config


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        metavar="PATH",
        default=None,
        help=(
            "write the unified benchmark ledger (repro.bench schema v1) "
            "assembled by the bench_ledger fixture to PATH as JSON"
        ),
    )


def pytest_collection_modifyitems(items):
    """Every benchmark is tier `bench` (and therefore also `slow`)."""
    for item in items:
        item.add_marker(pytest.mark.bench)
        item.add_marker(pytest.mark.slow)


class LedgerCollector:
    """Accumulates benchmark cases across tests into one unified ledger.

    Perf benchmarks call :meth:`add` with the cases (or whole ledgers)
    their matrix runs produced; the session teardown merges everything
    and writes one schema-v1 ledger to ``--bench-json``.  Without the
    option the collector still accumulates — the cases just go
    nowhere — so benchmarks never branch on whether a ledger was
    requested.
    """

    def __init__(self) -> None:
        self.cases: list[CaseResult] = []
        self.meta: dict = {}

    def add(self, source: Ledger | CaseResult) -> None:
        if isinstance(source, Ledger):
            self.cases.extend(source.cases)
            for key, value in source.meta.items():
                self.meta.setdefault(key, value)
        else:
            self.cases.append(source)

    def dump(self, path: str) -> Ledger:
        ledger = Ledger.from_cases(self.cases, meta=self.meta)
        ledger.save(path)
        return ledger


@pytest.fixture(scope="session")
def bench_ledger(request):
    """Session-wide unified ledger; written on teardown if requested."""
    collector = LedgerCollector()
    yield collector
    path = request.config.getoption("--bench-json")
    if path and collector.cases:
        collector.dump(path)
        print(
            f"\n[bench] wrote {len(collector.cases)} cases to {path}"
        )


@pytest.fixture(scope="session", autouse=True)
def runner_configuration():
    """Apply REPRO_* execution knobs and report them once per session."""
    configure(
        jobs=max(int(os.environ.get("REPRO_JOBS", "1") or "1"), 1),
        cache_enabled=os.environ.get("REPRO_CACHE", "0")
        not in ("", "0", "off"),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
    )
    config = current_config()
    print(
        f"\n[repro.runner] jobs={config.jobs} "
        f"cache={'on' if config.cache_enabled else 'off'}"
    )
    return config


@pytest.fixture(scope="session")
def campus_trace():
    """The Section 7 synthetic campus trace (1,128 hosts, 600 s)."""
    return shared_trace(duration=600.0, seed=0)


def print_series(
    title: str,
    curves: dict[str, Trajectory],
    *,
    num_samples: int = 9,
    of_ever: bool = False,
) -> None:
    """Print each curve as a compact row of (time: fraction) samples."""
    print(f"\n=== {title} ===")
    t_max = max(float(c.times[-1]) for c in curves.values())
    sample_times = np.linspace(0.0, t_max, num_samples)
    header = "  ".join(f"t={t:8.1f}" for t in sample_times)
    print(f"{'case':<26} {header}")
    for label, curve in curves.items():
        series = (
            curve.fraction_ever_infected if of_ever else curve.fraction_infected
        )
        values = np.interp(
            sample_times,
            curve.times,
            series,
            right=float(series[-1]),
        )
        row = "  ".join(f"{v:10.3f}" for v in values)
        print(f"{label:<26} {row}")


def print_rows(title: str, rows: list[tuple[str, object]]) -> None:
    """Print labeled scalar results (the in-text statistics)."""
    print(f"\n=== {title} ===")
    for label, value in rows:
        print(f"{label:<52} {value}")
