"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one figure or Section 7 statistic at paper
scale, prints the rows/series the paper reports, and asserts the shape
criteria from DESIGN.md.  Timings come from pytest-benchmark
(``--benchmark-only``); each experiment runs once via
``benchmark.pedantic(..., rounds=1, iterations=1)`` because a 10-run
averaged simulation is already its own repetition protocol.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenarios import shared_trace
from repro.models.base import Trajectory


@pytest.fixture(scope="session")
def campus_trace():
    """The Section 7 synthetic campus trace (1,128 hosts, 600 s)."""
    return shared_trace(duration=600.0, seed=0)


def print_series(
    title: str,
    curves: dict[str, Trajectory],
    *,
    num_samples: int = 9,
    of_ever: bool = False,
) -> None:
    """Print each curve as a compact row of (time: fraction) samples."""
    print(f"\n=== {title} ===")
    t_max = max(float(c.times[-1]) for c in curves.values())
    sample_times = np.linspace(0.0, t_max, num_samples)
    header = "  ".join(f"t={t:8.1f}" for t in sample_times)
    print(f"{'case':<26} {header}")
    for label, curve in curves.items():
        series = (
            curve.fraction_ever_infected if of_ever else curve.fraction_infected
        )
        values = np.interp(
            sample_times,
            curve.times,
            series,
            right=float(series[-1]),
        )
        row = "  ".join(f"{v:10.3f}" for v in values)
        print(f"{label:<26} {row}")


def print_rows(title: str, rows: list[tuple[str, object]]) -> None:
    """Print labeled scalar results (the in-text statistics)."""
    print(f"\n=== {title} ===")
    for label, value in rows:
        print(f"{label:<52} {value}")
