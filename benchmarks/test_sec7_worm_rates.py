"""E17 — Section 7 footnote: worm peak scanning rates.

Paper: "We discovered an instance of Welchia that scanned 7068 hosts in a
minute.  By contrast, Blaster's peak scanning rate was only 671 hosts in
a minute" — Welchia's peak is an order of magnitude above Blaster's.
"""

from __future__ import annotations

from conftest import print_rows

from repro.core.scenarios import sec7_worm_peak_rates


def test_sec7_worm_rates(benchmark, campus_trace):
    peaks = benchmark.pedantic(
        lambda: sec7_worm_peak_rates(campus_trace), rounds=1, iterations=1
    )
    rows = [
        ("Blaster peak hosts/minute (paper ~671)", peaks["blaster"]),
        ("Welchia peak hosts/minute (paper ~7068)", peaks["welchia"]),
        ("ratio (paper ~10x)",
         round(peaks["welchia"] / max(peaks["blaster"], 1), 1)),
    ]
    print_rows("Section 7 worm peak scan rates", rows)

    assert 300 <= peaks["blaster"] <= 1100
    assert 4000 <= peaks["welchia"] <= 9000
    assert peaks["welchia"] > 5 * peaks["blaster"]
