"""Thin setup.py shim so editable installs work in offline environments
that lack the `wheel` package (PEP 517 editable builds need bdist_wheel)."""

from setuptools import setup

setup()
